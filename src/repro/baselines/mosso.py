"""MoSSo baseline (Ko, Kook & Shin, KDD 2020).

Incremental lossless summarization of a *stream* of edge insertions. For
each arriving edge ``{u, v}`` and each endpoint ``x``:

* with *escape probability* ``e``, ``x`` is separated out of its supernode
  into a singleton (so bad early groupings can be undone);
* up to ``c`` (*sample size*) random neighbours of ``x`` are sampled; the
  supernodes containing them are the merge candidates;
* the candidate whose merge with ``x``'s supernode yields the best positive
  Saving (against the graph streamed so far) is merged.

Like the published system, the implementation maintains an incremental
supernode-to-supernode edge-count table so Saving evaluations touch only
supernode-level state (no member rescans). The paper runs MoSSo with
``(e = 0.3, c = 120)`` and measures wall-clock on static graphs by
streaming all their edges — we do the same. MoSSo's per-insertion cost
grows with neighbourhood size, which is why its runtime blows up with SBM
density in Figure 5(c).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Set, Tuple, Union

import numpy as np

from ..core.cost import get_cost_model
from ..core.encode import encode_sorted
from ..core.partition import SupernodePartition
from ..core.summary import RunStats, Summarization
from ..graph.graph import Graph

__all__ = ["MoSSo"]

Edge = Tuple[int, int]
SeedLike = Union[int, np.random.Generator, None]


class MoSSo:
    """Incremental correction-set summarizer for edge streams.

    Parameters
    ----------
    escape_prob:
        Probability ``e`` of separating an endpoint before trying moves.
    sample_size:
        Number of neighbour samples ``c`` per trial.
    seed:
        Seed for the stream order (when summarizing a static graph),
        escapes and candidate sampling.
    """

    name = "MoSSo"

    def __init__(
        self,
        escape_prob: float = 0.3,
        sample_size: int = 120,
        seed: int = 0,
        cost_model: str = "exact",
    ) -> None:
        if not 0.0 <= escape_prob <= 1.0:
            raise ValueError("escape_prob must be in [0, 1]")
        if sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        self.escape_prob = escape_prob
        self.sample_size = sample_size
        self.seed = seed
        self._pair_cost, self._loop_cost = get_cost_model(cost_model)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def summarize(self, graph: Graph) -> Summarization:
        """Stream all edges of a static graph in random order, then encode."""
        rng = np.random.default_rng(self.seed)
        src, dst = graph.edge_arrays()
        order = rng.permutation(src.size)
        stream = zip(src[order].tolist(), dst[order].tolist())
        state = StreamState(graph.num_nodes)
        tic = time.perf_counter()
        for u, v in stream:
            self.process_insertion(state, u, v, rng)
        merge_seconds = time.perf_counter() - tic
        tic = time.perf_counter()
        encoded = encode_sorted(graph, state.partition)
        encode_seconds = time.perf_counter() - tic
        stats = RunStats(
            merge_seconds=merge_seconds, encode_seconds=encode_seconds
        )
        return Summarization(
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            partition=state.partition,
            superedges=encoded.superedges,
            corrections=encoded.corrections,
            stats=stats,
            algorithm=self.name,
        )

    def summarize_stream(
        self, num_nodes: int, edges: Iterable[Edge], seed: SeedLike = None
    ) -> SupernodePartition:
        """Feed an explicit insertion stream; returns the final partition.

        The dynamic-graph entry point: callers encode against whatever
        graph snapshot they need (see ``examples/dynamic_stream.py``).
        """
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(self.seed if seed is None else seed)
        )
        state = StreamState(num_nodes)
        for u, v in edges:
            self.process_insertion(state, int(u), int(v), rng)
        return state.partition

    # ------------------------------------------------------------------
    # stream processing
    # ------------------------------------------------------------------
    def process_insertion(
        self, state: "StreamState", u: int, v: int, rng: np.random.Generator
    ) -> None:
        """Handle one edge insertion (no-op for duplicates/self loops)."""
        if u == v or v in state.adjacency[u]:
            return
        state.add_edge(u, v)
        for x in (u, v):
            self._try_move(state, x, rng)

    def process_deletion(
        self, state: "StreamState", u: int, v: int, rng: np.random.Generator
    ) -> None:
        """Handle one edge deletion (no-op if the edge is absent).

        MoSSo handles fully dynamic streams: after removing the edge, both
        endpoints get the same escape/sample/move trial as on insertion, so
        groupings that the deleted edge justified can dissolve.
        """
        if u == v or v not in state.adjacency[u]:
            return
        state.remove_edge(u, v)
        for x in (u, v):
            self._try_move(state, x, rng)

    def _try_move(
        self, state: "StreamState", x: int, rng: np.random.Generator
    ) -> None:
        partition = state.partition
        if (
            rng.random() < self.escape_prob
            and partition.size(partition.supernode_of(x)) > 1
        ):
            state.extract(x)
        neighbors = state.adjacency[x]
        if not neighbors:
            return
        neighbor_list = list(neighbors)
        count = min(self.sample_size, len(neighbor_list))
        picks = rng.choice(len(neighbor_list), size=count, replace=False)
        sx = partition.supernode_of(x)
        candidates = {
            partition.supernode_of(neighbor_list[int(i)]) for i in picks
        }
        candidates.discard(sx)
        best, best_delta = None, 0.0
        for cand in candidates:
            delta = self.objective_delta(state, sx, cand)
            if delta > best_delta:
                best, best_delta = cand, delta
        if best is not None:
            state.merge(sx, best)

    # ------------------------------------------------------------------
    # saving against the streamed-so-far graph (incremental counts)
    # ------------------------------------------------------------------
    def _cost(self, counts: Dict[int, int], sid: int, size: int,
              partition: SupernodePartition) -> float:
        total = 0.0
        for c, edges in counts.items():
            if c == sid:
                total += self._loop_cost(size, edges)
            else:
                total += self._pair_cost(size, partition.size(c), edges)
        return total

    def _merged_cost(self, state: "StreamState", a: int, b: int) -> float:
        """Objective contribution of the hypothetical merged ``A ∪ B``."""
        partition = state.partition
        counts_a = state.counts[a]
        counts_b = state.counts[b]
        size_ab = partition.size(a) + partition.size(b)
        internal = (
            counts_a.get(a, 0) + counts_b.get(b, 0) + counts_a.get(b, 0)
        )
        merged = self._loop_cost(size_ab, internal) if internal else 0.0
        for c, edges in counts_a.items():
            if c in (a, b):
                continue
            if c in counts_b:
                edges = edges + counts_b[c]
            merged += self._pair_cost(size_ab, partition.size(c), edges)
        for c, edges in counts_b.items():
            if c in (a, b) or c in counts_a:
                continue
            merged += self._pair_cost(size_ab, partition.size(c), edges)
        return merged

    def objective_delta(self, state: "StreamState", a: int, b: int) -> float:
        """Absolute objective decrease from merging ``a`` and ``b``.

        MoSSo accepts moves that strictly reduce the description cost, so
        the comparison is against the pair's *deduplicated* contribution:
        the (A, B) pair cost appears in both ``Cost(A)`` and ``Cost(B)`` and
        must be counted once. Positive = beneficial.
        """
        partition = state.partition
        counts_a = state.counts[a]
        counts_b = state.counts[b]
        size_a, size_b = partition.size(a), partition.size(b)
        before = (
            self._cost(counts_a, a, size_a, partition)
            + self._cost(counts_b, b, size_b, partition)
        )
        cross = counts_a.get(b, 0)
        if cross:
            before -= self._pair_cost(size_a, size_b, cross)
        return before - self._merged_cost(state, a, b)

    def saving(self, state: "StreamState", a: int, b: int) -> float:
        """Paper-style relative ``Saving(A, B)`` over the stream state."""
        partition = state.partition
        cost_a = self._cost(state.counts[a], a, partition.size(a), partition)
        cost_b = self._cost(state.counts[b], b, partition.size(b), partition)
        if cost_a + cost_b == 0:
            return 0.0
        return 1.0 - self._merged_cost(state, a, b) / (cost_a + cost_b)


class StreamState:
    """Mutable stream state: dynamic adjacency, partition and the global
    supernode-to-supernode edge-count table.

    ``counts[a][b]`` is the number of streamed edges between supernodes
    ``a`` and ``b`` (for ``a != b``); ``counts[a][a]`` counts edges internal
    to ``a``. All three mutators (:meth:`add_edge`, :meth:`merge`,
    :meth:`extract`) maintain the table incrementally, so Saving reads are
    supernode-level dictionary scans.
    """

    __slots__ = ("adjacency", "partition", "counts")

    def __init__(self, num_nodes: int) -> None:
        self.adjacency: List[Set[int]] = [set() for _ in range(num_nodes)]
        self.partition = SupernodePartition(num_nodes)
        self.counts: Dict[int, Dict[int, int]] = {
            v: {} for v in range(num_nodes)
        }

    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> None:
        """Record edge ``{u, v}`` in the adjacency and count table."""
        self.adjacency[u].add(v)
        self.adjacency[v].add(u)
        a = self.partition.supernode_of(u)
        b = self.partition.supernode_of(v)
        if a == b:
            self.counts[a][a] = self.counts[a].get(a, 0) + 1
        else:
            self.counts[a][b] = self.counts[a].get(b, 0) + 1
            self.counts[b][a] = self.counts[b].get(a, 0) + 1

    def remove_edge(self, u: int, v: int) -> None:
        """Remove edge ``{u, v}`` from the adjacency and count table."""
        self.adjacency[u].discard(v)
        self.adjacency[v].discard(u)
        a = self.partition.supernode_of(u)
        b = self.partition.supernode_of(v)
        if a == b:
            self.counts[a][a] -= 1
            if self.counts[a][a] == 0:
                del self.counts[a][a]
        else:
            for x, y in ((a, b), (b, a)):
                self.counts[x][y] -= 1
                if self.counts[x][y] == 0:
                    del self.counts[x][y]

    def merge(self, a: int, b: int) -> int:
        """Merge supernodes and fold the absorbed count row; returns survivor."""
        survivor, absorbed = self.partition.merge(a, b)
        w_s = self.counts[survivor]
        w_x = self.counts.pop(absorbed)
        internal = (
            w_s.get(survivor, 0) + w_x.get(absorbed, 0) + w_s.pop(absorbed, 0)
        )
        w_x.pop(absorbed, None)
        w_x.pop(survivor, None)
        if internal:
            w_s[survivor] = internal
        for c, edges in w_x.items():
            w_s[c] = w_s.get(c, 0) + edges
            w_c = self.counts[c]
            moved = w_c.pop(absorbed, None)
            if moved is not None:
                w_c[survivor] = w_c.get(survivor, 0) + moved
        return survivor

    def extract(self, v: int) -> None:
        """Split ``v`` into a singleton, fixing count rows and labels."""
        partition = self.partition
        sid = partition.supernode_of(v)
        if partition.size(sid) == 1:
            return
        other = next(m for m in partition.members(sid) if m != v)
        partition.extract(v)
        rem_sid = partition.supernode_of(other)
        if rem_sid != sid:
            # The departing node owned the label; relabel the count row.
            row = self.counts.pop(sid)
            self.counts[rem_sid] = row
            internal = row.pop(sid, None)
            if internal is not None:
                row[rem_sid] = internal
            for c in list(row):
                if c == rem_sid:
                    continue
                w_c = self.counts[c]
                w_c[rem_sid] = w_c.pop(sid)
        # Move v's incident edges from the remainder row to the new
        # singleton row.
        row_rem = self.counts[rem_sid]
        row_v: Dict[int, int] = {}
        for u in self.adjacency[v]:
            c = partition.supernode_of(u)
            if c == rem_sid:
                # Was internal to the old supernode; now crosses.
                row_rem[rem_sid] -= 1
                if row_rem[rem_sid] == 0:
                    del row_rem[rem_sid]
            else:
                row_rem[c] -= 1
                if row_rem[c] == 0:
                    del row_rem[c]
                w_c = self.counts[c]
                w_c[rem_sid] -= 1
                if w_c[rem_sid] == 0:
                    del w_c[rem_sid]
            row_v[c] = row_v.get(c, 0) + 1
        self.counts[v] = row_v
        for c, edges in row_v.items():
            self.counts[c][v] = self.counts[c].get(v, 0) + edges

    # ------------------------------------------------------------------
    def recompute_counts(self, sid: int) -> Dict[int, int]:
        """From-scratch count row for ``sid`` (test oracle)."""
        counts: Dict[int, int] = {}
        for w in self.partition.members(sid):
            for y in self.adjacency[w]:
                c = self.partition.supernode_of(y)
                counts[c] = counts.get(c, 0) + 1
        internal = counts.pop(sid, 0)
        if internal:
            counts[sid] = internal // 2
        return counts
