"""Crash-safe filesystem primitives shared by every writer in the package.

The invariant all writers need: *an interrupted write never clobbers a
previous good artifact*. :func:`atomic_write` provides it the classic way
— write to a temporary file in the destination directory, flush + fsync,
then :func:`os.replace` over the target (atomic on POSIX within one
filesystem). A crash at any point leaves either the old file or the new
file, never a torn mix.

This is a leaf module (stdlib only) so ``graph.io``, ``binaryio``,
``streaming`` and ``resilience`` can all use it without import cycles.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
import zlib
from typing import IO, Callable, Iterator, Optional, Union

__all__ = ["atomic_write", "fsync_directory", "file_crc32"]

PathLike = Union[str, "os.PathLike[str]"]


def fsync_directory(path: PathLike) -> None:
    """fsync a directory so a completed rename survives power loss.

    Best-effort: some platforms/filesystems refuse to open directories
    (or to fsync them); those errors are swallowed because the rename
    itself is still atomic — only its durability window changes.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextlib.contextmanager
def atomic_write(
    dest: PathLike,
    mode: str = "wb",
    encoding: Optional[str] = None,
    open_fn: Optional[Callable[[str], IO]] = None,
) -> Iterator[IO]:
    """Context manager yielding a handle whose contents replace ``dest``
    atomically on success and vanish on failure.

    Parameters
    ----------
    dest:
        Final path. The temporary file is created in the same directory so
        the final :func:`os.replace` never crosses filesystems.
    mode / encoding:
        Passed to :func:`open` for the temporary file (``"wb"`` or ``"w"``).
    open_fn:
        Alternative opener called with the temporary path — lets callers
        layer gzip or other wrappers on top while keeping atomicity.

    The handle is closed *before* the rename (finalizing any wrapper
    stream, e.g. the gzip trailer), the raw bytes are fsynced, and the
    containing directory is fsynced after the rename.
    """
    dest = os.fspath(dest)
    directory = os.path.dirname(dest) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(dest) + ".", suffix=".tmp", dir=directory
    )
    os.close(fd)
    handle: Optional[IO] = None
    try:
        handle = (
            open_fn(tmp) if open_fn is not None
            else open(tmp, mode, encoding=encoding)
        )
        yield handle
        handle.close()        # finalize wrapper streams (gzip trailer etc.)
        handle = None
        with open(tmp, "rb") as raw:
            os.fsync(raw.fileno())
        os.replace(tmp, dest)
        fsync_directory(directory)
    except BaseException:
        if handle is not None:
            with contextlib.suppress(Exception):
                handle.close()
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def file_crc32(path: PathLike, chunk_size: int = 1 << 20) -> int:
    """CRC32 of a file's contents (streamed, constant memory)."""
    crc = 0
    with open(os.fspath(path), "rb") as fh:
        while True:
            chunk = fh.read(chunk_size)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)
