"""Opt-in profiling: per-kernel self-time hooks and a sampling profiler.

Two complementary tools, both disabled by default:

* :class:`KernelProfiler` — deterministic wall-clock attribution for the
  three numpy hot-path kernels (``wtable``, ``doph_bulk``,
  ``encode_sorted``). The kernels are decorated with
  ``@profile.profiled("<name>")``; when no profiler is installed a call
  costs one global read and an ``is None`` test, so the hooks are free in
  production (benchmarked in ``benchmarks/test_obs_overhead.py``,
  attribution committed to ``BENCH_obs.json``). The instrumented kernels
  never call each other, so per-call wall time *is* self-time.
* :class:`SamplingProfiler` — a background thread that samples another
  thread's Python stack at a fixed interval and attributes samples to the
  innermost ``repro`` frame (a miniature py-spy). Used by the
  ``--profile`` CLI knob on ``serve`` and ``loadgen``, where there is no
  single instrumented hot loop to hook.
"""

from __future__ import annotations

import functools
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "KernelProfiler",
    "SamplingProfiler",
    "kernel",
    "profiled",
    "use",
    "active",
]


class KernelProfiler:
    """Accumulates per-kernel call counts and self-time.

    Thread-safe; one instance can be shared by the whole process (the
    multiprocess merge planner profiles only parent-side kernel calls —
    worker self-time is attributed by the worker's own profiler, if any).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: Dict[str, int] = {}
        self._seconds: Dict[str, float] = {}

    def record(self, name: str, seconds: float) -> None:
        """Add one finished kernel call to the tally."""
        with self._lock:
            self._calls[name] = self._calls.get(name, 0) + 1
            self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def summary(self) -> Dict[str, Dict[str, float]]:
        """``{kernel: {"calls": n, "seconds": s}}`` for every kernel."""
        with self._lock:
            return {
                name: {
                    "calls": self._calls[name],
                    "seconds": self._seconds[name],
                }
                for name in sorted(self._calls)
            }

    def format_table(self) -> str:
        """Human-readable attribution table for CLI output."""
        rows = self.summary()
        if not rows:
            return "no kernel calls recorded"
        width = max(len(name) for name in rows)
        lines = [f"{'kernel':<{width}}  {'calls':>8}  {'seconds':>10}"]
        for name, row in rows.items():
            lines.append(
                f"{name:<{width}}  {row['calls']:>8.0f}  "
                f"{row['seconds']:>10.4f}"
            )
        return "\n".join(lines)


class _KernelTimer:
    """Context manager timing one kernel call into a profiler."""

    __slots__ = ("_profiler", "_name", "_tic")

    def __init__(self, profiler: KernelProfiler, name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._tic = 0.0

    def __enter__(self) -> "_KernelTimer":
        self._tic = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._profiler.record(self._name, time.perf_counter() - self._tic)
        return False


class _NoopTimer:
    """Shared do-nothing timer returned when profiling is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_TIMER = _NoopTimer()

_ACTIVE: Optional[KernelProfiler] = None


class _Use:
    """Context manager installing a process-wide active profiler."""

    __slots__ = ("_profiler", "_previous")

    def __init__(self, profiler: Optional[KernelProfiler]) -> None:
        self._profiler = profiler
        self._previous: Optional[KernelProfiler] = None

    def __enter__(self) -> Optional[KernelProfiler]:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._profiler
        return self._profiler

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False


def use(profiler: Optional[KernelProfiler]) -> _Use:
    """``with use(profiler):`` — route :func:`kernel` timings to it."""
    return _Use(profiler)


def active() -> Optional[KernelProfiler]:
    """The currently installed kernel profiler, or ``None``."""
    return _ACTIVE


def kernel(name: str):
    """Time one kernel call on the active profiler (no-op when off)."""
    profiler = _ACTIVE
    if profiler is None:
        return _NOOP_TIMER
    return _KernelTimer(profiler, name)


def profiled(name: str) -> Callable:
    """Decorator attributing every call of a kernel to ``name``.

    With no active profiler the wrapper is one global read and an
    ``is None`` test on top of the call — cheap enough to leave on the
    production numpy kernels unconditionally.
    """
    def wrap(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def inner(*args, **kwargs):
            profiler = _ACTIVE
            if profiler is None:
                return fn(*args, **kwargs)
            tic = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                profiler.record(name, time.perf_counter() - tic)
        return inner
    return wrap


class SamplingProfiler:
    """Periodically samples a target thread's stack (a mini py-spy).

    Every ``interval`` seconds the sampler walks the target thread's
    current Python stack (via :func:`sys._current_frames`) and charges
    one sample to the innermost frame whose module matches
    ``module_prefix`` — i.e. self-time within this package, with
    third-party/numpy time attributed to the repro frame that called it.

    With ``all_threads=True`` every live thread is sampled each tick
    (one sample per thread, so estimated seconds remain per-thread time)
    — the right mode for thread-pool workloads like the load generator.

    Usage::

        profiler = SamplingProfiler(interval=0.005)
        profiler.start()            # samples the *calling* thread
        ...workload...
        profiler.stop()
        print(profiler.format_table())
    """

    def __init__(
        self,
        interval: float = 0.005,
        module_prefix: str = "repro",
        all_threads: bool = False,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.module_prefix = module_prefix
        self.all_threads = all_threads
        self.samples: Dict[str, int] = {}
        self.total_samples = 0
        self._target_id: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def start(self, target_thread_id: Optional[int] = None) -> None:
        """Begin sampling (defaults to the calling thread)."""
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._target_id = (
            target_thread_id
            if target_thread_id is not None
            else threading.get_ident()
        )
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling and join the sampler thread."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval):
            frames = sys._current_frames()
            if self.all_threads:
                # One sample per live thread per tick (excluding the
                # sampler itself) — est_seconds stays per-thread time.
                targets = [
                    frame for tid, frame in frames.items() if tid != own_id
                ]
            else:
                frame = frames.get(self._target_id)
                targets = [frame] if frame is not None else []
            if not targets:
                continue
            with self._lock:
                for frame in targets:
                    location = self._attribute(frame)
                    self.total_samples += 1
                    if location is not None:
                        self.samples[location] = (
                            self.samples.get(location, 0) + 1
                        )

    def _attribute(self, frame: Any) -> Optional[str]:
        """Innermost ``module_prefix`` frame, as ``module.function``."""
        while frame is not None:
            module = frame.f_globals.get("__name__", "")
            if module.startswith(self.module_prefix):
                return f"{module}.{frame.f_code.co_name}"
            frame = frame.f_back
        return None

    # ------------------------------------------------------------------
    def report(self, top: int = 20) -> List[Tuple[str, int, float]]:
        """Top locations as ``(name, samples, est_seconds)`` tuples."""
        with self._lock:
            items = sorted(
                self.samples.items(), key=lambda kv: -kv[1]
            )[:top]
        return [
            (name, count, count * self.interval) for name, count in items
        ]

    def format_table(self, top: int = 20) -> str:
        """Human-readable top-N table for CLI output."""
        rows = self.report(top)
        if not rows:
            return "no samples attributed (workload too short?)"
        width = max(len(name) for name, _, _ in rows)
        lines = [
            f"{'location':<{width}}  {'samples':>8}  {'est_s':>8}"
        ]
        for name, count, seconds in rows:
            lines.append(f"{name:<{width}}  {count:>8}  {seconds:>8.3f}")
        return "\n".join(lines)
