"""Structured tracing: deterministic hierarchical spans over the pipeline.

A :class:`Tracer` records a tree of :class:`Span` objects. Unlike typical
tracing systems, span *ids are deterministic*: each id is a digest of
``(parent id, span name, span key)`` and the trace id is a digest of the
run seed. Two runs of the same configuration therefore produce the same
ids for the same structural positions — which makes the span tree itself
a regression oracle (the golden-trace suite pins it), and makes a
checkpoint-resumed run emit spans *identical* to the ones the
uninterrupted run would have emitted for the same iterations.

Instrumented library code never touches a tracer directly; it calls the
module-level :func:`span` which consults the active tracer installed by
:func:`use`. When no tracer is active (the default), :func:`span` returns
a shared no-op context manager — one global read, one ``is None`` test,
and a constant return, so always-on instrumentation costs nanoseconds
(benchmarked in ``benchmarks/test_obs_overhead.py``).

Cross-process propagation: :meth:`Tracer.context` captures the current
position as a small dict; a worker process rebuilds a child tracer from
it with :meth:`Tracer.from_context`, records spans, and ships
:meth:`Tracer.records` back for the parent to :meth:`Tracer.ingest`.
Because ids are deterministic, the stitched tree is identical to the one
a single-process run would have produced.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["Span", "Tracer", "span", "use", "active", "context"]


def _digest(*parts: object) -> str:
    """16-hex-char stable id from the structural position."""
    h = hashlib.sha1("/".join(str(p) for p in parts).encode("utf-8"))
    return h.hexdigest()[:16]


def _jsonable(value: Any) -> Any:
    """Coerce attribute values to JSON-safe scalars (numpy ints, etc.)."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if hasattr(value, "item"):          # numpy scalar
        return value.item()
    return str(value)


class Span:
    """One timed, attributed node of the trace tree.

    Use as a context manager (entered by :meth:`Tracer.span`). Durations
    are wall-clock and explicitly excluded from golden comparisons;
    names, keys, parent edges and attributes are the pinned structure.
    """

    __slots__ = (
        "name", "key", "span_id", "parent_id", "trace_id",
        "attributes", "start_time", "duration", "status", "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        key: Optional[object],
        span_id: str,
        parent_id: str,
        attributes: Dict[str, Any],
    ) -> None:
        self.name = name
        self.key = key
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = tracer.trace_id
        self.attributes = attributes
        self.start_time = 0.0
        self.duration = 0.0
        self.status = "ok"
        self._tracer = tracer

    def set_attribute(self, name: str, value: Any) -> None:
        """Attach one attribute (coerced to a JSON-safe scalar)."""
        self.attributes[name] = _jsonable(value)

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_time = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start_time
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    def record(self) -> Dict[str, Any]:
        """Serialize to a JSONL-ready dict (the export wire format)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "key": self.key,
            "attributes": dict(self.attributes),
            "start_time": self.start_time,
            "duration": self.duration,
            "status": self.status,
        }


class _NoopSpan:
    """Shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    def set_attribute(self, name: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects spans with deterministic ids derived from ``seed``.

    Thread-safe: the finished-span list is guarded by a lock and the
    open-span stack is thread-local, so spans opened on different threads
    (the serve event loop vs. its batch executor, loadgen workers) nest
    independently. ``max_spans`` bounds memory for long-running servers;
    spans beyond the cap are counted in :attr:`dropped`, never stored.
    """

    def __init__(self, seed: object = 0, max_spans: int = 1_000_000) -> None:
        self.trace_id = _digest("trace", seed)
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._default_parent = self.trace_id
        self._child_counts: Dict[tuple, int] = {}

    # ------------------------------------------------------------------
    # context propagation
    # ------------------------------------------------------------------
    def context(self) -> Dict[str, str]:
        """Portable handle to the current position (for workers)."""
        current = self._stack()[-1] if self._stack() else None
        return {
            "trace_id": self.trace_id,
            "span_id": current.span_id if current else self.trace_id,
        }

    @classmethod
    def from_context(cls, ctx: Dict[str, str]) -> "Tracer":
        """Child tracer whose root spans attach under ``ctx``'s span."""
        tracer = cls()
        tracer.trace_id = ctx["trace_id"]
        tracer._default_parent = ctx["span_id"]
        return tracer

    def records(self) -> List[Dict[str, Any]]:
        """Serialized finished spans (what a worker ships back)."""
        with self._lock:
            return [s.record() for s in self.spans]

    def ingest(self, records: Iterable[Dict[str, Any]]) -> None:
        """Adopt spans recorded elsewhere (worker processes)."""
        for doc in records:
            span_obj = Span(
                self, doc["name"], doc.get("key"), doc["span_id"],
                doc["parent_id"], dict(doc.get("attributes") or {}),
            )
            span_obj.trace_id = doc.get("trace_id", self.trace_id)
            span_obj.start_time = doc.get("start_time", 0.0)
            span_obj.duration = doc.get("duration", 0.0)
            span_obj.status = doc.get("status", "ok")
            self._store(span_obj)

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        key: Optional[object] = None,
        parent: Optional[object] = None,
        **attrs: Any,
    ) -> Span:
        """Open a child span of the current span (or of ``parent``).

        ``parent`` may be a :class:`Span`, a context dict from
        :meth:`context`, or ``None`` (ambient: the thread's innermost
        open span). Spans opened on *other* threads pass an explicit
        parent because the open-span stack is thread-local.

        ``key`` disambiguates repeated same-name children under one
        parent (iteration number, batch index, ...). When omitted, the
        per-parent occurrence index is used — deterministic for runs
        with deterministic structure, but *not* stable across resume
        boundaries, so resume-critical spans always pass an explicit key.
        """
        if isinstance(parent, dict):
            parent_id = parent["span_id"]
        elif isinstance(parent, Span):
            parent_id = parent.span_id
        else:
            stack = self._stack()
            parent_id = stack[-1].span_id if stack else self._default_parent
        if key is None:
            with self._lock:
                index = self._child_counts.get((parent_id, name), 0)
                self._child_counts[(parent_id, name)] = index + 1
            key = index
        span_id = _digest(parent_id, name, key)
        attributes = {k: _jsonable(v) for k, v in attrs.items()}
        return Span(self, name, key, span_id, parent_id, attributes)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span_obj: Span) -> None:
        self._stack().append(span_obj)

    def _pop(self, span_obj: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span_obj:
            stack.pop()
        self._store(span_obj)

    def _store(self, span_obj: Span) -> None:
        with self._lock:
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
                return
            self.spans.append(span_obj)

    # ------------------------------------------------------------------
    # inspection and export
    # ------------------------------------------------------------------
    def tree(self, include_attributes: bool = True) -> List[Dict[str, Any]]:
        """Canonical nested view: names, keys, parent edges, attributes.

        Children are sorted by ``(name, str(key))`` so the result is
        independent of completion order (worker batches finish in any
        order); durations and timestamps are omitted. This is the exact
        structure the golden-trace suite pins.
        """
        with self._lock:
            spans = list(self.spans)
        ids = {s.span_id for s in spans}
        children: Dict[str, List[Span]] = {}
        roots: List[Span] = []
        for s in spans:
            if s.parent_id in ids:
                children.setdefault(s.parent_id, []).append(s)
            else:
                roots.append(s)

        def build(node: Span) -> Dict[str, Any]:
            doc: Dict[str, Any] = {"name": node.name, "key": node.key}
            if include_attributes:
                doc["attributes"] = dict(node.attributes)
            kids = sorted(
                children.get(node.span_id, []),
                key=lambda c: (c.name, str(c.key)),
            )
            doc["children"] = [build(c) for c in kids]
            return doc

        roots.sort(key=lambda s: (s.name, str(s.key)))
        return [build(root) for root in roots]

    def find(self, name: str) -> List[Span]:
        """All finished spans with the given name (completion order)."""
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def export_jsonl(self, path: str) -> int:
        """Write one span record per line; returns the number written."""
        with self._lock:
            records = [s.record() for s in self.spans]
        with open(path, "w", encoding="utf-8") as fh:
            for doc in records:
                fh.write(json.dumps(doc, sort_keys=True) + "\n")
        return len(records)


# ----------------------------------------------------------------------
# module-level active tracer (the instrumentation seam)
# ----------------------------------------------------------------------
_ACTIVE: Optional[Tracer] = None


class _Use:
    """Context manager installing a tracer as the process-wide active one."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Optional[Tracer]) -> None:
        self._tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Optional[Tracer]:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._tracer
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False


def use(tracer: Optional[Tracer]) -> _Use:
    """``with use(tracer):`` — route :func:`span` calls to ``tracer``."""
    return _Use(tracer)


def active() -> Optional[Tracer]:
    """The currently installed tracer, or ``None``."""
    return _ACTIVE


def context() -> Optional[Dict[str, str]]:
    """Current trace context for worker propagation (``None`` if off)."""
    tracer = _ACTIVE
    return tracer.context() if tracer is not None else None


def span(
    name: str,
    key: Optional[object] = None,
    parent: Optional[object] = None,
    **attrs: Any,
):
    """Open a span on the active tracer; a shared no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP_SPAN
    return tracer.span(name, key, parent, **attrs)
