"""repro.obs — end-to-end observability for the summarization stack.

Three cooperating layers, all opt-in and all no-ops (sub-microsecond)
when disabled:

* :mod:`repro.obs.trace` — hierarchical spans over the pipeline
  (``run → iteration → divide/merge/encode → group_batch``) with span
  ids derived deterministically from the run seed, so a fixed-seed run
  produces a *pinnable* span tree (the golden-trace regression oracle in
  ``tests/obs/test_golden_trace.py``) and a checkpoint-resumed run emits
  exactly the spans the uninterrupted run would have.
* :mod:`repro.obs.metrics` — the unified counters/gauges/histograms
  registry shared by the pipeline and the query server (it absorbed
  ``repro.serve.metrics``), with a Prometheus text-format exporter and
  the serve scrape endpoint.
* :mod:`repro.obs.profile` — per-kernel self-time hooks around the
  numpy hot-path kernels plus a stack-sampling profiler, powering the
  attribution columns in ``BENCH_obs.json``.

See ``docs/observability.md`` for the span model and metric name
tables.
"""

from .metrics import Histogram, MetricsRegistry
from .profile import KernelProfiler, SamplingProfiler
from .trace import Span, Tracer

__all__ = [
    "Histogram",
    "KernelProfiler",
    "MetricsRegistry",
    "SamplingProfiler",
    "Span",
    "Tracer",
]
