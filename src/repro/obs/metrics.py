"""The unified metrics registry: counters, gauges, histograms, Prometheus.

One implementation now serves every layer: the serving plane (this module
absorbed ``repro.serve.metrics``, which re-exports it for compatibility)
and the summarization pipeline (:class:`~repro.metrics.PhaseTimer`
forwards phase timings here when a registry is active). Counters only go
up, gauges are set, histograms keep a bounded reservoir from which
percentiles are computed on snapshot. Everything is thread-safe because
observations come from the event loop, the batch-executor thread, and
loadgen workers.

Metrics may carry Prometheus-style labels (``registry.inc("x", labels=
{"backend": "numpy"})``). :meth:`MetricsRegistry.to_prometheus` renders
the whole registry in the Prometheus text exposition format — served by
the query server's ``metrics`` op and its optional HTTP scrape endpoint
(``ServerConfig.metrics_port``) and verified against a minimal parser in
``tests/obs/test_prometheus.py``.

Like :mod:`repro.obs.trace`, pipeline instrumentation goes through the
module-level :func:`inc` / :func:`observe` / :func:`set_gauge`, which
no-op unless a registry is installed with :func:`use`.
"""

from __future__ import annotations

import math
import re
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "use",
    "active",
    "inc",
    "observe",
    "set_gauge",
]

#: Canonical flattened key for a labeled series, e.g. ``x{a="1",b="2"}``.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, object]]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _flat_name(name: str, key: LabelKey) -> str:
    if not key:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return f"{name}{{{inner}}}"


class Histogram:
    """Bounded-reservoir histogram with exact count/sum.

    Keeps the most recent ``capacity`` observations (a ring buffer), which
    is the standard trade-off for sliding-window latency percentiles: old
    samples age out instead of dominating forever.

    This is the **single** histogram implementation in the repo — the
    serving layer imports it from here, and the Hypothesis suite in
    ``tests/obs/test_metrics_unified.py`` property-tests it (percentiles
    are insertion-order-insensitive below capacity and always bounded by
    the reservoir min/max).
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._ring: List[float] = []
        self._next = 0
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if len(self._ring) < self._capacity:
            self._ring.append(value)
        else:
            self._ring[self._next] = value
            self._next = (self._next + 1) % self._capacity


    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile over the reservoir (``q`` in [0, 100])."""
        if not self._ring:
            return None
        ordered = sorted(self._ring)
        rank = max(0, min(len(ordered) - 1,
                          int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def summary(self) -> Dict[str, Any]:
        """count/mean/p50/p95/p99/max over the current reservoir."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.total / self.count,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": max(self._ring) if self._ring else None,
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[LabelKey, float]] = {}
        self._gauges: Dict[str, Dict[LabelKey, float]] = {}
        self._histograms: Dict[str, Dict[LabelKey, Histogram]] = {}
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    def inc(
        self, name: str, amount: float = 1, *,
        labels: Optional[Dict[str, object]] = None,
    ) -> None:
        """Increment counter ``name`` (created at zero on first use)."""
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0) + amount

    def counter(
        self, name: str, *, labels: Optional[Dict[str, object]] = None,
    ) -> float:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, {}).get(_label_key(labels), 0)

    def set_gauge(
        self, name: str, value: float, *,
        labels: Optional[Dict[str, object]] = None,
    ) -> None:
        """Set gauge ``name`` to ``value``."""
        with self._lock:
            self._gauges.setdefault(name, {})[_label_key(labels)] = value

    def gauge(
        self, name: str, *, labels: Optional[Dict[str, object]] = None,
    ) -> Optional[float]:
        """Current value of a gauge (``None`` if never set)."""
        with self._lock:
            return self._gauges.get(name, {}).get(_label_key(labels))

    def observe(
        self, name: str, value: float, *,
        labels: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record ``value`` into histogram ``name``."""
        key = _label_key(labels)
        with self._lock:
            series = self._histograms.setdefault(name, {})
            hist = series.get(key)
            if hist is None:
                hist = series[key] = Histogram()
            hist.observe(value)

    def histogram(
        self, name: str, *, labels: Optional[Dict[str, object]] = None,
    ) -> Optional[Histogram]:
        """The underlying histogram (``None`` if nothing was observed)."""
        with self._lock:
            return self._histograms.get(name, {}).get(_label_key(labels))

    # ------------------------------------------------------------------
    @property
    def uptime_seconds(self) -> float:
        """Seconds since the registry was created."""
        return time.monotonic() - self._started

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable dump of every metric.

        Unlabeled series appear under their plain name; labeled series
        under ``name{k="v",...}`` — the stats op's wire format.
        """
        with self._lock:
            return {
                "uptime_seconds": self.uptime_seconds,
                "counters": {
                    _flat_name(name, key): value
                    for name, series in self._counters.items()
                    for key, value in series.items()
                },
                "gauges": {
                    _flat_name(name, key): value
                    for name, series in self._gauges.items()
                    for key, value in series.items()
                },
                "histograms": {
                    _flat_name(name, key): hist.summary()
                    for name, series in self._histograms.items()
                    for key, hist in series.items()
                },
            }

    def format_line(self) -> str:
        """One human-readable log line (the periodic server heartbeat)."""
        snap = self.snapshot()
        uptime = max(snap["uptime_seconds"], 1e-9)
        requests = snap["counters"].get("requests_total", 0)
        parts = [
            f"uptime={uptime:.0f}s",
            f"requests={requests}",
            f"qps={requests / uptime:.1f}",
        ]
        latency = snap["histograms"].get("request_latency_seconds")
        if latency and latency.get("count"):
            parts.append(
                "latency_ms p50={:.2f} p95={:.2f} p99={:.2f}".format(
                    latency["p50"] * 1e3,
                    latency["p95"] * 1e3,
                    latency["p99"] * 1e3,
                )
            )
        batch = snap["histograms"].get("batch_size")
        if batch and batch.get("count"):
            parts.append(f"batch_mean={batch['mean']:.1f}")
        for name in ("cache_hit_rate", "queue_depth", "inflight"):
            if name in snap["gauges"]:
                value = snap["gauges"][name]
                parts.append(
                    f"{name}={value:.2f}"
                    if isinstance(value, float) and name == "cache_hit_rate"
                    else f"{name}={value:g}"
                )
        errors = sum(
            count for name, count in snap["counters"].items()
            if name.startswith("errors_")
        )
        parts.append(f"errors={errors}")
        return "serve " + " ".join(parts)

    # ------------------------------------------------------------------
    # Prometheus text exposition format
    # ------------------------------------------------------------------
    def to_prometheus(self, prefix: str = "repro_") -> str:
        """Render every metric in the Prometheus text format (0.0.4).

        Counters render as ``counter``, gauges as ``gauge``, histograms
        as ``summary`` (quantile series plus ``_sum``/``_count``). Names
        are sanitized to the Prometheus grammar, label values escaped,
        and non-finite values skipped — the output stays NaN-free so any
        conformant scraper accepts it.
        """
        with self._lock:
            counters = {
                name: dict(series) for name, series in self._counters.items()
            }
            gauges = {
                name: dict(series) for name, series in self._gauges.items()
            }
            histograms = {
                name: {
                    key: (hist.count, hist.total, hist.percentile(50),
                          hist.percentile(95), hist.percentile(99))
                    for key, hist in series.items()
                }
                for name, series in self._histograms.items()
            }
        lines: List[str] = []
        for name in sorted(counters):
            metric = _prom_name(prefix + name)
            lines.append(f"# TYPE {metric} counter")
            for key, value in sorted(counters[name].items()):
                if _finite(value):
                    lines.append(
                        f"{metric}{_prom_labels(key)} {_prom_value(value)}"
                    )
        for name in sorted(gauges):
            metric = _prom_name(prefix + name)
            lines.append(f"# TYPE {metric} gauge")
            for key, value in sorted(gauges[name].items()):
                if _finite(value):
                    lines.append(
                        f"{metric}{_prom_labels(key)} {_prom_value(value)}"
                    )
        for name in sorted(histograms):
            metric = _prom_name(prefix + name)
            lines.append(f"# TYPE {metric} summary")
            for key, (count, total, p50, p95, p99) in sorted(
                histograms[name].items()
            ):
                for quantile, value in (("0.5", p50), ("0.95", p95),
                                        ("0.99", p99)):
                    if value is not None and _finite(value):
                        labeled = key + (("quantile", quantile),)
                        lines.append(
                            f"{metric}{_prom_labels(labeled)} "
                            f"{_prom_value(value)}"
                        )
                if _finite(total):
                    lines.append(
                        f"{metric}_sum{_prom_labels(key)} "
                        f"{_prom_value(total)}"
                    )
                lines.append(f"{metric}_count{_prom_labels(key)} {count}")
        return "\n".join(lines) + ("\n" if lines else "")


_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _prom_name(name: str) -> str:
    """Coerce an arbitrary metric name into the Prometheus grammar."""
    if _NAME_OK.match(name):
        return name
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def _prom_labels(key: LabelKey) -> str:
    if not key:
        return ""
    parts = []
    for label, value in key:
        escaped = (
            str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )
        parts.append(f'{_prom_name(label)}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def _prom_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _finite(value: float) -> bool:
    try:
        return math.isfinite(value)
    except TypeError:
        return False


# ----------------------------------------------------------------------
# module-level active registry (the pipeline instrumentation seam)
# ----------------------------------------------------------------------
_ACTIVE: Optional[MetricsRegistry] = None


class _Use:
    """Context manager installing a process-wide active registry."""

    __slots__ = ("_registry", "_previous")

    def __init__(self, registry: Optional[MetricsRegistry]) -> None:
        self._registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> Optional[MetricsRegistry]:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._registry
        return self._registry

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False


def use(registry: Optional[MetricsRegistry]) -> _Use:
    """``with use(registry):`` — route module-level calls to it."""
    return _Use(registry)


def active() -> Optional[MetricsRegistry]:
    """The currently installed registry, or ``None``."""
    return _ACTIVE


def inc(
    name: str, amount: float = 1, *,
    labels: Optional[Dict[str, object]] = None,
) -> None:
    """Increment on the active registry; no-op when none is installed."""
    registry = _ACTIVE
    if registry is not None:
        registry.inc(name, amount, labels=labels)


def observe(
    name: str, value: float, *,
    labels: Optional[Dict[str, object]] = None,
) -> None:
    """Observe on the active registry; no-op when none is installed."""
    registry = _ACTIVE
    if registry is not None:
        registry.observe(name, value, labels=labels)


def set_gauge(
    name: str, value: float, *,
    labels: Optional[Dict[str, object]] = None,
) -> None:
    """Set a gauge on the active registry; no-op when none installed."""
    registry = _ACTIVE
    if registry is not None:
        registry.set_gauge(name, value, labels=labels)
