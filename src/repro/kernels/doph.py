"""Bulk DOPH signatures (Algorithm 2, batched).

Two implementations of the same contract — an ``(num_rows, k)`` signature
matrix whose every row equals :func:`repro.lsh.doph.doph_signature` of the
corresponding binary vector:

* :func:`doph_signatures_bulk_numpy` — the production path: one
  ``minimum.at`` scatter computes all bin minima at once, then the
  rotation (or optimal-probing) densification is applied to every
  empty bin of every row with array ops only.
* :func:`doph_signatures_bulk_python` — the differential-testing
  reference: a per-row Python loop over the scalar signature.

All-zero rows come back as all-``EMPTY`` (the isolated-supernode sentinel
the divide step relies on) under both implementations and both
densification modes.

The numpy path is factored into two exported stages so the multiprocess
driver can split the scatter across workers:

* :func:`doph_scatter_min` — chunked, cache-blocked flat min-scatter over
  any *subset* of the ``(row, item)`` entries. Minimum is associative and
  commutative, so partial scatters over an arbitrary partitioning of the
  entries, reduced with ``np.minimum``, equal the single-pass scatter
  bit-for-bit.
* :func:`doph_densify` — rotation / optimal-probing densification of the
  scattered bin minima into final signatures.
"""

from __future__ import annotations

import numpy as np

from ..lsh.doph import EMPTY, doph_signature
from ..obs import profile

__all__ = [
    "SCATTER_EMPTY",
    "doph_scatter_min",
    "doph_densify",
    "doph_signatures_bulk_numpy",
    "doph_signatures_bulk_python",
]

#: Sentinel for never-written scatter slots (wins no minimum).
SCATTER_EMPTY = np.iinfo(np.int64).max

#: Entries per scatter chunk when ``chunk_rows`` is 0 (auto). Sized so the
#: chunk's gather/index temporaries (~3 arrays × 4 bytes) stay within a
#: typical L2 cache, which is where the old one-shot 2-D ``minimum.at``
#: lost its 1e6-scale throughput.
_AUTO_CHUNK_ROWS = 1 << 18


def _check_bulk_args(
    row_ids: np.ndarray,
    item_ids: np.ndarray,
    k: int,
    directions: np.ndarray,
) -> tuple:
    if k < 1:
        raise ValueError("k must be >= 1")
    if directions.shape != (k,):
        raise ValueError("directions must have length k")
    row_ids = np.asarray(row_ids, dtype=np.int64)
    item_ids = np.asarray(item_ids, dtype=np.int64)
    if row_ids.shape != item_ids.shape:
        raise ValueError("row_ids and item_ids must have equal length")
    return row_ids, item_ids


def doph_signatures_bulk_python(
    row_ids: np.ndarray,
    item_ids: np.ndarray,
    num_rows: int,
    perm: np.ndarray,
    k: int,
    directions: np.ndarray,
    densification: str = "rotation",
) -> np.ndarray:
    """Reference bulk path: one scalar :func:`doph_signature` per row."""
    row_ids, item_ids = _check_bulk_args(row_ids, item_ids, k, directions)
    sig = np.full((num_rows, k), EMPTY, dtype=np.int64)
    order = np.argsort(row_ids, kind="stable")
    sorted_rows = row_ids[order]
    sorted_items = item_ids[order]
    bounds = np.searchsorted(sorted_rows, np.arange(num_rows + 1))
    for r in range(num_rows):
        lo, hi = int(bounds[r]), int(bounds[r + 1])
        if lo == hi:
            continue
        sig[r] = doph_signature(
            sorted_items[lo:hi], perm, k, directions,
            densification=densification,
        )
    return sig


def doph_scatter_min(
    row_ids: np.ndarray,
    item_ids: np.ndarray,
    num_rows: int,
    perm: np.ndarray,
    k: int,
    chunk_rows: int = 0,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Chunked cache-blocked bin-minimum scatter.

    Returns (or min-combines into ``out``) a flat ``(num_rows * k,)``
    int64 array whose slot ``r * k + b`` holds the minimum offset seen in
    bin ``b`` of row ``r``, or :data:`SCATTER_EMPTY` when the bin never
    received an entry. Processing ``chunk_rows`` entries at a time keeps
    the gathered index/offset temporaries cache-resident, and the flat
    1-D ``minimum.at`` takes numpy's fast indexed-loop path (the 2-D
    fancy-index form does not); together these are what recover the
    large-graph throughput the benchmark ladder tracks.

    The scatter over any subset of entries is a partial result: because
    ``min`` is associative and commutative, ``np.minimum`` of per-range
    partials over a partitioning of the entries is bit-identical to the
    one-pass scatter, which is how the multiprocess driver fans the
    scatter out across workers.
    """
    n = perm.shape[0]
    bin_size = -(-n // k)  # ceil(n / k), matching the scalar kernel
    total = num_rows * k
    if out is None:
        out = np.full(total, SCATTER_EMPTY, dtype=np.int64)
    elif out.shape != (total,) or out.dtype != np.int64:
        raise ValueError("out must be a flat (num_rows * k,) int64 array")
    if item_ids.size == 0:
        return out
    if chunk_rows <= 0:
        chunk_rows = _AUTO_CHUNK_ROWS
    # int32 intermediates halve scatter bandwidth whenever the values fit;
    # integer minima are exact in either width so the result is identical.
    narrow = total < 2**31 and bin_size < 2**31
    value_dt = np.int32 if narrow else np.int64
    index_dt = np.int32 if total < 2**31 else np.int64
    value_sentinel = np.iinfo(value_dt).max
    # Per-item lookup tables: bin and offset of every universe element.
    item_bins = (perm // bin_size).astype(value_dt)
    item_offsets = (perm % bin_size).astype(value_dt)
    flat = np.full(total, value_sentinel, dtype=value_dt)
    for lo in range(0, item_ids.size, chunk_rows):
        hi = min(lo + chunk_rows, item_ids.size)
        chunk_items = item_ids[lo:hi]
        slots = (row_ids[lo:hi] * k).astype(index_dt)
        slots += item_bins[chunk_items].astype(index_dt)
        np.minimum.at(flat, slots, item_offsets[chunk_items])
    written = flat != value_sentinel
    np.minimum(
        out, np.where(written, flat.astype(np.int64), SCATTER_EMPTY), out=out
    )
    return out


def doph_densify(
    filled_flat: np.ndarray,
    num_rows: int,
    k: int,
    directions: np.ndarray,
    densification: str = "rotation",
) -> np.ndarray:
    """Turn scattered bin minima into final signatures.

    ``filled_flat`` is the :func:`doph_scatter_min` output (consumed —
    treat it as scratch). Empty bins of populated rows are filled by the
    selected densification scheme; all-empty rows become all-``EMPTY``.
    """
    filled = filled_flat.reshape(num_rows, k)
    populated = filled != SCATTER_EMPTY
    sig = np.where(populated, filled, np.int64(EMPTY))
    needs_fill = ~populated.all(axis=1) & populated.any(axis=1)
    if not np.any(needs_fill):
        return sig
    sub_pop = populated[needs_fill]
    if densification == "rotation":
        source = _rotation_sources(sub_pop, k, directions)
    elif densification == "optimal":
        source = _optimal_sources(sub_pop, k, directions)
    else:
        raise ValueError("densification must be 'rotation' or 'optimal'")
    sub_sig = sig[needs_fill]
    sig[needs_fill] = np.take_along_axis(sub_sig, source, axis=1)
    return sig


@profile.profiled("doph_bulk")
def doph_signatures_bulk_numpy(
    row_ids: np.ndarray,
    item_ids: np.ndarray,
    num_rows: int,
    perm: np.ndarray,
    k: int,
    directions: np.ndarray,
    densification: str = "rotation",
    chunk_rows: int = 0,
) -> np.ndarray:
    """Vectorized bulk path: scatter bin minima, densify all rows at once.

    ``(row_ids[i], item_ids[i])`` pairs list the 1-bits of ``num_rows``
    binary vectors (duplicates are harmless — the signature is a minimum).
    This is the production path of LDME's divide step: no per-supernode
    Python work regardless of how many supernodes are hashed.
    ``chunk_rows`` bounds the entries scattered per cache-blocked chunk
    (0 = auto); every chunking yields bit-identical signatures.
    """
    row_ids, item_ids = _check_bulk_args(row_ids, item_ids, k, directions)
    flat = doph_scatter_min(
        row_ids, item_ids, num_rows, perm, k, chunk_rows=chunk_rows
    )
    return doph_densify(flat, num_rows, k, directions, densification)


def _rotation_sources(
    sub_pop: np.ndarray, k: int, directions: np.ndarray
) -> np.ndarray:
    """Per-(row, bin) source column under rotation densification.

    For every empty bin, the nearest populated bin in the direction chosen
    by ``D`` with wraparound; populated bins map to themselves.
    """
    cols = np.arange(k, dtype=np.int64)
    # Nearest populated column <= j (or -1), then wrap to the row's last.
    left = np.maximum.accumulate(np.where(sub_pop, cols, -1), axis=1)
    last_pop = (k - 1) - np.argmax(sub_pop[:, ::-1], axis=1)
    left = np.where(left < 0, last_pop[:, None], left)
    # Nearest populated column >= j (or k), then wrap to the row's first.
    right_rev = np.maximum.accumulate(
        np.where(sub_pop[:, ::-1], cols, -1), axis=1
    )[:, ::-1]
    right = np.where(right_rev < 0, -1, (k - 1) - right_rev)
    first_pop = np.argmax(sub_pop, axis=1)
    right = np.where(right < 0, first_pop[:, None], right)
    return np.where(directions[None, :] == 1, right, left)


def _optimal_sources(
    sub_pop: np.ndarray, k: int, directions: np.ndarray
) -> np.ndarray:
    """Per-(row, bin) source column under optimal (probing) densification.

    Mirrors the scalar probe sequence exactly: empty bin ``i`` probes
    ``(1_000_003 * (i + 1) + 69_069 * attempt + seed_base) % k`` for
    ``attempt = 0, 1, ...`` until it hits a populated bin. The probe
    target depends only on the column and the attempt number, so one
    length-``k`` probe vector per attempt resolves every row at once.
    """
    seed_base = int.from_bytes(
        directions.astype(np.uint8).tobytes()[:8].ljust(8, b"\0"),
        "little",
    )
    cols = np.arange(k, dtype=np.int64)
    source = np.where(sub_pop, cols[None, :], np.int64(-1))
    unresolved = source < 0
    attempt = 0
    while np.any(unresolved):
        if attempt < k:
            probes = (1_000_003 * (cols + 1) + 69_069 * attempt + seed_base) % k
        else:
            probes = (1_000_003 * (cols + 1) + seed_base + attempt) % k
        hit = unresolved & sub_pop[:, probes]
        source[hit] = np.broadcast_to(probes[None, :], source.shape)[hit]
        unresolved &= ~hit
        attempt += 1
    return source
