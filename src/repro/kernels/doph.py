"""Bulk DOPH signatures (Algorithm 2, batched).

Two implementations of the same contract — an ``(num_rows, k)`` signature
matrix whose every row equals :func:`repro.lsh.doph.doph_signature` of the
corresponding binary vector:

* :func:`doph_signatures_bulk_numpy` — the production path: one
  ``minimum.at`` scatter computes all bin minima at once, then the
  rotation (or optimal-probing) densification is applied to every
  empty bin of every row with array ops only.
* :func:`doph_signatures_bulk_python` — the differential-testing
  reference: a per-row Python loop over the scalar signature.

All-zero rows come back as all-``EMPTY`` (the isolated-supernode sentinel
the divide step relies on) under both implementations and both
densification modes.
"""

from __future__ import annotations

import numpy as np

from ..lsh.doph import EMPTY, doph_signature
from ..obs import profile

__all__ = ["doph_signatures_bulk_numpy", "doph_signatures_bulk_python"]


def _check_bulk_args(
    row_ids: np.ndarray,
    item_ids: np.ndarray,
    k: int,
    directions: np.ndarray,
) -> tuple:
    if k < 1:
        raise ValueError("k must be >= 1")
    if directions.shape != (k,):
        raise ValueError("directions must have length k")
    row_ids = np.asarray(row_ids, dtype=np.int64)
    item_ids = np.asarray(item_ids, dtype=np.int64)
    if row_ids.shape != item_ids.shape:
        raise ValueError("row_ids and item_ids must have equal length")
    return row_ids, item_ids


def doph_signatures_bulk_python(
    row_ids: np.ndarray,
    item_ids: np.ndarray,
    num_rows: int,
    perm: np.ndarray,
    k: int,
    directions: np.ndarray,
    densification: str = "rotation",
) -> np.ndarray:
    """Reference bulk path: one scalar :func:`doph_signature` per row."""
    row_ids, item_ids = _check_bulk_args(row_ids, item_ids, k, directions)
    sig = np.full((num_rows, k), EMPTY, dtype=np.int64)
    order = np.argsort(row_ids, kind="stable")
    sorted_rows = row_ids[order]
    sorted_items = item_ids[order]
    bounds = np.searchsorted(sorted_rows, np.arange(num_rows + 1))
    for r in range(num_rows):
        lo, hi = int(bounds[r]), int(bounds[r + 1])
        if lo == hi:
            continue
        sig[r] = doph_signature(
            sorted_items[lo:hi], perm, k, directions,
            densification=densification,
        )
    return sig


@profile.profiled("doph_bulk")
def doph_signatures_bulk_numpy(
    row_ids: np.ndarray,
    item_ids: np.ndarray,
    num_rows: int,
    perm: np.ndarray,
    k: int,
    directions: np.ndarray,
    densification: str = "rotation",
) -> np.ndarray:
    """Vectorized bulk path: scatter bin minima, densify all rows at once.

    ``(row_ids[i], item_ids[i])`` pairs list the 1-bits of ``num_rows``
    binary vectors (duplicates are harmless — the signature is a minimum).
    This is the production path of LDME's divide step: no per-supernode
    Python work regardless of how many supernodes are hashed.
    """
    n = perm.shape[0]
    row_ids, item_ids = _check_bulk_args(row_ids, item_ids, k, directions)
    bin_size = -(-n // k)
    sentinel = np.iinfo(np.int64).max
    filled = np.full((num_rows, k), sentinel, dtype=np.int64)
    if item_ids.size:
        permuted = perm[item_ids]
        bins = permuted // bin_size
        offsets = permuted % bin_size
        np.minimum.at(filled, (row_ids, bins), offsets)
    populated = filled != sentinel
    sig = np.where(populated, filled, np.int64(EMPTY))
    needs_fill = ~populated.all(axis=1) & populated.any(axis=1)
    if not np.any(needs_fill):
        return sig
    sub_pop = populated[needs_fill]
    if densification == "rotation":
        source = _rotation_sources(sub_pop, k, directions)
    elif densification == "optimal":
        source = _optimal_sources(sub_pop, k, directions)
    else:
        raise ValueError("densification must be 'rotation' or 'optimal'")
    sub_sig = sig[needs_fill]
    sig[needs_fill] = np.take_along_axis(sub_sig, source, axis=1)
    return sig


def _rotation_sources(
    sub_pop: np.ndarray, k: int, directions: np.ndarray
) -> np.ndarray:
    """Per-(row, bin) source column under rotation densification.

    For every empty bin, the nearest populated bin in the direction chosen
    by ``D`` with wraparound; populated bins map to themselves.
    """
    cols = np.arange(k, dtype=np.int64)
    # Nearest populated column <= j (or -1), then wrap to the row's last.
    left = np.maximum.accumulate(np.where(sub_pop, cols, -1), axis=1)
    last_pop = (k - 1) - np.argmax(sub_pop[:, ::-1], axis=1)
    left = np.where(left < 0, last_pop[:, None], left)
    # Nearest populated column >= j (or k), then wrap to the row's first.
    right_rev = np.maximum.accumulate(
        np.where(sub_pop[:, ::-1], cols, -1), axis=1
    )[:, ::-1]
    right = np.where(right_rev < 0, -1, (k - 1) - right_rev)
    first_pop = np.argmax(sub_pop, axis=1)
    right = np.where(right < 0, first_pop[:, None], right)
    return np.where(directions[None, :] == 1, right, left)


def _optimal_sources(
    sub_pop: np.ndarray, k: int, directions: np.ndarray
) -> np.ndarray:
    """Per-(row, bin) source column under optimal (probing) densification.

    Mirrors the scalar probe sequence exactly: empty bin ``i`` probes
    ``(1_000_003 * (i + 1) + 69_069 * attempt + seed_base) % k`` for
    ``attempt = 0, 1, ...`` until it hits a populated bin. The probe
    target depends only on the column and the attempt number, so one
    length-``k`` probe vector per attempt resolves every row at once.
    """
    seed_base = int.from_bytes(
        directions.astype(np.uint8).tobytes()[:8].ljust(8, b"\0"),
        "little",
    )
    cols = np.arange(k, dtype=np.int64)
    source = np.where(sub_pop, cols[None, :], np.int64(-1))
    unresolved = source < 0
    attempt = 0
    while np.any(unresolved):
        if attempt < k:
            probes = (1_000_003 * (cols + 1) + 69_069 * attempt + seed_base) % k
        else:
            probes = (1_000_003 * (cols + 1) + seed_base + attempt) % k
        hit = unresolved & sub_pop[:, probes]
        source[hit] = np.broadcast_to(probes[None, :], source.shape)[hit]
        unresolved &= ~hit
        attempt += 1
    return source
