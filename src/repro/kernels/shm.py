"""Zero-copy shared-memory arenas for multiprocess kernels.

:class:`SharedGraphArena` places a set of named numpy arrays — the CSR
adjacency, the partition/membership tables and preallocated output slabs —
into ``multiprocessing.shared_memory`` segments, described by a small
picklable :class:`ArenaDescriptor` (segment names, dtypes, shapes, CRCs).
Workers receive the *descriptor* instead of the arrays: attaching maps the
segments zero-copy, so a task costs a few hundred bytes of pickle no matter
how large the graph is. This is the serialization fix behind the paper's
billion-scale parallel claim (ROADMAP item 3).

Ownership rules keep ``/dev/shm`` clean under every failure mode the
resilience suite injects:

* Only the **creator** (the parent driver) ever unlinks. Creation happens
  inside a context manager / ``try‥finally`` and is backstopped by an
  ``atexit`` hook, so normal exit, a mid-run ``KeyboardInterrupt`` and
  test teardown all release the segments.
* Workers are always **fork children** of the creator, so their attach
  shares the creator's resource-tracker process: Python < 3.13 registers
  every attach, but against the shared tracker that is an idempotent
  set-add, never a second owner. A worker that is SIGKILL'd therefore
  cannot leak or destroy anything — the segment outlives it and the
  parent's supervisor retries the batch. (Attaching from a *foreign*
  process with its own tracker is outside this module's contract: that
  tracker would unlink the segment when the foreign process exits.)
* A parent hard-kill (SIGKILL) is covered by the resource tracker
  itself: the creator's registrations survive in the tracker process,
  which unlinks them when the parent disappears.

Integrity: every *input* array records a CRC32 at creation time;
:meth:`SharedGraphArena.attach` re-hashes the mapped bytes and raises the
typed :class:`ArenaDescriptorError` on any mismatch (wrong dtype, shape,
truncated segment, corrupted payload). Output slabs are exempt — they are
written by workers by design. Callers (the multiprocess driver) treat the
typed error as "fall back to the pickle path" and bump
``shm_fallback_total``.
"""

from __future__ import annotations

import atexit
import os
import secrets
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..obs import metrics as obs_metrics

__all__ = [
    "ArenaError",
    "ArenaDescriptorError",
    "ArraySpec",
    "ArenaDescriptor",
    "SharedGraphArena",
    "shared_memory_available",
]

#: Prefix for every segment this module creates — the leak sentinel in
#: ``tests/kernels/conftest.py`` greps ``/dev/shm`` for it.
SEGMENT_PREFIX = "repro-shm"


class ArenaError(RuntimeError):
    """Base class for shared-memory arena failures."""


class ArenaDescriptorError(ArenaError):
    """The descriptor does not match the mapped segments (corruption,
    truncation, dtype/shape drift, or a stale/unlinked arena)."""


@dataclass(frozen=True)
class ArraySpec:
    """One array's location inside the arena.

    ``crc`` is ``None`` for output slabs (worker-written, not integrity
    checked); input arrays pin the CRC32 of their creation-time bytes.
    """

    name: str          # logical array name ("indptr", "members", ...)
    segment: str       # shared-memory segment name
    dtype: str         # numpy dtype string, e.g. "int64"
    shape: Tuple[int, ...]
    crc: Optional[int] = None

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ArenaDescriptor:
    """Picklable handle workers use to attach an arena zero-copy."""

    arena_id: str
    arrays: Tuple[ArraySpec, ...] = field(default_factory=tuple)

    @property
    def nbytes(self) -> int:
        return sum(spec.nbytes for spec in self.arrays)

    def spec(self, name: str) -> ArraySpec:
        """The :class:`ArraySpec` for the named array."""
        for spec in self.arrays:
            if spec.name == name:
                return spec
        raise ArenaDescriptorError(
            f"arena {self.arena_id}: no array named {name!r}"
        )


def _crc(array: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(array).view(np.uint8).data) & 0xFFFFFFFF


def shared_memory_available() -> bool:
    """True when this platform can create and attach shm segments."""
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(
            name=f"{SEGMENT_PREFIX}-probe-{os.getpid():x}-{secrets.token_hex(2)}",
            create=True, size=8,
        )
    except Exception:
        return False
    probe.close()
    probe.unlink()
    return True


class SharedGraphArena:
    """A set of named arrays living in shared-memory segments.

    Build with :meth:`create` (the owning side) or :meth:`attach` (the
    worker side); read arrays back with :meth:`array`. The creator must
    call :meth:`unlink` (or use the instance as a context manager); an
    ``atexit`` hook backstops interpreter exit with arenas still live.
    """

    _live_created: Dict[str, "SharedGraphArena"] = {}
    _atexit_installed = False

    def __init__(
        self,
        descriptor: ArenaDescriptor,
        segments: Dict[str, object],
        owner: bool,
    ) -> None:
        self.descriptor = descriptor
        self._segments = segments          # segment name -> SharedMemory
        self._owner = owner
        # Forked children inherit owner arenas; only the creating *pid*
        # may ever unlink (a worker unlinking would destroy segments the
        # parent still serves to its siblings).
        self._owner_pid = os.getpid()
        self._views: Dict[str, np.ndarray] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        inputs: Mapping[str, np.ndarray],
        outputs: Optional[Mapping[str, Tuple[Tuple[int, ...], np.dtype]]] = None,
        label: str = "arena",
    ) -> "SharedGraphArena":
        """Create segments for ``inputs`` (CRC-pinned copies) and zeroed
        ``outputs`` slabs; returns the owning arena.

        Raises :class:`ArenaError` when the platform cannot provide
        shared memory (caller falls back to the pickle path).
        """
        try:
            from multiprocessing import shared_memory
        except ImportError as exc:  # pragma: no cover - always present on CPython
            raise ArenaError(f"shared memory unavailable: {exc}") from exc
        arena_id = f"{SEGMENT_PREFIX}-{os.getpid():x}-{secrets.token_hex(3)}"
        specs: List[ArraySpec] = []
        segments: Dict[str, object] = {}
        try:
            for idx, (name, array) in enumerate(inputs.items()):
                array = np.ascontiguousarray(array)
                seg_name = f"{arena_id}-{idx:x}"
                seg = shared_memory.SharedMemory(
                    name=seg_name, create=True, size=max(1, array.nbytes),
                )
                segments[seg_name] = seg
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)
                view[...] = array
                specs.append(ArraySpec(
                    name=name, segment=seg_name, dtype=str(array.dtype),
                    shape=tuple(array.shape), crc=_crc(view),
                ))
            for idx, (name, (shape, dtype)) in enumerate(
                (outputs or {}).items()
            ):
                dtype = np.dtype(dtype)
                seg_name = f"{arena_id}-o{idx:x}"
                nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
                seg = shared_memory.SharedMemory(
                    name=seg_name, create=True, size=max(1, nbytes),
                )
                segments[seg_name] = seg
                view = np.ndarray(shape, dtype=dtype, buffer=seg.buf)
                view[...] = 0
                specs.append(ArraySpec(
                    name=name, segment=seg_name, dtype=str(dtype),
                    shape=tuple(shape), crc=None,
                ))
        except ArenaError:
            cls._cleanup_segments(segments)
            raise
        except Exception as exc:
            cls._cleanup_segments(segments)
            raise ArenaError(f"arena creation failed: {exc}") from exc
        arena = cls(ArenaDescriptor(arena_id, tuple(specs)), segments, owner=True)
        cls._live_created[arena_id] = arena
        cls._install_atexit()
        obs_metrics.inc("shm_arena_created_total", labels={"label": label})
        obs_metrics.set_gauge("shm_arena_live_bytes", cls.live_bytes())
        return arena

    @classmethod
    def attach(cls, descriptor: ArenaDescriptor) -> "SharedGraphArena":
        """Map an existing arena read/write; validates dtypes, shapes and
        input CRCs against the descriptor.

        Raises :class:`ArenaDescriptorError` on any mismatch — the arena
        is gone, truncated or corrupted, or the descriptor was tampered
        with. The attach never takes ownership: closing (or dying) leaves
        the segments for the creator to unlink.
        """
        try:
            from multiprocessing import shared_memory
        except ImportError as exc:  # pragma: no cover
            raise ArenaError(f"shared memory unavailable: {exc}") from exc
        segments: Dict[str, object] = {}
        try:
            for spec in descriptor.arrays:
                try:
                    seg = shared_memory.SharedMemory(name=spec.segment)
                except FileNotFoundError as exc:
                    raise ArenaDescriptorError(
                        f"arena {descriptor.arena_id}: segment "
                        f"{spec.segment} does not exist"
                    ) from exc
                segments[spec.segment] = seg
                if seg.size < spec.nbytes:
                    raise ArenaDescriptorError(
                        f"arena {descriptor.arena_id}: segment "
                        f"{spec.segment} holds {seg.size} bytes, descriptor "
                        f"claims {spec.nbytes}"
                    )
                if spec.crc is not None:
                    view = np.ndarray(
                        spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf
                    )
                    found = _crc(view)
                    if found != spec.crc:
                        raise ArenaDescriptorError(
                            f"arena {descriptor.arena_id}: array "
                            f"{spec.name!r} CRC mismatch "
                            f"(descriptor {spec.crc:#x}, mapped {found:#x})"
                        )
        except Exception:
            for seg in segments.values():
                try:
                    seg.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass
            raise
        return cls(descriptor, segments, owner=False)

    def self_check(self) -> None:
        """Re-hash the creator's own views against the descriptor.

        The cheap pre-dispatch guard: a corrupted or tampered descriptor
        is caught in the parent (typed error → pickle-path fallback)
        instead of failing every worker attach.
        """
        for spec in self.descriptor.arrays:
            if spec.crc is None:
                continue
            found = _crc(self.array(spec.name))
            if found != spec.crc:
                raise ArenaDescriptorError(
                    f"arena {self.descriptor.arena_id}: array {spec.name!r} "
                    f"CRC mismatch (descriptor {spec.crc:#x}, "
                    f"mapped {found:#x})"
                )

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def array(self, name: str) -> np.ndarray:
        """Zero-copy view of a named array."""
        if self._closed:
            raise ArenaError(f"arena {self.descriptor.arena_id} is closed")
        view = self._views.get(name)
        if view is None:
            spec = self.descriptor.spec(name)
            seg = self._segments[spec.segment]
            view = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf
            )
            self._views[name] = view
        return view

    @property
    def nbytes(self) -> int:
        return self.descriptor.nbytes

    @classmethod
    def live_bytes(cls) -> int:
        """Total bytes of arenas this process created and has not unlinked."""
        return sum(a.nbytes for a in cls._live_created.values())

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop the views and unmap the segments (does not unlink)."""
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        for seg in self._segments.values():
            try:
                seg.close()
            except (OSError, BufferError):  # pragma: no cover - best effort
                pass

    def unlink(self) -> None:
        """Destroy the segments. Creator-only; idempotent."""
        if not self._owner or self._owner_pid != os.getpid():
            raise ArenaError("only the creating process may unlink an arena")
        self.close()
        for seg in self._segments.values():
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = {}
        type(self)._live_created.pop(self.descriptor.arena_id, None)
        obs_metrics.set_gauge("shm_arena_live_bytes", type(self).live_bytes())

    def __enter__(self) -> "SharedGraphArena":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._owner and self._owner_pid == os.getpid():
            self.unlink()
        else:
            self.close()

    # ------------------------------------------------------------------
    @classmethod
    def _cleanup_segments(cls, segments: Dict[str, object]) -> None:
        for seg in segments.values():
            try:
                seg.close()
                seg.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass

    @classmethod
    def _install_atexit(cls) -> None:
        if cls._atexit_installed:
            return
        cls._atexit_installed = True
        atexit.register(cls._unlink_all_live)

    @classmethod
    def _unlink_all_live(cls) -> None:
        """Interpreter-exit backstop: unlink every arena still owned."""
        for arena in list(cls._live_created.values()):
            if arena._owner_pid != os.getpid():
                continue  # inherited across fork: the parent's to clean
            try:
                arena.unlink()
            except ArenaError:  # pragma: no cover - defensive
                pass


def leaked_segments(names: Iterable[str] = ()) -> List[str]:
    """Names of arena segments still present in ``/dev/shm``.

    The test-suite leak sentinel. On platforms without a ``/dev/shm``
    filesystem this returns an empty list (the sentinel degrades to a
    no-op rather than a false failure).
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    out = []
    wanted = set(names)
    for entry in os.listdir(shm_dir):
        if not entry.startswith(SEGMENT_PREFIX):
            continue
        if wanted and entry not in wanted:
            continue
        out.append(entry)
    return sorted(out)
