"""Array-native sort-based encode (Algorithm 5).

The reference :func:`repro.core.encode.encode_sorted` lexsorts the edge
list once but still materializes a Python tuple for *every* edge and walks
every group run through ``_encode_pair``. This kernel keeps the whole
decision rule in arrays:

* one pass computes every run's edge count, supernode sizes and the
  superedge decision (``2·|E_AB| > |A||B|``, resp. the superloop rule),
* ``C+`` additions are a single boolean mask over the sorted edge arrays
  (no per-run bundles),
* only runs that won a superedge *and* are incomplete blocks enumerate
  their missing pairs — and each such run does so with a vectorized
  member cross-product plus one ``np.isin``.

The output lists (superedges, additions, deletions) are element- and
order-identical to the reference: runs are visited in the same lexsort
order, additions keep the reference's stable within-run edge order and
deletions keep the reference's nested member-loop order.

``partitions > 1`` swaps the single global lexsort for
:func:`partitioned_lexsort` — bucket the edges by primary-key value range,
lexsort each bucket independently, and concatenate. The buckets partition
the primary-key value space in order and per-bucket stable sorts preserve
the original relative order of equal keys, so the concatenated permutation
is *strictly identical* to the global ``np.lexsort`` — partitioning is a
locality/cache knob, never a semantics knob.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.encode import EncodeResult
from ..core.summary import CorrectionSet
from ..obs import profile

__all__ = ["encode_sorted_numpy", "partitioned_lexsort"]

Edge = Tuple[int, int]


def partitioned_lexsort(
    lo: np.ndarray, hi: np.ndarray, partitions: int = 0
) -> np.ndarray:
    """``np.lexsort((hi, lo))`` computed bucket-by-bucket.

    Buckets are contiguous value ranges of the primary key ``lo`` (every
    distinct ``lo`` value maps to exactly one bucket), so sorting each
    bucket with the same stable lexsort and concatenating in bucket order
    reproduces the global permutation bit-for-bit — while each sort runs
    over a cache-sized slice. ``partitions <= 1`` falls back to the global
    sort. Requires non-negative keys (supernode ids).
    """
    if partitions <= 1 or lo.size == 0:
        return np.lexsort((hi, lo))
    span = int(lo.max()) + 1
    num_buckets = min(int(partitions), span)
    if num_buckets <= 1:
        return np.lexsort((hi, lo))
    bucket = (lo * num_buckets) // span
    pieces = []
    for b in range(num_buckets):
        idx = np.flatnonzero(bucket == b)
        if idx.size:
            pieces.append(idx[np.lexsort((hi[idx], lo[idx]))])
    return np.concatenate(pieces)


@profile.profiled("encode_sorted")
def encode_sorted_numpy(graph, partition, partitions: int = 0) -> EncodeResult:
    """Vectorized Algorithm 5; bit-identical to the pure-Python reference.

    ``partitions`` selects the :func:`partitioned_lexsort` bucket count
    (0/1 = single global sort); every value yields identical output.
    """
    superedges: List[Edge] = []
    additions: List[Edge] = []
    deletions: List[Edge] = []
    src, dst = graph.edge_arrays()
    if src.size == 0:
        return EncodeResult(superedges, CorrectionSet(additions, deletions))
    n = np.int64(graph.num_nodes)
    node2super = partition.node2super
    sa = node2super[src]
    sb = node2super[dst]
    lo = np.minimum(sa, sb)
    hi = np.maximum(sa, sb)
    order = partitioned_lexsort(lo, hi, partitions)
    lo, hi, src, dst = lo[order], hi[order], src[order], dst[order]
    change = np.flatnonzero((lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])) + 1
    starts = np.concatenate([[0], change])
    ends = np.concatenate([change, [lo.size]])
    run_lo = lo[starts]
    run_hi = hi[starts]
    run_len = ends - starts
    sizes = np.bincount(node2super, minlength=graph.num_nodes).astype(np.int64)
    size_a = sizes[run_lo]
    size_b = sizes[run_hi]
    is_loop = run_lo == run_hi
    # Decision rule per run: superedge iff strictly more than half of the
    # potential block is present (|F_AB| = |A||B|, |F_AA| = |A|(|A|-1)/2).
    potential = np.where(
        is_loop, size_a * (size_a - 1) // 2, size_a * size_b
    )
    wins = np.where(
        is_loop, 4 * run_len > size_a * (size_a - 1), 2 * run_len > size_a * size_b
    )
    # C+ — all edges of losing runs, in sorted-edge order.
    add_mask = ~np.repeat(wins, run_len)
    additions.extend(
        zip(src[add_mask].tolist(), dst[add_mask].tolist())
    )
    # P — winning runs in run order.
    superedges.extend(
        zip(run_lo[wins].tolist(), run_hi[wins].tolist())
    )
    # C- — winning runs that are not complete blocks enumerate the missing
    # member pairs (reference nested-loop order: members(a) × members(b)).
    edge_keys = src * n + dst
    for r in np.flatnonzero(wins & (run_len < potential)).tolist():
        a = int(run_lo[r])
        b = int(run_hi[r])
        if a != b:
            mem_a = np.asarray(partition.members(a), dtype=np.int64)
            mem_b = np.asarray(partition.members(b), dtype=np.int64)
            uu = np.repeat(mem_a, mem_b.size)
            vv = np.tile(mem_b, mem_a.size)
        else:
            mem = np.asarray(partition.members(a), dtype=np.int64)
            iu, iv = np.triu_indices(mem.size, k=1)
            uu = mem[iu]
            vv = mem[iv]
        key_lo = np.minimum(uu, vv)
        key_hi = np.maximum(uu, vv)
        present = edge_keys[starts[r]:ends[r]]
        missing = ~np.isin(key_lo * n + key_hi, present)
        deletions.extend(
            zip(key_lo[missing].tolist(), key_hi[missing].tolist())
        )
    return EncodeResult(superedges, CorrectionSet(additions, deletions))
