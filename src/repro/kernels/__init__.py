"""Vectorized hot-path kernels.

LDME's claim to billion-scale rests on three phase-level speedups — the
DOPH divide (Algorithm 2/3), exact ``Saving`` over the ``W`` hashtable
(Algorithm 4) and the sort-based encode (Algorithm 5). This package holds
NumPy/CSR implementations of those hot paths:

* :mod:`repro.kernels.wtable` — group-local ``W`` construction as one CSR
  gather + key aggregation (replaces the per-node dict loop in
  :class:`repro.core.saving.GroupAdjacency`).
* :mod:`repro.kernels.doph` — bulk DOPH signatures: batched bin-minimum
  scatter plus vectorized rotation/optimal densification, and the per-node
  scalar loop kept as the differential-testing reference.
* :mod:`repro.kernels.encode` — array-native ``encode_sorted``: lexsort +
  run-length group scan with no per-edge Python tuples on the hot path.
* :mod:`repro.kernels.shm` — :class:`~repro.kernels.shm.SharedGraphArena`:
  CSR/weight/signature arrays in ``multiprocessing.shared_memory``
  segments with a CRC-carrying descriptor, so the multiprocess driver's
  workers attach zero-copy instead of unpickling batches.

Every kernel is **bit-identical** to the pure-Python reference that stays
behind the ``kernels="python"`` knob (see :class:`repro.core.config.
LDMEConfig`); ``tests/kernels/`` machine-checks the equivalence and
``benchmarks/test_kernels_regression.py`` records the speedups in
``BENCH_kernels.json``. See ``docs/performance.md`` for the design and for
how to add a new benchmarked kernel.
"""

from __future__ import annotations

__all__ = [
    "KERNEL_BACKENDS",
    "resolve_backend",
    "build_group_w",
    "doph_signatures_bulk_numpy",
    "doph_signatures_bulk_python",
    "encode_sorted_numpy",
    "ArenaDescriptor",
    "ArenaDescriptorError",
    "ArenaError",
    "SharedGraphArena",
    "shared_memory_available",
]

#: Valid values for the ``kernels`` knob threaded through the pipeline.
KERNEL_BACKENDS = ("python", "numpy")


def resolve_backend(name: str) -> str:
    """Validate and normalize a kernel-backend name."""
    if name not in KERNEL_BACKENDS:
        raise ValueError(
            f"kernels must be one of {KERNEL_BACKENDS}, got {name!r}"
        )
    return name


from .doph import doph_signatures_bulk_numpy, doph_signatures_bulk_python  # noqa: E402
from .encode import encode_sorted_numpy  # noqa: E402
from .shm import (  # noqa: E402
    ArenaDescriptor,
    ArenaDescriptorError,
    ArenaError,
    SharedGraphArena,
    shared_memory_available,
)
from .wtable import build_group_w  # noqa: E402
