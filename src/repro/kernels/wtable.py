"""Vectorized group-local ``W`` construction (Algorithm 4's hashtable).

The reference implementation (:class:`repro.core.saving.GroupAdjacency`
with ``kernels="python"``) walks every member node's CSR row in Python and
increments a dict per neighbouring supernode. This kernel does the same
work in four array passes:

1. gather all member rows out of the CSR in one shot (repeat/arange
   slicing — no per-node ``tolist`` round-trips),
2. map the gathered neighbour ids to supernode ids with one fancy-index,
3. aggregate ``(group row, neighbour supernode)`` keys with ``np.unique``
   (equivalent to a ``bincount`` over factorized keys),
4. materialize the per-supernode dicts from the aggregated runs.

Step 4 is the only Python loop left and it runs over *distinct* ``W``
entries — supernode-level work, not edge-level work. The resulting tables
are **equal as dicts** to the reference (the internal self-entry is halved
and re-inserted exactly like the reference does), so the merge loop's
post-merge fold update (:meth:`GroupAdjacency.apply_merge`) is shared
unchanged between backends.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from ..obs import profile

__all__ = ["build_group_w", "gather_rows"]


def gather_rows(
    indptr: np.ndarray, indices: np.ndarray, nodes: np.ndarray
) -> tuple:
    """Concatenate CSR rows for ``nodes`` without a Python loop.

    Returns ``(values, lengths)``: the concatenated neighbour ids of each
    requested row (in row order) and each row's length.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    starts = indptr[nodes]
    lengths = indptr[nodes + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), lengths
    # offsets[i] = position where row i starts in the output
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    gather = np.repeat(starts - offsets, lengths) + np.arange(
        total, dtype=np.int64
    )
    return indices[gather], lengths


@profile.profiled("wtable")
def build_group_w(
    graph,
    partition,
    group_ids: Iterable[int],
) -> Dict[int, Dict[int, int]]:
    """Build the ``W`` hashtable-of-hashtables for one merge group.

    Bit-identical to the pure-Python construction in
    :class:`repro.core.saving.GroupAdjacency`: ``W[A][C]`` counts original
    edges between supernodes A and C, internal edges land under the self
    key ``W[A][A]`` halved (each internal undirected edge is seen from both
    endpoints). ``partition`` only needs ``members(sid)`` and
    ``node2super`` — snapshot partitions used by the multiprocess planner
    work too.
    """
    sids: List[int] = [int(s) for s in group_ids]
    w: Dict[int, Dict[int, int]] = {}
    if not sids:
        return w
    node2super = partition.node2super
    members_per_sid = [
        np.asarray(partition.members(sid), dtype=np.int64) for sid in sids
    ]
    member_counts = np.array([m.size for m in members_per_sid], dtype=np.int64)
    all_members = (
        np.concatenate(members_per_sid)
        if member_counts.sum()
        else np.empty(0, dtype=np.int64)
    )
    neighbours, row_lengths = gather_rows(
        graph.indptr, graph.indices, all_members
    )
    # row index (position of the sid in the group) for every gathered entry
    row_of_member = np.repeat(
        np.arange(len(sids), dtype=np.int64), member_counts
    )
    rows = np.repeat(row_of_member, row_lengths)
    cols = node2super[neighbours]
    n = np.int64(max(1, int(node2super.size)))
    keys, counts = np.unique(rows * n + cols, return_counts=True)
    key_rows = keys // n
    key_cols = keys % n
    # np.unique returns keys sorted, so rows form sorted runs: slice per sid.
    bounds = np.searchsorted(key_rows, np.arange(len(sids) + 1))
    for i, sid in enumerate(sids):
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        table = dict(
            zip(key_cols[lo:hi].tolist(), counts[lo:hi].tolist())
        )
        internal = table.pop(sid, 0)
        if internal:
            # Each internal undirected edge was seen from both endpoints.
            table[sid] = internal // 2
        w[sid] = table
    return w
