"""Graph analytics served from a summary.

The paper's introduction motivates summarization with downstream analysis
tasks; this module runs several classic analyses directly against a
:class:`~repro.queries.index.SummaryIndex` — neighbourhoods are expanded
lazily from the summary, never materializing the full edge list unless the
analysis inherently needs it. On a lossless summary every result equals
the original graph's (tests verify); on a lossy summary they are the
corresponding approximations.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence

import numpy as np

from .index import SummaryIndex

__all__ = [
    "adjacency_snapshot",
    "degree_histogram",
    "triangle_count",
    "pagerank",
    "modularity",
    "common_neighbors",
    "neighborhood_jaccard",
    "top_degree_nodes",
    "connected_components",
    "diameter_estimate",
]


def adjacency_snapshot(index: SummaryIndex) -> List[frozenset]:
    """All reconstructed neighbour sets, expanded once and memoized.

    Whole-graph analyses (triangles, diameter probes, modularity) each
    need every neighbourhood; expanding them per call repeats the most
    expensive step of serving from a summary. The snapshot is cached on
    the index itself, which is immutable after construction, so repeated
    analytics calls — and different analytics against the same index —
    pay for reconstruction exactly once.
    """
    snapshot = getattr(index, "_adjacency_snapshot", None)
    if snapshot is None:
        snapshot = [
            frozenset(index.neighbors(v)) for v in range(index.num_nodes)
        ]
        index._adjacency_snapshot = snapshot
    return snapshot


def _bfs_snapshot(snapshot: List[frozenset], source: int) -> Dict[int, int]:
    """Hop distances from ``source`` over a memoized snapshot."""
    distances = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in snapshot[v]:
            if u not in distances:
                distances[u] = distances[v] + 1
                queue.append(u)
    return distances


def degree_histogram(index: SummaryIndex) -> np.ndarray:
    """``hist[d]`` = number of nodes with reconstructed degree ``d``."""
    degrees = [index.degree(v) for v in range(index.num_nodes)]
    if not degrees:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(np.asarray(degrees, dtype=np.int64))


def triangle_count(index: SummaryIndex) -> int:
    """Number of triangles in the reconstructed graph.

    Rank-ordered enumeration over the shared adjacency snapshot: each
    triangle is counted once from its lowest-id vertex, intersecting
    neighbour sets above the pivot. Neighbourhoods are never
    re-expanded on repeat calls.
    """
    snapshot = adjacency_snapshot(index)
    total = 0
    for v in range(index.num_nodes):
        higher = {u for u in snapshot[v] if u > v}
        for u in higher:
            nbrs_u = snapshot[u]
            total += sum(1 for w in higher if w > u and w in nbrs_u)
    return total


def pagerank(
    index: SummaryIndex,
    damping: float = 0.85,
    max_iterations: int = 50,
    tolerance: float = 1e-8,
) -> np.ndarray:
    """PageRank over the reconstructed graph (power iteration).

    Dangling nodes distribute uniformly. Returns a probability vector.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    n = index.num_nodes
    if n == 0:
        return np.zeros(0)
    neighbors: List[List[int]] = [index.neighbors(v) for v in range(n)]
    degrees = np.array([len(row) for row in neighbors], dtype=np.float64)
    rank = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        new_rank = np.zeros(n)
        dangling_mass = rank[degrees == 0].sum()
        for v in range(n):
            if degrees[v]:
                share = rank[v] / degrees[v]
                for u in neighbors[v]:
                    new_rank[u] += share
        new_rank = (
            damping * (new_rank + dangling_mass / n)
            + (1.0 - damping) / n
        )
        if np.abs(new_rank - rank).sum() < tolerance:
            rank = new_rank
            break
        rank = new_rank
    return rank


def modularity(index: SummaryIndex, communities: Sequence[int]) -> float:
    """Newman modularity of a node partition on the reconstruction.

    ``communities[v]`` is the community id of node ``v``. Exact:
    ``Q = Σ_c (intra_c / m) − Σ_c (deg_c / 2m)²`` over the reconstructed
    edge set (0.0 for an edgeless graph).
    """
    comm = np.asarray(communities, dtype=np.int64)
    if comm.shape != (index.num_nodes,):
        raise ValueError(
            "communities must assign exactly one id per node"
        )
    snapshot = adjacency_snapshot(index)
    degrees = np.array([len(s) for s in snapshot], dtype=np.float64)
    two_m = float(degrees.sum())
    if two_m == 0.0:
        return 0.0
    intra = 0
    for v in range(index.num_nodes):
        cv = comm[v]
        intra += sum(1 for u in snapshot[v] if u > v and comm[u] == cv)
    comm_deg = np.bincount(comm, weights=degrees)
    return float(
        intra / (two_m / 2.0) - ((comm_deg / two_m) ** 2).sum()
    )


def common_neighbors(index: SummaryIndex, u: int, v: int) -> List[int]:
    """Sorted common neighbours of ``u`` and ``v`` in the reconstruction."""
    return sorted(set(index.neighbors(u)) & set(index.neighbors(v)))


def neighborhood_jaccard(index: SummaryIndex, u: int, v: int) -> float:
    """Jaccard similarity of two nodes' reconstructed neighbourhoods."""
    nu = set(index.neighbors(u))
    nv = set(index.neighbors(v))
    if not nu and not nv:
        return 1.0
    return len(nu & nv) / len(nu | nv)


def connected_components(index: SummaryIndex) -> List[List[int]]:
    """Connected components of the reconstructed graph (sorted node lists)."""
    seen = [False] * index.num_nodes
    components: List[List[int]] = []
    for start in range(index.num_nodes):
        if seen[start]:
            continue
        seen[start] = True
        component = [start]
        frontier = [start]
        while frontier:
            v = frontier.pop()
            for u in index.neighbors(v):
                if not seen[u]:
                    seen[u] = True
                    component.append(u)
                    frontier.append(u)
        components.append(sorted(component))
    return components


def diameter_estimate(
    index: SummaryIndex, probes: int = 8, seed: int = 0
) -> int:
    """Lower bound on the diameter via double-sweep BFS probes.

    Runs BFS from ``probes`` random starts, then again from each probe's
    farthest node — the standard double-sweep heuristic whose result is a
    certified lower bound (and usually the exact diameter on web-like
    graphs). Returns 0 for an edgeless graph.
    """
    if probes < 1:
        raise ValueError("probes must be >= 1")
    if index.num_nodes == 0:
        return 0
    snapshot = adjacency_snapshot(index)
    rng = np.random.default_rng(seed)
    best = 0
    for _ in range(probes):
        start = int(rng.integers(index.num_nodes))
        distances = _bfs_snapshot(snapshot, start)
        if len(distances) <= 1:
            continue
        far_node, far_dist = max(distances.items(), key=lambda kv: kv[1])
        best = max(best, far_dist)
        second = _bfs_snapshot(snapshot, far_node)
        best = max(best, max(second.values()))
    return best


def top_degree_nodes(index: SummaryIndex, count: int) -> List[int]:
    """The ``count`` highest-degree nodes (ties broken by id)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    degrees = [(-index.degree(v), v) for v in range(index.num_nodes)]
    degrees.sort()
    return [v for _, v in degrees[:count]]
