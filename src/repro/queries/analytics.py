"""Graph analytics served from a summary.

The paper's introduction motivates summarization with downstream analysis
tasks; this module runs several classic analyses directly against a
:class:`~repro.queries.index.SummaryIndex` — neighbourhoods are expanded
lazily from the summary, never materializing the full edge list unless the
analysis inherently needs it. On a lossless summary every result equals
the original graph's (tests verify); on a lossy summary they are the
corresponding approximations.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .index import SummaryIndex

__all__ = [
    "degree_histogram",
    "triangle_count",
    "pagerank",
    "common_neighbors",
    "neighborhood_jaccard",
    "top_degree_nodes",
    "connected_components",
    "diameter_estimate",
]


def degree_histogram(index: SummaryIndex) -> np.ndarray:
    """``hist[d]`` = number of nodes with reconstructed degree ``d``."""
    degrees = [index.degree(v) for v in range(index.num_nodes)]
    if not degrees:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(np.asarray(degrees, dtype=np.int64))


def triangle_count(index: SummaryIndex) -> int:
    """Number of triangles in the reconstructed graph.

    Rank-ordered enumeration: each triangle is counted once from its
    lowest-id vertex, intersecting neighbour sets above the pivot.
    """
    total = 0
    neighbor_sets: Dict[int, set] = {}

    def nbrs(v: int) -> set:
        cached = neighbor_sets.get(v)
        if cached is None:
            cached = {u for u in index.neighbors(v) if u > v}
            neighbor_sets[v] = cached
        return cached

    for v in range(index.num_nodes):
        higher = nbrs(v)
        for u in higher:
            total += len(higher & nbrs(u))
    return total


def pagerank(
    index: SummaryIndex,
    damping: float = 0.85,
    max_iterations: int = 50,
    tolerance: float = 1e-8,
) -> np.ndarray:
    """PageRank over the reconstructed graph (power iteration).

    Dangling nodes distribute uniformly. Returns a probability vector.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    n = index.num_nodes
    if n == 0:
        return np.zeros(0)
    neighbors: List[List[int]] = [index.neighbors(v) for v in range(n)]
    degrees = np.array([len(row) for row in neighbors], dtype=np.float64)
    rank = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        new_rank = np.zeros(n)
        dangling_mass = rank[degrees == 0].sum()
        for v in range(n):
            if degrees[v]:
                share = rank[v] / degrees[v]
                for u in neighbors[v]:
                    new_rank[u] += share
        new_rank = (
            damping * (new_rank + dangling_mass / n)
            + (1.0 - damping) / n
        )
        if np.abs(new_rank - rank).sum() < tolerance:
            rank = new_rank
            break
        rank = new_rank
    return rank


def common_neighbors(index: SummaryIndex, u: int, v: int) -> List[int]:
    """Sorted common neighbours of ``u`` and ``v`` in the reconstruction."""
    return sorted(set(index.neighbors(u)) & set(index.neighbors(v)))


def neighborhood_jaccard(index: SummaryIndex, u: int, v: int) -> float:
    """Jaccard similarity of two nodes' reconstructed neighbourhoods."""
    nu = set(index.neighbors(u))
    nv = set(index.neighbors(v))
    if not nu and not nv:
        return 1.0
    return len(nu & nv) / len(nu | nv)


def connected_components(index: SummaryIndex) -> List[List[int]]:
    """Connected components of the reconstructed graph (sorted node lists)."""
    seen = [False] * index.num_nodes
    components: List[List[int]] = []
    for start in range(index.num_nodes):
        if seen[start]:
            continue
        seen[start] = True
        component = [start]
        frontier = [start]
        while frontier:
            v = frontier.pop()
            for u in index.neighbors(v):
                if not seen[u]:
                    seen[u] = True
                    component.append(u)
                    frontier.append(u)
        components.append(sorted(component))
    return components


def diameter_estimate(
    index: SummaryIndex, probes: int = 8, seed: int = 0
) -> int:
    """Lower bound on the diameter via double-sweep BFS probes.

    Runs BFS from ``probes`` random starts, then again from each probe's
    farthest node — the standard double-sweep heuristic whose result is a
    certified lower bound (and usually the exact diameter on web-like
    graphs). Returns 0 for an edgeless graph.
    """
    if probes < 1:
        raise ValueError("probes must be >= 1")
    if index.num_nodes == 0:
        return 0
    rng = np.random.default_rng(seed)
    best = 0
    for _ in range(probes):
        start = int(rng.integers(index.num_nodes))
        distances = index.bfs_distances(start)
        if len(distances) <= 1:
            continue
        far_node, far_dist = max(distances.items(), key=lambda kv: kv[1])
        best = max(best, far_dist)
        second = index.bfs_distances(far_node)
        best = max(best, max(second.values()))
    return best


def top_degree_nodes(index: SummaryIndex, count: int) -> List[int]:
    """The ``count`` highest-degree nodes (ties broken by id)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    degrees = [(-index.degree(v), v) for v in range(index.num_nodes)]
    degrees.sort()
    return [v for _, v in degrees[:count]]
