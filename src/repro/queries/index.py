"""Query answering directly on a summary — no full reconstruction.

One of the motivating applications in the paper's introduction is answering
queries on the compact representation. :class:`SummaryIndex` indexes a
:class:`~repro.core.summary.Summarization` once and then serves
neighbourhood, degree, edge-membership and BFS queries whose cost depends
on the *summary* (superedges + per-node corrections), not on ``|E|``. For a
lossless summary every answer equals the answer on the original graph
(tests verify this exactly).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Set

from ..core.summary import Summarization
from ..graph.graph import Graph

__all__ = ["SummaryIndex"]


class SummaryIndex:
    """Random-access query index over a summarization."""

    def __init__(self, summarization: Summarization) -> None:
        self._summary = summarization
        self._partition = summarization.partition
        # Supernode-level adjacency from the superedges (loops included).
        self._super_adj: Dict[int, Set[int]] = {}
        for a, b in summarization.superedges:
            self._super_adj.setdefault(a, set()).add(b)
            self._super_adj.setdefault(b, set()).add(a)
        # Per-node correction adjacency.
        self._added: Dict[int, Set[int]] = {}
        for u, v in summarization.corrections.additions:
            self._added.setdefault(u, set()).add(v)
            self._added.setdefault(v, set()).add(u)
        self._deleted: Dict[int, Set[int]] = {}
        for u, v in summarization.corrections.deletions:
            self._deleted.setdefault(u, set()).add(v)
            self._deleted.setdefault(v, set()).add(u)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Node count of the summarized graph."""
        return self._summary.num_nodes

    def neighbors(self, v: int) -> List[int]:
        """Sorted neighbour list of ``v`` in the reconstructed graph."""
        if not 0 <= v < self.num_nodes:
            raise IndexError(f"node {v} out of range")
        sid = self._partition.supernode_of(v)
        result: Set[int] = set()
        for other in self._super_adj.get(sid, ()):
            result.update(self._partition.members(other))
        # A superloop contributes the rest of v's own supernode; a plain
        # superedge never contributes v itself unless sid is its own
        # neighbour, so discard v explicitly either way.
        result.discard(v)
        result |= self._added.get(v, set())
        result -= self._deleted.get(v, set())
        return sorted(result)

    def degree(self, v: int) -> int:
        """Degree of ``v`` in the reconstructed graph."""
        return len(self.neighbors(v))

    def has_edge(self, u: int, v: int) -> bool:
        """Edge membership without materializing full neighbourhoods."""
        if u == v:
            return False
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise IndexError("node out of range")
        if v in self._deleted.get(u, ()):
            return False
        if v in self._added.get(u, ()):
            return True
        su = self._partition.supernode_of(u)
        sv = self._partition.supernode_of(v)
        return sv in self._super_adj.get(su, ())

    # ------------------------------------------------------------------
    def bfs_distances(self, source: int) -> Dict[int, int]:
        """Hop distances from ``source`` over the reconstructed graph."""
        if not 0 <= source < self.num_nodes:
            raise IndexError(f"node {source} out of range")
        distances = {source: 0}
        queue = deque([source])
        while queue:
            v = queue.popleft()
            for u in self.neighbors(v):
                if u not in distances:
                    distances[u] = distances[v] + 1
                    queue.append(u)
        return distances

    def iter_edges(self) -> Iterator[tuple]:
        """Yield every reconstructed edge once (``u < v``)."""
        for v in range(self.num_nodes):
            for u in self.neighbors(v):
                if v < u:
                    yield (v, u)

    def to_graph(self) -> Graph:
        """Materialize the reconstructed graph (for bulk workloads)."""
        from ..core.reconstruct import reconstruct

        return reconstruct(self._summary)
