"""Summary-resident query answering and analytics."""

from .analytics import (
    common_neighbors,
    connected_components,
    degree_histogram,
    diameter_estimate,
    neighborhood_jaccard,
    pagerank,
    top_degree_nodes,
    triangle_count,
)
from .compiled import CompiledSummaryIndex
from .index import SummaryIndex

__all__ = [
    "SummaryIndex",
    "CompiledSummaryIndex",
    "degree_histogram",
    "triangle_count",
    "pagerank",
    "common_neighbors",
    "neighborhood_jaccard",
    "top_degree_nodes",
    "connected_components",
    "diameter_estimate",
]
