"""Summary-resident query answering and analytics."""

from .analytics import (
    adjacency_snapshot,
    common_neighbors,
    connected_components,
    degree_histogram,
    diameter_estimate,
    modularity,
    neighborhood_jaccard,
    pagerank,
    top_degree_nodes,
    triangle_count,
)
from .compiled import CompiledSummaryIndex
from .index import SummaryIndex
from .summary_analytics import (
    ANALYTICS_OPS,
    SummaryAnalytics,
    execute_analytics,
    merge_slices,
    summary_slice,
)

__all__ = [
    "SummaryIndex",
    "CompiledSummaryIndex",
    "SummaryAnalytics",
    "ANALYTICS_OPS",
    "execute_analytics",
    "summary_slice",
    "merge_slices",
    "adjacency_snapshot",
    "degree_histogram",
    "triangle_count",
    "modularity",
    "pagerank",
    "common_neighbors",
    "neighborhood_jaccard",
    "top_degree_nodes",
    "connected_components",
    "diameter_estimate",
]
