"""Array-backed summary index.

:class:`~repro.queries.index.SummaryIndex` keeps Python dict/set state.
:class:`CompiledSummaryIndex` compiles the summary once into flat numpy
arrays — CSR over supernodes for the superedges, CSR over nodes for each
correction set, contiguous member arrays — trading per-query Python-object
work for a compact, off-heap, shareable representation (the arrays can be
memory-mapped or handed to workers without pickling dict graphs).

Honest trade-off: on graphs with small neighbourhoods the set-based index
answers point queries faster (numpy has per-call overhead); the compiled
form wins on memory footprint and on large-neighbourhood expansion.
Answers are identical to :class:`SummaryIndex`; tests assert it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

import numpy as np

from ..core.summary import Summarization

__all__ = ["CompiledSummaryIndex"]


def _contains(sorted_arr: np.ndarray, value: int) -> bool:
    """Membership test on a sorted array (binary search)."""
    pos = int(np.searchsorted(sorted_arr, value))
    return pos < sorted_arr.size and int(sorted_arr[pos]) == value


def _csr_from_pairs(num_rows: int, src, dst):
    """Build (indptr, indices) with both directions of each pair."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    heads = np.concatenate([src, dst])
    tails = np.concatenate([dst, src])
    counts = np.bincount(heads, minlength=num_rows)
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.lexsort((tails, heads))
    return indptr, tails[order]


class CompiledSummaryIndex:
    """Immutable, array-backed query index over a summarization."""

    def __init__(self, summary: Summarization) -> None:
        self._num_nodes = summary.num_nodes
        partition = summary.partition
        # Dense supernode ids.
        sids = sorted(partition.supernode_ids())
        self._dense_of = {sid: i for i, sid in enumerate(sids)}
        dense = np.full(summary.num_nodes, -1, dtype=np.int64)
        member_lists: List[np.ndarray] = []
        for i, sid in enumerate(sids):
            members = np.asarray(sorted(partition.members(sid)),
                                 dtype=np.int64)
            member_lists.append(members)
            dense[members] = i
        self._node2dense = dense
        # Members CSR.
        self._member_indptr = np.zeros(len(sids) + 1, dtype=np.int64)
        np.cumsum([m.size for m in member_lists],
                  out=self._member_indptr[1:])
        self._member_indices = (
            np.concatenate(member_lists)
            if member_lists
            else np.empty(0, dtype=np.int64)
        )
        # Superedge CSR over dense supernode ids (loops stored once and
        # flagged separately so expansion can exclude self).
        non_loops = [(a, b) for a, b in summary.superedges if a != b]
        self._has_loop = np.zeros(len(sids), dtype=bool)
        for a, b in summary.superedges:
            if a == b:
                self._has_loop[self._dense_of[a]] = True
        if non_loops:
            src = [self._dense_of[a] for a, b in non_loops]
            dst = [self._dense_of[b] for a, b in non_loops]
        else:
            src, dst = [], []
        self._super_indptr, self._super_indices = _csr_from_pairs(
            len(sids), src, dst
        )
        # Correction CSRs over node ids.
        self._add_indptr, self._add_indices = _csr_from_pairs(
            summary.num_nodes,
            [u for u, _ in summary.corrections.additions],
            [v for _, v in summary.corrections.additions],
        )
        self._del_indptr, self._del_indices = _csr_from_pairs(
            summary.num_nodes,
            [u for u, _ in summary.corrections.deletions],
            [v for _, v in summary.corrections.deletions],
        )
        # Lazily built summary-native analytics engines, keyed by ε.
        # Safe to share: the index is immutable after construction.
        self._analytics_cache: Dict[float, object] = {}

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Node count of the summarized graph."""
        return self._num_nodes

    def _members_of(self, dense_sid: int) -> np.ndarray:
        lo = self._member_indptr[dense_sid]
        hi = self._member_indptr[dense_sid + 1]
        return self._member_indices[lo:hi]

    def neighbors(self, v: int) -> List[int]:
        """Sorted neighbour list of ``v`` (identical to SummaryIndex)."""
        if not 0 <= v < self._num_nodes:
            raise IndexError(f"node {v} out of range")
        sid = int(self._node2dense[v])
        lo, hi = self._super_indptr[sid], self._super_indptr[sid + 1]
        parts = [self._members_of(int(o)) for o in self._super_indices[lo:hi]]
        if self._has_loop[sid]:
            parts.append(self._members_of(sid))
        parts.append(
            self._add_indices[self._add_indptr[v]:self._add_indptr[v + 1]]
        )
        if not parts:
            return []
        combined = np.unique(np.concatenate(parts))
        deletions = self._del_indices[
            self._del_indptr[v]:self._del_indptr[v + 1]
        ]
        if deletions.size:
            combined = np.setdiff1d(combined, deletions, assume_unique=True)
        # Remove self (a superloop or same-supernode superedge adds it).
        pos = np.searchsorted(combined, v)
        if pos < combined.size and combined[pos] == v:
            combined = np.delete(combined, pos)
        return combined.tolist()

    def neighbors_batch(self, nodes: np.ndarray) -> List[List[int]]:
        """Neighbour lists for many nodes in one pass.

        Equivalent to ``[self.neighbors(v) for v in nodes]`` but the
        superedge expansion — the dominant cost — is computed once per
        *supernode* instead of once per query, so batches whose nodes
        share supernodes (the common case under real traffic, where hot
        nodes cluster) do asymptotically less work.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.ndim != 1:
            raise ValueError("neighbors_batch expects a 1-D array of nodes")
        if nodes.size == 0:
            return []
        if int(nodes.min()) < 0 or int(nodes.max()) >= self._num_nodes:
            raise IndexError("node out of range")
        sids = self._node2dense[nodes]
        base_cache: Dict[int, np.ndarray] = {}
        out: List[List[int]] = []
        for v, sid in zip(nodes.tolist(), sids.tolist()):
            base = base_cache.get(sid)
            if base is None:
                lo = self._super_indptr[sid]
                hi = self._super_indptr[sid + 1]
                parts = [
                    self._members_of(int(o))
                    for o in self._super_indices[lo:hi]
                ]
                if self._has_loop[sid]:
                    parts.append(self._members_of(sid))
                base = (
                    np.unique(np.concatenate(parts))
                    if parts
                    else np.empty(0, dtype=np.int64)
                )
                base_cache[sid] = base
            adds = self._add_indices[
                self._add_indptr[v]:self._add_indptr[v + 1]
            ]
            combined = np.union1d(base, adds) if adds.size else base
            deletions = self._del_indices[
                self._del_indptr[v]:self._del_indptr[v + 1]
            ]
            if deletions.size:
                combined = np.setdiff1d(
                    combined, deletions, assume_unique=True
                )
            pos = np.searchsorted(combined, v)
            if pos < combined.size and combined[pos] == v:
                combined = np.delete(combined, pos)
            out.append(combined.tolist())
        return out

    def degree(self, v: int) -> int:
        """Degree of ``v`` in the reconstructed graph."""
        return len(self.neighbors(v))

    def bfs_distances(self, source: int) -> Dict[int, int]:
        """Hop distances from ``source`` (identical to SummaryIndex)."""
        if not 0 <= source < self._num_nodes:
            raise IndexError(f"node {source} out of range")
        distances = {source: 0}
        queue = deque([source])
        while queue:
            v = queue.popleft()
            for u in self.neighbors(v):
                if u not in distances:
                    distances[u] = distances[v] + 1
                    queue.append(u)
        return distances

    def analytics(self, epsilon: float = 0.0):
        """Summary-native estimators over this index (cached per ε).

        Imported lazily so :mod:`summary_analytics` can import this
        module without a cycle.
        """
        engine = self._analytics_cache.get(epsilon)
        if engine is None:
            from .summary_analytics import SummaryAnalytics

            engine = SummaryAnalytics(self, epsilon=epsilon)
            self._analytics_cache[epsilon] = engine
        return engine

    def has_edge(self, u: int, v: int) -> bool:
        """Edge membership without materializing the neighbourhood."""
        if u == v:
            return False
        if not (0 <= u < self._num_nodes and 0 <= v < self._num_nodes):
            raise IndexError("node out of range")
        dels = self._del_indices[self._del_indptr[u]:self._del_indptr[u + 1]]
        if _contains(dels, v):
            return False
        adds = self._add_indices[self._add_indptr[u]:self._add_indptr[u + 1]]
        if _contains(adds, v):
            return True
        su = int(self._node2dense[u])
        sv = int(self._node2dense[v])
        if su == sv:
            return bool(self._has_loop[su])
        row = self._super_indices[
            self._super_indptr[su]:self._super_indptr[su + 1]
        ]
        pos = np.searchsorted(row, sv)
        return pos < row.size and int(row[pos]) == sv
