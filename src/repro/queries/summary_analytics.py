"""Analytics computed *directly on summary structures*, with error bounds.

:mod:`repro.queries.analytics` answers degree / PageRank / triangle
queries by reconstructing neighbourhoods node by node — the exact thing
a summary exists to avoid. This module answers the same questions from
the summary's own aggregates: supernode sizes, the superedge CSR, and
the correction CSRs, never expanding a neighbour list. Each estimator
returns ``(estimate, bound)`` where the bound is a certified ceiling on
``|estimate - exact|`` against the reconstruction (what
:mod:`~repro.queries.analytics` computes on the same summary), plus a
documented ε-term covering the extra distance to the *original* graph
when the summary is lossy (Eq. 2's per-node budget: a lossy summary may
misstate a degree by up to ``ε·d/(1-ε)``).

The math, per estimator (derivations in ``docs/analytics.md``):

* **degree** — exact on the reconstruction, in O(1) per node after an
  O(n + P + C) setup: ``deg(v) = base(S(v)) - loop(S(v)) + eff_add(v)
  - eff_del(v)`` where ``base(A) = Σ_{B∈adj(A)} |B| + |A|·loop(A)`` and
  a correction edge is *effective* exactly when it is not already
  implied by the superedge set (the same rule reconstruction applies).
* **degree histogram** — a bincount of the exact degree vector.
* **PageRank** — the standard power iteration, but each step is
  evaluated through supernode aggregates in O(S + P + C + n) instead of
  O(m): neighbours of every node in supernode ``A`` share the same base
  incoming mass ``Σ_{B∈adj(A)} Σ_{u∈B} r(u)/d(u)``, corrected per node
  for effective additions/deletions and the self term. It is the *same
  linear operator* as the reconstruction's PageRank, so both iterations
  share a fixed point; the bound combines both iterations' contraction
  residuals (factor ``damping`` per step in L1).
* **triangles** — exact closed form on the correction-free part of the
  summary (pairwise-adjacent supernode triples plus superloop terms),
  adjusted per effective correction edge by the configuration-model
  expected common-neighbour count ``d_u·d_v·Σd² / (2m)²`` (arXiv
  2010.09175), capped at ``min(d_u, d_v)``. The bound charges every
  effective correction its worst-case triangle impact.
* **modularity** — supernodes as communities: intra-edge counts follow
  exactly from superloops ± effective intra corrections, degree sums
  from the exact degree vector, so the estimate is exact up to float
  rounding.

The serving layer exposes these as ``analytics.*`` wire ops;
:func:`summary_slice` / :func:`merge_slices` implement the sharded
scatter-gather: every shard ships its summary aggregate once, the
client keeps each structure only from the shard that *owns* it (a
supernode id is one of its member node ids, so the routing ring decides
ownership), and the union reconstructs the stitched global summary
exactly — see ``docs/analytics.md``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.summary import CorrectionSet, Summarization

__all__ = [
    "ANALYTICS_OPS",
    "PAGERANK_DEFAULTS",
    "SummaryAnalytics",
    "execute_analytics",
    "merge_slices",
    "summary_slice",
]

#: Wire operations served by :func:`execute_analytics`.
ANALYTICS_OPS = frozenset({
    "analytics.degree",
    "analytics.degree_hist",
    "analytics.pagerank",
    "analytics.triangles",
    "analytics.modularity",
    "analytics.slice",
})

#: (damping, max_iterations, tolerance) — shared with the cache key so
#: explicit-default and empty-args requests alias to one cache entry.
PAGERANK_DEFAULTS = (0.85, 50, 1e-8)


class SummaryAnalytics:
    """Vectorized summary-native estimators over a compiled index.

    Construction runs the one-time aggregation (exact degree vector,
    superedge membership keys, correction effectiveness); every
    estimator afterwards is an array pass over supernode-sized data.
    Instances are immutable, like the index they wrap — share freely
    across threads.

    ``epsilon`` is the lossy drop budget the summary was built with
    (0.0 = lossless). It only widens the returned bounds — estimates
    are always computed against the summary as-is.
    """

    def __init__(self, index: Any, epsilon: float = 0.0) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self._index = index
        self.epsilon = float(epsilon)
        self._n = n = index.num_nodes
        member_indptr = index._member_indptr
        self._num_supernodes = num_super = member_indptr.size - 1
        self._sizes = sizes = np.diff(member_indptr)
        self._node2dense = node2dense = index._node2dense
        self._has_loop = has_loop = index._has_loop
        super_indptr = index._super_indptr
        self._super_cols = super_cols = index._super_indices
        self._super_indptr = super_indptr
        self._se_rows = se_rows = np.repeat(
            np.arange(num_super, dtype=np.int64), np.diff(super_indptr)
        )
        # Packed (row, col) keys of the (bidirectional) superedge CSR,
        # sorted for O(log P) membership tests.
        self._se_keys = np.sort(se_rows * num_super + super_cols)
        # Base neighbourhood size per supernode: members of adjacent
        # supernodes, plus own members under a superloop.
        neigh_sizes = np.zeros(num_super, dtype=np.int64)
        np.add.at(neigh_sizes, se_rows, sizes[super_cols])
        self._neigh_sizes = neigh_sizes
        base_size = neigh_sizes + np.where(has_loop, sizes, 0)
        # Directed correction pairs (both directions, from the CSRs).
        self._add_src, self._add_dst = _directed_pairs(
            index._add_indptr, index._add_indices
        )
        self._del_src, self._del_dst = _directed_pairs(
            index._del_indptr, index._del_indices
        )
        # Effectiveness: an addition counts only when the superedge set
        # does not already imply the edge; a deletion counts only when
        # something (superedges or an addition) put the edge there.
        self._add_eff = ~self._covered(
            node2dense[self._add_src], node2dense[self._add_dst]
        ) if self._add_src.size else np.zeros(0, dtype=bool)
        if self._del_src.size:
            covered = self._covered(
                node2dense[self._del_src], node2dense[self._del_dst]
            )
            if self._add_src.size:
                add_keys = np.sort(self._add_src * n + self._add_dst)
                in_adds = _sorted_contains(
                    add_keys, self._del_src * n + self._del_dst
                )
            else:
                in_adds = np.zeros(self._del_src.size, dtype=bool)
            self._del_eff = covered | in_adds
        else:
            self._del_eff = np.zeros(0, dtype=bool)
        eff_adds = np.bincount(
            self._add_src[self._add_eff], minlength=n
        ).astype(np.int64) if n else np.zeros(0, dtype=np.int64)
        eff_dels = np.bincount(
            self._del_src[self._del_eff], minlength=n
        ).astype(np.int64) if n else np.zeros(0, dtype=np.int64)
        self._eff_dels_per_node = eff_dels
        if n:
            self._degrees = (
                base_size[node2dense]
                - has_loop[node2dense].astype(np.int64)
                + eff_adds - eff_dels
            )
        else:
            self._degrees = np.zeros(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------
    def _covered(self, sa: np.ndarray, sb: np.ndarray) -> np.ndarray:
        """Whether the superedge set implies an edge between dense
        supernode pairs (a superloop covers same-supernode pairs)."""
        out = np.zeros(sa.size, dtype=bool)
        same = sa == sb
        out[same] = self._has_loop[sa[same]]
        cross = ~same
        if cross.any():
            keys = sa[cross] * self._num_supernodes + sb[cross]
            out[cross] = _sorted_contains(self._se_keys, keys)
        return out

    def degrees(self) -> np.ndarray:
        """The exact reconstruction degree vector (int64, read-only)."""
        return self._degrees

    def _eps_degree_slack(self, degree: np.ndarray) -> np.ndarray:
        """Per-node ε-term: a lossy summary (Eq. 2) may misstate each
        degree by up to ``ε·d/(1-ε)`` edges vs. the original graph."""
        eps = self.epsilon
        if eps == 0.0:
            return np.zeros_like(degree, dtype=np.float64)
        if eps >= 1.0:
            return np.full(degree.shape, np.inf)
        return eps * degree.astype(np.float64) / (1.0 - eps)

    # ------------------------------------------------------------------
    # estimators
    # ------------------------------------------------------------------
    def degree(self, v: int) -> Tuple[int, float]:
        """Degree of ``v``: exact on the reconstruction (bound is the
        pure ε-term, 0.0 for a lossless summary)."""
        if not 0 <= v < self._n:
            raise IndexError(f"node {v} out of range")
        d = int(self._degrees[v])
        return d, float(self._eps_degree_slack(np.asarray([d]))[0])

    def degree_histogram(self) -> Tuple[np.ndarray, float]:
        """``hist[d]`` = nodes with reconstructed degree ``d``.

        Exact on the reconstruction. The bound is per-bin (L∞): only
        nodes whose ε-budget admits at least one whole edge can change
        bins vs. the original graph, and each such move perturbs any
        single bin by at most one.
        """
        if self._n == 0:
            return np.zeros(1, dtype=np.int64), 0.0
        hist = np.bincount(self._degrees)
        movable = int(np.count_nonzero(
            self._eps_degree_slack(self._degrees) >= 1.0
        ))
        return hist, float(movable)

    def pagerank(
        self,
        damping: float = PAGERANK_DEFAULTS[0],
        max_iterations: int = PAGERANK_DEFAULTS[1],
        tolerance: float = PAGERANK_DEFAULTS[2],
    ) -> Tuple[np.ndarray, float]:
        """PageRank via supergraph-lifted power iteration.

        Identical operator to :func:`repro.queries.analytics.pagerank`
        (same fixed point), evaluated in O(S + P + C + n) per step. The
        bound is on the **L1 distance** to the reconstruction
        reference: contraction gives ``d/(1-d)·residual`` for this
        iterate plus the reference's own worst-case distance
        (``max(d·tol/(1-d), 2·d^K)``), a float slack, and the ε-term
        ``2d/(1-d)·ε`` for lossy summaries.
        """
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        n = self._n
        if n == 0:
            return np.zeros(0), 0.0
        num_super = self._num_supernodes
        node2dense = self._node2dense
        deg = self._degrees.astype(np.float64)
        dangling = deg == 0.0
        deg_safe = np.where(dangling, 1.0, deg)
        loop_nodes = self._has_loop[node2dense]
        add_src = self._add_src[self._add_eff]
        add_dst = self._add_dst[self._add_eff]
        del_src = self._del_src[self._del_eff]
        del_dst = self._del_dst[self._del_eff]
        rank = np.full(n, 1.0 / n)
        diff = np.inf
        for _ in range(max_iterations):
            share = rank / deg_safe
            share[dangling] = 0.0
            ssum = np.bincount(node2dense, weights=share,
                               minlength=num_super)
            neigh = np.bincount(
                self._se_rows, weights=ssum[self._super_cols],
                minlength=num_super,
            ) if self._se_rows.size else np.zeros(num_super)
            neigh += np.where(self._has_loop, ssum, 0.0)
            contrib = neigh[node2dense]
            contrib[loop_nodes] -= share[loop_nodes]
            if add_src.size:
                contrib += np.bincount(
                    add_src, weights=share[add_dst], minlength=n
                )
            if del_src.size:
                contrib -= np.bincount(
                    del_src, weights=share[del_dst], minlength=n
                )
            dangling_mass = float(rank[dangling].sum())
            new_rank = (
                damping * (contrib + dangling_mass / n)
                + (1.0 - damping) / n
            )
            diff = float(np.abs(new_rank - rank).sum())
            rank = new_rank
            if diff < tolerance:
                break
        d = damping
        ours = d * diff / (1.0 - d)
        reference = max(
            d * tolerance / (1.0 - d), 2.0 * d ** max_iterations
        )
        slack = 1e-9 + 1e-11 * n
        eps_term = (
            0.0 if self.epsilon == 0.0
            else 2.0 * d * min(self.epsilon, 1.0) / (1.0 - d)
        )
        return rank, float(ours + reference + slack + eps_term)

    def triangles(self) -> Tuple[float, float]:
        """Triangle count: exact on the correction-free supergraph,
        configuration-model-adjusted per effective correction edge.

        The bound charges every effective correction edge its maximum
        possible triangle impact ``min(cap_u, cap_v)`` (``cap`` =
        reconstruction degree plus effective deletions, the largest
        degree any intermediate graph shows), plus the magnitude of the
        adjustment itself and the ε-term.
        """
        sizes = self._sizes.astype(np.float64)
        # Superloop terms: triangles entirely inside one supernode, and
        # two-in-A/one-in-B with a loop on A.
        loop_sizes = np.where(self._has_loop, sizes, 0.0)
        t1 = float((loop_sizes * (loop_sizes - 1.0)
                    * (loop_sizes - 2.0) / 6.0).sum())
        pairs_inside = loop_sizes * (loop_sizes - 1.0) / 2.0
        t2 = float((pairs_inside * self._neigh_sizes).sum())
        # Pairwise-adjacent supernode triples A < B < C: every member
        # choice is a triangle. Counted from each superedge (a, b) with
        # a < b via common CSR neighbours above b.
        t3 = 0.0
        indptr, cols = self._super_indptr, self._super_cols
        for a in range(self._num_supernodes):
            row_a = cols[indptr[a]:indptr[a + 1]]
            for b in row_a[row_a > a]:
                row_b = cols[indptr[b]:indptr[b + 1]]
                common = np.intersect1d(row_a, row_b, assume_unique=True)
                common = common[common > b]
                if common.size:
                    t3 += float(sizes[a]) * float(sizes[b]) \
                        * float(sizes[common].sum())
        base = t1 + t2 + t3

        deg = self._degrees.astype(np.float64)
        two_m = float(deg.sum())
        adjustment = 0.0
        correction_cap = 0.0
        caps = deg + self._eff_dels_per_node.astype(np.float64)
        sum_d2 = float((deg * deg).sum())
        for src, dst, eff, sign in (
            (self._add_src, self._add_dst, self._add_eff, 1.0),
            (self._del_src, self._del_dst, self._del_eff, -1.0),
        ):
            mask = eff & (src < dst)      # each pair once
            if not mask.any():
                continue
            u, v = src[mask], dst[mask]
            if two_m > 0:
                expected = np.minimum(
                    deg[u] * deg[v] * sum_d2 / (two_m * two_m),
                    np.minimum(deg[u], deg[v]),
                )
            else:
                expected = np.zeros(u.size)
            adjustment += sign * float(expected.sum())
            correction_cap += float(np.minimum(caps[u], caps[v]).sum())
        estimate = base + adjustment
        eps_slack = self._eps_degree_slack(self._degrees)
        eps_term = (
            float((eps_slack * caps).sum() / 2.0)
            if self.epsilon else 0.0
        )
        bound = correction_cap + abs(adjustment) + eps_term
        return float(estimate), float(bound)

    def modularity(self) -> Tuple[float, float]:
        """Newman modularity of the supernode partition (supernodes as
        communities), exact up to float rounding on the reconstruction.

        Intra-community edge counts come straight from superloops plus
        effective intra-supernode corrections; degree sums from the
        exact degree vector.
        """
        deg = self._degrees.astype(np.float64)
        two_m = float(deg.sum())
        if two_m == 0.0:
            return 0.0, 0.0
        num_super = self._num_supernodes
        sizes = self._sizes.astype(np.float64)
        intra = np.where(self._has_loop, sizes * (sizes - 1.0) / 2.0, 0.0)
        node2dense = self._node2dense
        for src, dst, eff, sign in (
            (self._add_src, self._add_dst, self._add_eff, 1.0),
            (self._del_src, self._del_dst, self._del_eff, -1.0),
        ):
            mask = eff & (src < dst)
            if not mask.any():
                continue
            su = node2dense[src[mask]]
            sv = node2dense[dst[mask]]
            same = su == sv
            if same.any():
                np.add.at(intra, su[same], sign)
        comm_deg = np.bincount(node2dense, weights=deg,
                               minlength=num_super)
        m = two_m / 2.0
        estimate = float(
            (intra / m).sum() - ((comm_deg / two_m) ** 2).sum()
        )
        slack = 1e-8 * (1.0 + num_super)
        eps_term = (
            2.0 * min(self.epsilon, 1.0) / max(1.0 - self.epsilon, 1e-12)
            if self.epsilon else 0.0
        )
        return estimate, float(slack + eps_term)


def _directed_pairs(
    indptr: np.ndarray, indices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """A correction CSR (already bidirectional) as flat (src, dst)."""
    src = np.repeat(
        np.arange(indptr.size - 1, dtype=np.int64), np.diff(indptr)
    )
    return src, indices.astype(np.int64, copy=False)


def _sorted_contains(haystack: np.ndarray,
                     needles: np.ndarray) -> np.ndarray:
    """Vectorized membership of ``needles`` in sorted ``haystack``."""
    if haystack.size == 0:
        return np.zeros(needles.size, dtype=bool)
    pos = np.searchsorted(haystack, needles)
    inside = pos < haystack.size
    out = np.zeros(needles.size, dtype=bool)
    out[inside] = haystack[pos[inside]] == needles[inside]
    return out


# ----------------------------------------------------------------------
# sharded scatter-gather: per-shard slices → the global summary
# ----------------------------------------------------------------------
def summary_slice(index: Any) -> Dict[str, Any]:
    """One shard's summary aggregate, JSON-safe (the ``analytics.slice``
    wire payload).

    Ships every supernode that carries structure (size > 1, a superloop,
    or an incident superedge) with its original id and members, plus all
    superedges and corrections, each pair once. Bare singletons are
    omitted — the merge re-derives them — which keeps the payload
    proportional to the summary, not to ``num_nodes``.
    """
    sid_of_dense = sorted(index._dense_of)
    sizes = np.diff(index._member_indptr)
    indptr, cols = index._super_indptr, index._super_indices
    has_row = np.diff(indptr) > 0
    keep = (sizes > 1) | index._has_loop | has_row
    supernodes = []
    for i in np.flatnonzero(keep):
        i = int(i)
        lo, hi = index._member_indptr[i], index._member_indptr[i + 1]
        supernodes.append([
            int(sid_of_dense[i]),
            [int(v) for v in index._member_indices[lo:hi]],
        ])
    superedges = []
    for a in range(len(sid_of_dense)):
        if index._has_loop[a]:
            superedges.append([int(sid_of_dense[a]), int(sid_of_dense[a])])
        row = cols[indptr[a]:indptr[a + 1]]
        for b in row[row > a]:
            superedges.append(
                [int(sid_of_dense[a]), int(sid_of_dense[int(b)])]
            )
    additions = _csr_pairs_once(index._add_indptr, index._add_indices)
    deletions = _csr_pairs_once(index._del_indptr, index._del_indices)
    return {
        "num_nodes": int(index.num_nodes),
        "supernodes": supernodes,
        "superedges": superedges,
        "additions": additions,
        "deletions": deletions,
    }


def _csr_pairs_once(indptr: np.ndarray,
                    indices: np.ndarray) -> List[List[int]]:
    src = np.repeat(
        np.arange(indptr.size - 1, dtype=np.int64), np.diff(indptr)
    )
    mask = src < indices
    return [[int(u), int(v)] for u, v in zip(src[mask], indices[mask])]


def merge_slices(
    slices: Mapping[int, Mapping[str, Any]],
    shard_of: Callable[[int], int],
) -> Summarization:
    """Combine per-shard slices into the global stitched summary.

    Ownership filtering is the whole trick: a supernode is never split
    across shards and its id is one of its member node ids, so
    ``shard_of(sid)`` names the one shard whose slice is authoritative
    for it. Superedges and corrections are kept from any endpoint's
    owner and deduplicated by canonical pair. Nodes covered by no kept
    supernode are the omitted bare singletons — re-added as ``{v}``
    with id ``v``, the id every singleton has in the stitched summary.

    The result is structurally identical to the stitched global
    summary, so analytics on the merge equal single-node analytics
    exactly (tests pin this).
    """
    if not slices:
        raise ValueError("merge_slices needs at least one slice")
    num_nodes_set = {int(s["num_nodes"]) for s in slices.values()}
    if len(num_nodes_set) != 1:
        raise ValueError(
            f"slices disagree on num_nodes: {sorted(num_nodes_set)}"
        )
    num_nodes = num_nodes_set.pop()
    members: Dict[int, List[int]] = {}
    superedges = set()
    additions = set()
    deletions = set()
    for shard_id, piece in slices.items():
        shard_id = int(shard_id)
        for sid, mem in piece["supernodes"]:
            if shard_of(int(sid)) == shard_id:
                members[int(sid)] = [int(v) for v in mem]
        for a, b in piece["superedges"]:
            a, b = int(a), int(b)
            if shard_of(a) == shard_id or shard_of(b) == shard_id:
                superedges.add((min(a, b), max(a, b)))
        for bucket, pairs in (
            (additions, piece["additions"]),
            (deletions, piece["deletions"]),
        ):
            for u, v in pairs:
                u, v = int(u), int(v)
                if shard_of(u) == shard_id or shard_of(v) == shard_id:
                    bucket.add((min(u, v), max(u, v)))
    covered = np.zeros(num_nodes, dtype=bool)
    for mem in members.values():
        covered[mem] = True
    for v in np.flatnonzero(~covered).tolist():
        members[int(v)] = [int(v)]
    return Summarization.from_members(
        num_nodes,
        members,
        sorted(superedges),
        CorrectionSet(
            additions=sorted(additions), deletions=sorted(deletions)
        ),
        algorithm="merged-slices",
    )


# ----------------------------------------------------------------------
# wire-op adapter
# ----------------------------------------------------------------------
def execute_analytics(index: Any, op: str,
                      args: Mapping[str, Any]) -> Any:
    """Execute one ``analytics.*`` wire op against a compiled index.

    Returns a JSON-serializable payload (``{"value": ..., "bound":
    ...}``, or the slice dict). Raises :class:`IndexError` for
    out-of-range nodes and :class:`ValueError` for bad parameters —
    the batch executor maps both onto typed wire errors.
    """
    if op == "analytics.slice":
        return summary_slice(index)
    analytics = index.analytics()
    if op == "analytics.degree":
        value, bound = analytics.degree(int(args["v"]))
        return {"value": value, "bound": bound}
    if op == "analytics.degree_hist":
        hist, bound = analytics.degree_histogram()
        return {"value": [int(c) for c in hist], "bound": bound}
    if op == "analytics.pagerank":
        damping = float(args.get("damping", PAGERANK_DEFAULTS[0]))
        max_iterations = int(
            args.get("max_iterations", PAGERANK_DEFAULTS[1])
        )
        tolerance = float(args.get("tolerance", PAGERANK_DEFAULTS[2]))
        ranks, bound = analytics.pagerank(
            damping=damping, max_iterations=max_iterations,
            tolerance=tolerance,
        )
        top = args.get("top")
        if top is not None:
            top = int(top)
            if top < 1:
                raise ValueError("top must be positive")
            order = np.lexsort((np.arange(ranks.size), -ranks))[:top]
            return {
                "value": [[int(v), float(ranks[v])] for v in order],
                "bound": bound,
                "top": top,
            }
        return {"value": [float(r) for r in ranks], "bound": bound}
    if op == "analytics.triangles":
        value, bound = analytics.triangles()
        return {"value": value, "bound": bound}
    if op == "analytics.modularity":
        value, bound = analytics.modularity()
        return {"value": value, "bound": bound}
    raise ValueError(f"unknown analytics op {op!r}")
