"""Output-size metrics and the kernel phase-timer hook.

The paper's objective (Eq. 1) counts superedges + correction edges. For a
storage-oriented view this module adds a bit-level size model: node and
supernode ids cost ``ceil(log2 n)`` bits, and edge lists can alternatively
be priced with delta-varint coding (the standard trick in graph storage
systems like WebGraph). These metrics power the ``ldme compare`` command
and the size-accounting tests; they do not affect the algorithms.

This module also owns :class:`PhaseTimer`, the wall-clock recorder behind
``BENCH_kernels.json`` (see ``benchmarks/test_kernels_regression.py`` and
``docs/performance.md``): every timed phase lands as one labelled record,
and :func:`write_bench` emits the machine-readable perf trajectory that
future PRs regress against.
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .core.summary import Summarization
from .graph.graph import Graph
from .obs import metrics as obs_metrics

__all__ = [
    "SizeReport",
    "graph_size_bits",
    "summary_size_bits",
    "size_report",
    "varint_bits",
    "delta_encoded_bits",
    "PhaseTimer",
    "write_bench",
]

Edge = Tuple[int, int]


class PhaseTimer:
    """Accumulates labelled wall-clock phase timings for benchmark output.

    Usage::

        timer = PhaseTimer()
        with timer.phase("w_build", graph="1e5", backend="numpy"):
            GroupAdjacency(graph, partition, group, kernels="numpy")
        timer.records  # [{"phase": "w_build", "seconds": ..., ...}]

    Records are plain dicts so they serialize straight into
    ``BENCH_kernels.json`` via :func:`write_bench`. ``best_seconds`` picks
    the fastest repeat of a labelled phase — benchmark files time each
    kernel several times and report the minimum, the usual defence against
    scheduler noise.

    Every record is also forwarded to the process's active unified
    registry (:func:`repro.obs.metrics.observe`, metric
    ``phase_seconds`` labelled by phase name) — so when a run installs a
    :class:`~repro.obs.metrics.MetricsRegistry`, benchmark phase timings
    show up in the same Prometheus exposition as the serving and
    summarization counters. Without an active registry the forward is a
    no-op.
    """

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []

    @contextmanager
    def phase(self, name: str, **labels: object):
        """Time one ``with`` block and append a record for it."""
        tic = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - tic, **labels)

    def add(self, name: str, seconds: float, **labels: object) -> None:
        """Append an externally measured timing (e.g. from ``RunStats``)."""
        self.records.append({"phase": name, "seconds": seconds, **labels})
        obs_metrics.observe(
            "phase_seconds", seconds, labels={"phase": name}
        )

    def best_seconds(self, name: str, **labels: object) -> Optional[float]:
        """Fastest recorded time for a phase matching all given labels."""
        times = [
            float(r["seconds"])
            for r in self.records
            if r["phase"] == name
            and all(r.get(key) == val for key, val in labels.items())
        ]
        return min(times) if times else None


def write_bench(
    path: str,
    timer: PhaseTimer,
    meta: Optional[Dict[str, object]] = None,
) -> None:
    """Write a ``BENCH_*.json`` file from a timer's records.

    The layout is intentionally flat — ``{"meta": ..., "records": [...]}``
    — so downstream regression checks can filter on any label without
    schema knowledge. See docs/performance.md for how to read the file.
    """
    payload = {"meta": meta or {}, "records": timer.records}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def varint_bits(value: int) -> int:
    """Bits used by a 7-bit-per-byte varint encoding of ``value``."""
    if value < 0:
        raise ValueError("varint encodes non-negative integers")
    if value == 0:
        return 8
    bytes_needed = (value.bit_length() + 6) // 7
    return 8 * bytes_needed


def delta_encoded_bits(sorted_values: Iterable[int]) -> int:
    """Bits for a sorted id list stored as varint deltas (gap coding)."""
    total = 0
    previous = 0
    for value in sorted_values:
        if value < previous:
            raise ValueError("delta coding requires a sorted list")
        total += varint_bits(value - previous)
        previous = value
    return total


def _id_bits(universe: int) -> int:
    """Bits for one fixed-width id over a universe of the given size."""
    return max(1, math.ceil(math.log2(max(2, universe))))


def graph_size_bits(graph: Graph, encoding: str = "fixed") -> int:
    """Size of the raw edge list.

    ``"fixed"`` prices each edge as two fixed-width ids; ``"delta"`` prices
    each adjacency row as gap-coded varints (each undirected edge charged
    once, from its smaller endpoint).
    """
    if encoding == "fixed":
        return 2 * _id_bits(graph.num_nodes) * graph.num_edges
    if encoding == "delta":
        total = 0
        for v in range(graph.num_nodes):
            row = [u for u in graph.neighbors(v).tolist() if u > v]
            total += delta_encoded_bits(row)
        return total
    raise ValueError("encoding must be 'fixed' or 'delta'")


def summary_size_bits(summary: Summarization, encoding: str = "fixed") -> int:
    """Size of the summary output (supernode map + P + C+ + C−).

    The supernode membership map costs one supernode id per node; each
    superedge two supernode ids; correction edges two node ids. Superloops
    cost one bit each (the paper's accounting).
    """
    node_bits = _id_bits(summary.num_nodes)
    super_bits = _id_bits(max(2, summary.num_supernodes))
    if encoding == "fixed":
        mapping = super_bits * summary.num_nodes
        superedges = 2 * super_bits * summary.num_superedges
        loops = summary.num_superloops
        corrections = 2 * node_bits * summary.corrections.size
        return mapping + superedges + loops + corrections
    if encoding == "delta":
        mapping = super_bits * summary.num_nodes
        superedges = delta_encoded_bits(
            sorted(a for a, b in summary.superedges if a != b)
        ) + sum(
            varint_bits(b) for a, b in sorted(summary.superedges) if a != b
        )
        loops = summary.num_superloops
        pairs = sorted(
            summary.corrections.additions + summary.corrections.deletions
        )
        corrections = delta_encoded_bits([u for u, _ in pairs]) + sum(
            varint_bits(v) for _, v in pairs
        )
        return mapping + superedges + loops + corrections
    raise ValueError("encoding must be 'fixed' or 'delta'")


@dataclass(frozen=True)
class SizeReport:
    """Side-by-side size accounting for one summarization."""

    graph_bits: int
    summary_bits: int
    objective: int
    compression: float        # the paper's edge-count metric
    bit_ratio: float          # summary_bits / graph_bits

    @property
    def bit_savings(self) -> float:
        """Fraction of raw-graph bits saved by the summary."""
        return 1.0 - self.bit_ratio


def size_report(
    graph: Graph, summary: Summarization, encoding: str = "fixed"
) -> SizeReport:
    """Compute a :class:`SizeReport` for ``summary`` against ``graph``."""
    g_bits = graph_size_bits(graph, encoding)
    s_bits = summary_size_bits(summary, encoding)
    return SizeReport(
        graph_bits=g_bits,
        summary_bits=s_bits,
        objective=summary.objective,
        compression=summary.compression,
        bit_ratio=s_bits / g_bits if g_bits else 0.0,
    )
