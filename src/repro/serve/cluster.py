"""Replicated serving: a health-checked failover cluster over summaries.

Two halves, mirroring a real deployment:

* :class:`SummaryCluster` — the *server* side. Runs N
  :class:`~repro.serve.server.SummaryServer` replicas (via
  :class:`~repro.serve.server.ServerThread`) over one shared compiled
  index, and owns fleet operations: abrupt :meth:`~SummaryCluster.kill`
  and :meth:`~SummaryCluster.restart` of a replica (chaos tests), and
  :meth:`~SummaryCluster.rolling_swap` — a generation-tracked rolling
  hot-swap that verifies each replica after swapping and rolls every
  replica back to the previous index if verification fails, so a bad
  summary never takes the fleet down. While a replica is mid-swap it is
  held in degraded mode (cached answers served immediately, stale ones
  flagged) instead of erroring.

* :class:`ClusterClient` — the *client* side, replacing raw
  :class:`~repro.serve.client.SummaryClient` failover with production
  semantics:

  - **per-replica circuit breakers** (closed/open/half-open,
    deterministic clocks for tests) fed both passively by request
    outcomes and actively by the optional background health checker
    (:meth:`ClusterClient.start_health_checks`, built on the cheap
    ``ping`` health op);
  - **a global retry budget** (token bucket) so retries are bounded by
    a fraction of live traffic and cannot amplify an outage;
  - **hedged reads** — after ``hedge_delay`` seconds without an answer,
    the same idempotent query is fired at a second replica and the
    first success wins, cutting tail latency when one replica stalls;
  - **deadline propagation** — a per-call deadline is enforced locally
    *and* shipped on the wire (``deadline_ms``), so the server rejects
    work whose deadline expired in its queue instead of executing it.

Everything is observable: breaker state gauges, failover / hedge /
stale / budget counters land in the client's
:class:`~repro.obs.metrics.MetricsRegistry` (Prometheus-renderable via
:meth:`ClusterClient.prometheus`) and are mirrored to the module-level
:mod:`repro.obs.metrics` seam when a registry is installed.

**Sharded topology.** Both halves also speak the shards × replicas
layout produced by :mod:`repro.shard`: a :class:`SummaryCluster` built
from per-shard serving summaries (``shards=`` mapping or
:meth:`SummaryCluster.from_manifest`) runs ``replicas`` servers *per
shard*, and its :class:`ClusterClient` routes single-node ops
(``neighbors`` / ``degree`` by the node, ``has_edge`` by the first
endpoint) to the owning shard's replica set via the same
:class:`~repro.shard.hashring.HashRing` the partitioner used — a node
is always asked at the shard that summarized it, which is what makes
the per-shard serving artifacts exact. Multi-shard ops (``bfs``) run
client-side as a frontier scatter-gather with per-shard deadlines; a
shard that cannot answer yields a :class:`PartialResultError` by
default, or an explicit :class:`PartialResult` envelope with
``allow_partial=True`` — never a silently wrong answer.
:meth:`SummaryCluster.rolling_swap` accepts a shard-manifest directory
and rolls **one shard at a time** under the existing
generation/verify/rollback machinery, so a failed shard swap rolls the
whole fleet back and the cluster never serves a split summary.

**Elastic re-sharding.** ``rolling_swap`` requires the ring to stay
fixed; changing the ring (growing/shrinking the shard set) goes through
the two-phase *generation cutover* driven by
:class:`~repro.shard.migrate.MigrationCoordinator`:
:meth:`SummaryCluster.prepare_generation` stages a fresh, validated
fleet for the new manifest while the old generation keeps serving, and
:meth:`SummaryCluster.commit_generation` atomically flips routing and
bumps the **ring epoch**. The epoch propagates on every ``ping`` health
payload and the full routing table is served by the ``topology``
control op, so a :class:`ClusterClient` holding a stale ring detects
the change (epoch mismatch in health, or a ``wrong_shard`` rejection
from a retired replica) and refetches the topology instead of blindly
retrying — see :meth:`ClusterClient.refresh_topology` and
``docs/sharding.md`` for the full state machine.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import random
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..core.summary import Summarization
from ..obs import metrics as obs_metrics
from ..queries.compiled import CompiledSummaryIndex
from ..queries.summary_analytics import execute_analytics, merge_slices
from ..shard.hashring import HashRing
from .breaker import (
    BreakerOpenError,
    CircuitBreaker,
    RetryBudget,
    failure_trips_breaker,
)
from .client import ServerError, SummaryClient
from .metrics import MetricsRegistry
from .protocol import ErrorCode, ProtocolError
from .server import ServerConfig, ServerThread, _load_index

__all__ = [
    "Address",
    "ClusterClient",
    "ClusterHealthChecker",
    "PartialResult",
    "PartialResultError",
    "SummaryCluster",
    "SwapReport",
]

logger = logging.getLogger("repro.serve.cluster")

#: A replica address.
Address = Tuple[str, int]

#: Idempotent query ops that may be hedged (control ops never are).
_HEDGEABLE = frozenset({"neighbors", "degree", "has_edge", "bfs"})


def _addr_label(address: Address) -> str:
    return f"{address[0]}:{address[1]}"


class _Attempt(Exception):
    """Internal wrapper: a failed attempt that may fail over.

    ``code`` is the typed server error code, or ``None`` for transport
    faults; ``cause`` is the underlying exception to re-raise if no
    replica can answer.
    """

    def __init__(self, cause: Exception, code: Optional[str]) -> None:
        super().__init__(str(cause))
        self.cause = cause
        self.code = code


@dataclass
class PartialResult:
    """Envelope for a scatter-gather answer missing some shards.

    ``value`` covers every shard that answered; ``failed_shards`` lists
    the ones that did not. ``complete=True`` means nothing is missing
    (returned for uniformity when ``allow_partial=True`` is requested).
    """

    value: Dict[int, int]
    complete: bool
    failed_shards: List[int] = field(default_factory=list)


class PartialResultError(ConnectionError):
    """A multi-shard op lost one or more shards and partials were not
    opted into.

    Subclasses :class:`ConnectionError` deliberately: callers that treat
    the cluster as a black box (the load generator) count it as an
    *error*, never as a wrong answer. ``partial`` carries whatever was
    gathered, for callers that catch and inspect.
    """

    def __init__(self, op: str, partial: PartialResult) -> None:
        super().__init__(
            f"{op}: shards {partial.failed_shards} did not answer "
            f"(partial result withheld; pass allow_partial=True to accept)"
        )
        self.partial = partial


# ----------------------------------------------------------------------
# client side
# ----------------------------------------------------------------------
class ClusterClient:
    """Blocking failover client over a set of summary-server replicas.

    Thread-safe: loadgen workers share one instance (and thereby one set
    of breakers and one retry budget — that sharing *is* the feature).
    Each thread gets its own per-replica TCP connections.

    Parameters
    ----------
    replicas:
        ``(host, port)`` addresses of the replica set (unsharded mode).
    shards:
        Shard id → replica addresses, for a shards × replicas cluster.
        Mutually exclusive with ``replicas``; requires ``ring``.
    ring:
        The :class:`~repro.shard.hashring.HashRing` that partitioned the
        graph — routes single-node ops to the owning shard's replicas.
    rng:
        Seeds the round-robin starting offsets (global and per shard) so
        a fleet of clients spreads first attempts instead of all hitting
        replica 0. Defaults to a fresh unseeded :class:`random.Random`;
        inject a seeded one for deterministic tests.
    timeout:
        Socket timeout per attempt (seconds).
    deadline:
        Default per-call deadline in seconds (``None`` = no deadline).
        Propagated to the server as ``deadline_ms`` remaining budget.
    hedge_delay:
        Seconds to wait for the first replica before hedging the query
        to a second one (``None`` disables hedging).
    retry_budget:
        Shared :class:`~repro.serve.breaker.RetryBudget`; defaults to a
        fresh one (ratio 0.2).
    breaker_failures / breaker_recovery:
        Per-replica breaker tuning (consecutive failures to trip, open
        seconds before half-open probes).
    clock:
        Monotonic time source, injectable for deterministic tests
        (drives deadlines and breaker recovery).
    """

    def __init__(
        self,
        replicas: Optional[Sequence[Address]] = None,
        *,
        shards: Optional[Mapping[int, Sequence[Address]]] = None,
        ring: Optional[HashRing] = None,
        epoch: int = 0,
        rng: Optional[random.Random] = None,
        timeout: float = 5.0,
        deadline: Optional[float] = None,
        hedge_delay: Optional[float] = None,
        retry_budget: Optional[RetryBudget] = None,
        breaker_failures: int = 3,
        breaker_recovery: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if (shards is None) == (replicas is None):
            if shards is None:
                raise ValueError("ClusterClient needs at least one replica")
            raise ValueError("pass either replicas or shards, not both")
        self._shard_slots: Dict[int, List[int]] = {}
        if shards is not None:
            if ring is None:
                raise ValueError("sharded routing needs a HashRing")
            self.shard_ids = sorted(int(s) for s in shards)
            if sorted(ring.shards) != self.shard_ids:
                raise ValueError(
                    f"ring shards {ring.shards} != "
                    f"address shards {self.shard_ids}"
                )
            flat: List[Address] = []
            for sid in self.shard_ids:
                addrs = [(str(h), int(p)) for h, p in shards[sid]]
                if not addrs:
                    raise ValueError(f"shard {sid} has no replicas")
                self._shard_slots[sid] = list(
                    range(len(flat), len(flat) + len(addrs))
                )
                flat.extend(addrs)
            self.replicas: List[Address] = flat
        else:
            if not replicas:
                raise ValueError("ClusterClient needs at least one replica")
            if ring is not None:
                raise ValueError("a ring needs per-shard addresses")
            self.shard_ids = []
            self.replicas = [
                (str(host), int(port)) for host, port in replicas
            ]
        self._ring = ring
        self.epoch = int(epoch)
        self.timeout = timeout
        self.default_deadline = deadline
        self.hedge_delay = hedge_delay
        self.retry_budget = retry_budget or RetryBudget()
        self._clock = clock
        self._breaker_failures = breaker_failures
        self._breaker_recovery = breaker_recovery
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(
                failure_threshold=breaker_failures,
                recovery_time=breaker_recovery,
                clock=clock,
            )
            for _ in self.replicas
        ]
        self.metrics = MetricsRegistry()
        self.metrics.set_gauge("cluster_ring_epoch", self.epoch)
        # Bumped on every topology refresh; threads compare their cached
        # connection set against it so stale sockets to retired replicas
        # are dropped instead of reused.
        self._topology_version = 0
        self._topology_lock = threading.Lock()
        self._tl = threading.local()
        # Round-robin cursors start at an RNG-drawn offset so a fleet of
        # fresh clients does not stampede replica 0 in lockstep.
        rand = rng if rng is not None else random.Random()
        self._rr = rand.randrange(len(self.replicas))
        self._shard_rr = {
            sid: rand.randrange(len(slots))
            for sid, slots in self._shard_slots.items()
        }
        self._rr_lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._checker: Optional["ClusterHealthChecker"] = None
        self.retries_used = 0             # failover attempts beyond the first
        self.stale_served = 0             # stale-flagged answers observed

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _client_for(self, idx: int) -> SummaryClient:
        version = self._topology_version
        if getattr(self._tl, "version", None) != version:
            # The replica set changed under us (generation cutover):
            # connections cached against the old flat indices may point
            # at retired servers, so drop them all and reconnect lazily.
            stale = getattr(self._tl, "clients", None)
            if stale:
                for old in stale.values():
                    old.close()
            self._tl.clients = {}
            self._tl.version = version
        clients = self._tl.clients
        client = clients.get(idx)
        if client is None:
            host, port = self.replicas[idx]
            # retries=0: failover policy lives here, not in the leaf client.
            client = clients[idx] = SummaryClient(
                host, port, timeout=self.timeout, retries=0
            )
        return client

    def _ordered(self) -> List[int]:
        """Replica indices, round-robin rotated for load spreading."""
        with self._rr_lock:
            start = self._rr
            self._rr = (self._rr + 1) % len(self.replicas)
        n = len(self.replicas)
        return [(start + i) % n for i in range(n)]

    def _shard_order(self, sid: int) -> List[int]:
        """One shard's replica indices, rotated by its own cursor."""
        slots = self._shard_slots.get(sid)
        if not slots:
            raise ConnectionError(f"no replicas known for shard {sid}")
        n = len(slots)
        with self._rr_lock:
            start = self._shard_rr.get(sid, 0) % n
            self._shard_rr[sid] = (start + 1) % n
        return [slots[(start + i) % n] for i in range(n)]

    def shard_of_replica(self, idx: int) -> Optional[int]:
        """Which shard a flat replica index serves (``None`` unsharded)."""
        for sid, slots in self._shard_slots.items():
            if idx in slots:
                return sid
        return None

    def _inc(self, name: str, *, labels: Optional[Dict[str, object]] = None,
             amount: float = 1) -> None:
        self.metrics.inc(name, amount, labels=labels)
        obs_metrics.inc(name, amount, labels=labels)

    def _record(self, idx: int, *, ok: bool,
                code: Optional[str] = None) -> None:
        """Feed one attempt outcome into the replica's breaker + metrics.

        ``ok=True`` is an answered request (always a breaker success).
        ``ok=False`` classifies by ``code``: ``None`` is a transport
        fault; typed codes count as failures exactly when retryable
        (:func:`failure_trips_breaker`).
        """
        if idx >= len(self.breakers) or idx >= len(self.replicas):
            return      # topology shrank mid-call; nothing to record
        breaker = self.breakers[idx]
        label = {"replica": _addr_label(self.replicas[idx])}
        if ok or not failure_trips_breaker(code):
            breaker.record_success()
        else:
            breaker.record_failure()
            self._inc("cluster_attempt_failures_total", labels=label)
        self.metrics.set_gauge(
            "cluster_breaker_state",
            breaker.snapshot()["state_code"],
            labels=label,
        )

    def _attempt(
        self,
        idx: int,
        op: str,
        args: Optional[Dict[str, Any]],
        deadline_at: Optional[float],
        priority: Optional[int],
    ) -> Any:
        """One attempt against one replica; breaker fed on every outcome.

        Raises :class:`_Attempt` on failures eligible for failover, the
        original :class:`ServerError` for non-retryable typed errors.
        """
        deadline_ms: Optional[float] = None
        if deadline_at is not None:
            remaining = deadline_at - self._clock()
            if remaining <= 0:
                raise ServerError(
                    ErrorCode.DEADLINE_EXCEEDED,
                    "deadline expired before the request was sent",
                )
            deadline_ms = remaining * 1000.0
        try:
            client = self._client_for(idx)
        except IndexError as exc:
            raise _Attempt(
                ConnectionError("replica set changed mid-call"), None
            ) from exc
        stale_before = client.stale_served
        try:
            result = client.call(
                op, args, deadline_ms=deadline_ms, priority=priority
            )
        except ServerError as exc:
            self._record(idx, ok=False, code=exc.code)
            if exc.retryable:
                raise _Attempt(exc, exc.code) from exc
            raise
        except (OSError, ProtocolError) as exc:
            self._record(idx, ok=False, code=None)
            raise _Attempt(exc, None) from exc
        self._record(idx, ok=True)
        stale_delta = client.stale_served - stale_before
        if stale_delta:
            self.stale_served += stale_delta
            self._inc(
                "cluster_stale_total",
                labels={"replica": _addr_label(self.replicas[idx])},
                amount=stale_delta,
            )
        return result

    # ------------------------------------------------------------------
    # call path
    # ------------------------------------------------------------------
    def call(
        self,
        op: str,
        args: Optional[Dict[str, Any]] = None,
        *,
        deadline: Optional[float] = None,
        priority: Optional[int] = None,
        hedge: Optional[bool] = None,
        route: Optional[int] = None,
    ) -> Any:
        """Issue ``op`` with failover, breakers, budget, and deadline.

        ``deadline`` (seconds from now) overrides the client default;
        ``hedge`` forces hedging on/off for this call (default: hedge
        query ops when ``hedge_delay`` is configured). ``route`` is a
        node id — on a sharded client the attempt order is restricted to
        the owning shard's replicas (failover stays *inside* the shard:
        other shards hold different serving summaries and would answer
        this node wrongly).

        **Stale topology.** A ``wrong_shard`` rejection (this client
        routed by a ring older than the server's) or a routed call
        exhausting every replica (the shard's whole fleet may have been
        retired by a generation cutover) triggers one topology refresh
        (:meth:`refresh_topology`) and one re-route under the new ring —
        never a blind retry on the same stale route.
        """
        if deadline is None:
            deadline = self.default_deadline
        deadline_at = (
            self._clock() + deadline if deadline is not None else None
        )
        self.retry_budget.deposit()
        self._inc("cluster_requests_total", labels={"op": op})
        use_hedge = (
            self.hedge_delay is not None and op in _HEDGEABLE
            if hedge is None else hedge
        )
        try:
            return self._dispatch(
                use_hedge, self._route_order(route), op, args,
                deadline_at, priority,
            )
        except ServerError as exc:
            if exc.code != ErrorCode.WRONG_SHARD:
                raise
            self._inc("cluster_wrong_shard_total", labels={"op": op})
            if not self.refresh_topology():
                raise
        except ConnectionError:
            if route is None or not self.refresh_topology():
                raise
        self._inc("cluster_reroutes_total", labels={"op": op})
        return self._dispatch(
            use_hedge, self._route_order(route), op, args,
            deadline_at, priority,
        )

    def _route_order(self, route: Optional[int]) -> List[int]:
        """Attempt order for one call under the current topology."""
        if route is not None and self._ring is not None:
            return self._shard_order(self._ring.shard_of(route))
        return self._ordered()

    def _dispatch(
        self,
        use_hedge: bool,
        order: Sequence[int],
        op: str,
        args: Optional[Dict[str, Any]],
        deadline_at: Optional[float],
        priority: Optional[int],
    ) -> Any:
        if use_hedge:
            return self._call_hedged(order, op, args, deadline_at, priority)
        return self._call_failover(order, op, args, deadline_at, priority)

    def _check_deadline(self, deadline_at: Optional[float]) -> None:
        if deadline_at is not None and self._clock() >= deadline_at:
            self._inc("cluster_deadline_exceeded_total")
            raise ServerError(
                ErrorCode.DEADLINE_EXCEEDED,
                "cluster call deadline expired",
            )

    def _call_failover(
        self,
        order: Sequence[int],
        op: str,
        args: Optional[Dict[str, Any]],
        deadline_at: Optional[float],
        priority: Optional[int],
    ) -> Any:
        last: Optional[_Attempt] = None
        attempts = 0
        for idx in order:
            self._check_deadline(deadline_at)
            if not self.breakers[idx].allow():
                continue
            if attempts > 0:
                # Failover = retry: it must fit in the global budget so a
                # cluster-wide outage cannot multiply its own traffic.
                if not self.retry_budget.try_spend():
                    self.breakers[idx].release()
                    self._inc("cluster_retry_budget_exhausted_total")
                    break
                self.retries_used += 1
                self._inc("cluster_failovers_total", labels={"op": op})
            attempts += 1
            try:
                return self._attempt(idx, op, args, deadline_at, priority)
            except _Attempt as exc:
                last = exc
                continue
        if last is not None:
            raise ConnectionError(
                f"{op} failed on {attempts} replica(s): {last.cause}"
            ) from last.cause
        raise BreakerOpenError(
            f"{op}: no replica available (all breakers open)"
        )

    def _call_hedged(
        self,
        order: Sequence[int],
        op: str,
        args: Optional[Dict[str, Any]],
        deadline_at: Optional[float],
        priority: Optional[int],
    ) -> Any:
        """Primary attempt + a hedge fired after ``hedge_delay`` seconds.

        Falls back to sequential failover over the untried replicas when
        both hedged attempts fail retryably. The losing attempt is not
        cancelled (blocking sockets cannot be); its result is discarded
        when it eventually lands, on its own per-thread connection.
        """
        # allow() is consumed lazily — a half-open breaker's probe slot
        # must only be taken by an attempt that actually happens.
        primary = next(
            (i for i in order if self.breakers[i].allow()), None
        )
        if primary is None:
            raise BreakerOpenError(
                f"{op}: no replica available (all breakers open)"
            )
        executor = self._ensure_executor()
        pending: Dict[Future, int] = {}
        tried: List[int] = [primary]
        pending[executor.submit(
            self._attempt, primary, op, args, deadline_at, priority
        )] = primary
        hedged = False
        last: Optional[BaseException] = None
        while pending:
            timeout = None
            if not hedged:
                timeout = self.hedge_delay
            if deadline_at is not None:
                remaining = deadline_at - self._clock()
                if remaining <= 0:
                    self._check_deadline(deadline_at)  # raises
                timeout = (
                    remaining if timeout is None else min(timeout, remaining)
                )
            done, _ = futures_wait(
                pending, timeout=timeout, return_when=FIRST_COMPLETED
            )
            for future in done:
                pending.pop(future)
                try:
                    return future.result()
                except _Attempt as exc:
                    last = exc.cause
                except ServerError:
                    raise           # non-retryable: surface immediately
            if not done and not hedged:
                # Primary is slow: fire the hedge at the next allowed
                # replica (budgeted — a hedge is a speculative retry).
                hedged = True
                hedge_idx = next(
                    (i for i in order
                     if i not in tried and self.breakers[i].allow()),
                    None,
                )
                if hedge_idx is not None:
                    if self.retry_budget.try_spend():
                        tried.append(hedge_idx)
                        self._inc("cluster_hedges_total", labels={"op": op})
                        pending[executor.submit(
                            self._attempt, hedge_idx, op, args,
                            deadline_at, priority,
                        )] = hedge_idx
                    else:
                        self.breakers[hedge_idx].release()
                        self._inc("cluster_retry_budget_exhausted_total")
        # Both hedged attempts failed retryably: sequential failover over
        # whatever replicas remain.
        remaining_order = [i for i in order if i not in tried]
        if remaining_order:
            try:
                return self._call_failover(
                    remaining_order, op, args, deadline_at, priority
                )
            except BreakerOpenError:
                pass
        raise ConnectionError(
            f"{op} failed on {len(tried)} hedged replica(s): {last}"
        ) from last

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=max(4, 2 * len(self.replicas)),
                    thread_name_prefix="repro-cluster-hedge",
                )
            return self._executor

    # ------------------------------------------------------------------
    # query API (mirrors SummaryClient)
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        """Health of the first replica that answers."""
        return self.call("ping", hedge=False)

    def stats(self) -> Dict[str, Any]:
        """Stats from the first replica that answers."""
        return self.call("stats", hedge=False)

    def neighbors(self, v: int, **kw: Any) -> List[int]:
        """Sorted neighbour list of ``v`` (routed to ``v``'s shard)."""
        return self.call("neighbors", {"v": int(v)}, route=int(v), **kw)

    def degree(self, v: int, **kw: Any) -> int:
        """Degree of ``v`` (routed to ``v``'s shard)."""
        return self.call("degree", {"v": int(v)}, route=int(v), **kw)

    def has_edge(self, u: int, v: int, **kw: Any) -> bool:
        """Edge membership of ``(u, v)`` (routed to ``u``'s shard)."""
        return self.call(
            "has_edge", {"u": int(u), "v": int(v)}, route=int(u), **kw
        )

    def bfs(
        self,
        source: int,
        *,
        allow_partial: bool = False,
        **kw: Any,
    ) -> Union[Dict[int, int], PartialResult]:
        """Hop distances from ``source``.

        On a sharded cluster this is the one multi-shard op: the client
        runs the BFS itself, scattering each level's frontier to the
        owning shards in parallel. A shard that cannot answer (even
        after in-shard failover) makes the result *partial*: with
        ``allow_partial=False`` (default) a :class:`PartialResultError`
        is raised — an error, never a silently short answer — and with
        ``allow_partial=True`` a :class:`PartialResult` envelope is
        returned instead.
        """
        if self._ring is None:
            pairs = self.call("bfs", {"source": int(source)}, **kw)
            result = {int(node): int(dist) for node, dist in pairs}
            if allow_partial:
                return PartialResult(value=result, complete=True)
            return result
        return self._bfs_scatter(
            int(source), allow_partial=allow_partial, **kw
        )

    def _bfs_scatter(
        self,
        source: int,
        *,
        allow_partial: bool = False,
        deadline: Optional[float] = None,
        priority: Optional[int] = None,
        hedge: Optional[bool] = None,  # accepted for signature parity
    ) -> Union[Dict[int, int], PartialResult]:
        """Client-driven frontier BFS over the shard set.

        Per level, frontier nodes are grouped by owning shard and each
        shard's batch is fetched concurrently under the shared call
        deadline (each per-shard fetch does its own in-shard failover).
        A shard failure poisons the rest of its component — distances
        already gathered stay correct, so the partial envelope is safe
        to use, just incomplete.
        """
        if deadline is None:
            deadline = self.default_deadline
        deadline_at = (
            self._clock() + deadline if deadline is not None else None
        )
        ring = self._ring
        assert ring is not None
        executor = self._ensure_executor()
        distances: Dict[int, int] = {source: 0}
        frontier: List[int] = [source]
        depth = 0
        failed: Set[int] = set()
        while frontier:
            by_shard: Dict[int, List[int]] = {}
            for v in frontier:
                by_shard.setdefault(ring.shard_of(v), []).append(v)
            self._inc(
                "cluster_scatter_fanout_total", amount=len(by_shard)
            )
            futures = {
                executor.submit(
                    self._fetch_neighbors, sid, nodes,
                    deadline_at, priority,
                ): sid
                for sid, nodes in sorted(by_shard.items())
                if sid not in failed
            }
            depth += 1
            next_frontier: List[int] = []
            for future, sid in futures.items():
                try:
                    neighbor_lists = future.result()
                except (ServerError, ConnectionError):
                    failed.add(sid)
                    continue
                for nbrs in neighbor_lists:
                    for u in nbrs:
                        u = int(u)
                        if u not in distances:
                            distances[u] = depth
                            next_frontier.append(u)
            frontier = next_frontier
        if failed:
            self._inc("cluster_partial_results_total")
            partial = PartialResult(
                value=distances, complete=False,
                failed_shards=sorted(failed),
            )
            if not allow_partial:
                raise PartialResultError("bfs", partial)
            return partial
        if allow_partial:
            return PartialResult(value=distances, complete=True)
        return distances

    def _fetch_neighbors(
        self,
        sid: int,
        nodes: Sequence[int],
        deadline_at: Optional[float],
        priority: Optional[int],
    ) -> List[List[int]]:
        """One shard's slice of a scatter: neighbour lists for ``nodes``.

        Runs on the hedge executor; each node's fetch fails over within
        the shard's replicas and shares the scatter's deadline.
        """
        out: List[List[int]] = []
        for v in nodes:
            self.retry_budget.deposit()
            self._inc("cluster_requests_total", labels={"op": "neighbors"})
            out.append(self._call_failover(
                self._shard_order(sid), "neighbors", {"v": int(v)},
                deadline_at, priority,
            ))
        return out

    def analytics(
        self,
        op: str,
        args: Optional[Dict[str, Any]] = None,
        *,
        allow_partial: bool = False,
        **kw: Any,
    ) -> Any:
        """One summary-native analytics op across the cluster.

        Unsharded: plain failover over the replica set. Sharded:
        ``analytics.degree`` routes to the owning shard (its serving
        summary is authoritative for its nodes); every global estimator
        scatters ``analytics.slice`` to all shards and merges the
        slices into the stitched global summary client-side — the merge
        is exact, so a sharded answer equals the single-node one. A
        missing shard makes the result partial, same contract as
        :meth:`bfs`.
        """
        if not op.startswith("analytics."):
            op = f"analytics.{op}"
        args = args or {}
        if self._ring is None:
            result = self.call(op, args, **kw)
            if allow_partial:
                return PartialResult(value=result, complete=True)
            return result
        if op == "analytics.degree":
            result = self.call(op, args, route=int(args["v"]), **kw)
            if allow_partial:
                return PartialResult(value=result, complete=True)
            return result
        return self._analytics_scatter(
            op, args, allow_partial=allow_partial, **kw
        )

    def _analytics_scatter(
        self,
        op: str,
        args: Dict[str, Any],
        *,
        allow_partial: bool = False,
        deadline: Optional[float] = None,
        priority: Optional[int] = None,
        hedge: Optional[bool] = None,  # accepted for signature parity
    ) -> Any:
        """Scatter ``analytics.slice`` to every shard, merge, compute.

        The summary aggregate — not the graph — crosses the wire: one
        slice per shard, fetched concurrently with in-shard failover.
        Any missing slice aborts the merge (an incomplete summary would
        silently skew every estimate), so unlike BFS the partial
        envelope carries no value, only the failed-shard list.
        """
        if deadline is None:
            deadline = self.default_deadline
        deadline_at = (
            self._clock() + deadline if deadline is not None else None
        )
        ring = self._ring
        assert ring is not None
        executor = self._ensure_executor()
        shard_ids = sorted(self._shard_slots)
        self._inc("cluster_scatter_fanout_total", amount=len(shard_ids))
        futures = {
            executor.submit(
                self._fetch_slice, sid, deadline_at, priority
            ): sid
            for sid in shard_ids
        }
        slices: Dict[int, Dict[str, Any]] = {}
        failed: List[int] = []
        for future, sid in futures.items():
            try:
                slices[sid] = future.result()
            except (ServerError, ConnectionError):
                failed.append(sid)
        if failed:
            self._inc("cluster_partial_results_total")
            partial = PartialResult(
                value=None, complete=False, failed_shards=sorted(failed)
            )
            if not allow_partial:
                raise PartialResultError(op, partial)
            return partial
        merged = merge_slices(slices, ring.shard_of)
        result = execute_analytics(
            CompiledSummaryIndex(merged), op, args
        )
        if allow_partial:
            return PartialResult(value=result, complete=True)
        return result

    def _fetch_slice(
        self,
        sid: int,
        deadline_at: Optional[float],
        priority: Optional[int],
    ) -> Dict[str, Any]:
        """One shard's ``analytics.slice``, with in-shard failover."""
        self.retry_budget.deposit()
        self._inc(
            "cluster_requests_total", labels={"op": "analytics.slice"}
        )
        return self._call_failover(
            self._shard_order(sid), "analytics.slice", {},
            deadline_at, priority,
        )

    # ------------------------------------------------------------------
    # topology refresh (ring-epoch cache invalidation)
    # ------------------------------------------------------------------
    def refresh_topology(
        self, payload: Optional[Dict[str, Any]] = None
    ) -> bool:
        """Refetch the routing topology; install it if strictly newer.

        ``payload`` is the server-published envelope (``epoch`` + ``ring``
        + per-shard addresses) from the ``topology`` control op; when
        ``None`` it is fetched from the first known replica that answers
        — retired replicas deliberately keep serving the *new* topology,
        so a fully stale client can still find its way forward.

        The swap is atomic with respect to new calls: ring, slot map,
        replica list and breakers are replaced together under a lock
        (per-address breakers surviving the change keep their state), and
        the connection version is bumped so every worker thread drops its
        cached sockets to retired servers. Returns ``True`` iff a newer
        epoch was installed.
        """
        if self._ring is None:
            return False        # unsharded clients have no topology
        if payload is None:
            payload = self._fetch_topology()
        if not payload or payload.get("ring") is None:
            return False
        try:
            epoch = int(payload.get("epoch", 0))
            ring = HashRing.from_dict(payload["ring"])
            shard_map = {
                int(sid): [(str(h), int(p)) for h, p in addrs]
                for sid, addrs in payload["shards"].items()
            }
        except (KeyError, TypeError, ValueError):
            logger.warning("ignoring malformed topology payload")
            return False
        with self._topology_lock:
            if epoch <= self.epoch:
                return False
            shard_ids = sorted(shard_map)
            if sorted(ring.shards) != shard_ids or not all(
                shard_map[sid] for sid in shard_ids
            ):
                logger.warning("ignoring inconsistent topology payload")
                return False
            old_breakers = dict(zip(self.replicas, self.breakers))
            flat: List[Address] = []
            slots: Dict[int, List[int]] = {}
            for sid in shard_ids:
                addrs = shard_map[sid]
                slots[sid] = list(
                    range(len(flat), len(flat) + len(addrs))
                )
                flat.extend(addrs)
            breakers = [
                old_breakers.get(addr) or CircuitBreaker(
                    failure_threshold=self._breaker_failures,
                    recovery_time=self._breaker_recovery,
                    clock=self._clock,
                )
                for addr in flat
            ]
            self.shard_ids = shard_ids
            self._shard_slots = slots
            self.replicas = flat
            self.breakers = breakers
            self._ring = ring
            with self._rr_lock:
                self._rr = 0
                self._shard_rr = {sid: 0 for sid in shard_ids}
            self.epoch = epoch
            self._topology_version += 1
            self._inc("cluster_topology_refreshes_total")
            self.metrics.set_gauge("cluster_ring_epoch", epoch)
            obs_metrics.set_gauge("cluster_ring_epoch", epoch)
        logger.info(
            "topology refreshed to epoch %d: %d shards, %d replicas",
            epoch, len(shard_ids), len(flat),
        )
        return True

    def _fetch_topology(self) -> Optional[Dict[str, Any]]:
        """The ``topology`` payload from the first replica that answers."""
        for host, port in list(self.replicas):
            probe = SummaryClient(host, port, timeout=self.timeout,
                                  retries=0)
            try:
                return probe.call("topology")
            except (ServerError, OSError, ProtocolError):
                continue
            finally:
                probe.close()
        return None

    # ------------------------------------------------------------------
    # health / introspection
    # ------------------------------------------------------------------
    def start_health_checks(
        self, interval: float = 1.0, probe_timeout: float = 0.5
    ) -> "ClusterHealthChecker":
        """Start the background health checker (idempotent)."""
        if self._checker is None or not self._checker.is_alive():
            self._checker = ClusterHealthChecker(
                self, interval=interval, probe_timeout=probe_timeout
            )
            self._checker.start()
        return self._checker

    def breaker_states(self) -> Dict[str, str]:
        """``{"host:port": "closed" | "open" | "half_open"}``."""
        return {
            _addr_label(addr): breaker.state
            for addr, breaker in zip(self.replicas, self.breakers)
        }

    def status(self) -> Dict[str, Any]:
        """Structured cluster-side view: breakers, budget, last health."""
        checker = self._checker
        return {
            "replicas": [_addr_label(a) for a in self.replicas],
            "shards": {
                sid: [_addr_label(self.replicas[i]) for i in slots]
                for sid, slots in sorted(self._shard_slots.items())
            },
            "breakers": {
                _addr_label(a): b.snapshot()
                for a, b in zip(self.replicas, self.breakers)
            },
            "retry_budget": {
                "tokens": self.retry_budget.tokens,
                "spent_total": self.retry_budget.spent_total,
                "denied_total": self.retry_budget.denied_total,
            },
            "health": dict(checker.last_health) if checker else {},
            "metrics": self.metrics.snapshot(),
        }

    def prometheus(self) -> str:
        """Client-side metrics (breakers, hedges, failovers) as text.

        Same exposition format as the servers' scrape endpoints, so one
        scraper config covers both sides of the cluster.
        """
        for addr, breaker in zip(self.replicas, self.breakers):
            self.metrics.set_gauge(
                "cluster_breaker_state",
                breaker.snapshot()["state_code"],
                labels={"replica": _addr_label(addr)},
            )
        self.metrics.set_gauge(
            "cluster_retry_budget_tokens", self.retry_budget.tokens
        )
        return self.metrics.to_prometheus(prefix="repro_")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the *calling thread's* connections (client stays usable).

        Loadgen workers each call this on exit; shared state (breakers,
        budget, metrics) is untouched. Use :meth:`shutdown` for full
        teardown.
        """
        clients = getattr(self._tl, "clients", None)
        if clients:
            for client in clients.values():
                client.close()
            clients.clear()

    def shutdown(self) -> None:
        """Full teardown: health checker, hedge executor, connections."""
        if self._checker is not None:
            self._checker.stop()
            self._checker = None
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False)
                self._executor = None
        self.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


class ClusterHealthChecker(threading.Thread):
    """Active health prober feeding a :class:`ClusterClient`'s breakers.

    Every ``interval`` seconds each replica whose breaker admits a call
    is probed with the cheap ``ping`` health op on a short-timeout,
    throwaway connection. Successes close breakers (recovering replicas
    return to rotation without waiting for live traffic to gamble on
    them); failures trip them. The last health payload per replica is
    kept for :meth:`ClusterClient.status`.
    """

    def __init__(
        self,
        client: ClusterClient,
        interval: float = 1.0,
        probe_timeout: float = 0.5,
    ) -> None:
        super().__init__(name="repro-cluster-health", daemon=True)
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.client = client
        self.interval = interval
        self.probe_timeout = probe_timeout
        self.last_health: Dict[str, Dict[str, Any]] = {}
        self.probes_total = 0
        self._stop_event = threading.Event()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop probing and join the thread."""
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=timeout)

    def probe_all(self) -> None:
        """One probe round (also callable synchronously from tests)."""
        newer_epoch = False
        for idx, address in enumerate(list(self.client.replicas)):
            if idx >= len(self.client.breakers):
                break               # topology refreshed mid-round
            breaker = self.client.breakers[idx]
            if not breaker.allow():
                continue
            label = _addr_label(address)
            probe = SummaryClient(
                address[0], address[1],
                timeout=self.probe_timeout, retries=0,
            )
            self.probes_total += 1
            try:
                health = probe.ping()
            except Exception:  # noqa: BLE001 - any probe failure counts
                breaker.record_failure()
                self.client.metrics.inc(
                    "cluster_probe_failures_total",
                    labels={"replica": label},
                )
                self.last_health.pop(label, None)
            else:
                breaker.record_success()
                self.last_health[label] = health
                self.client.metrics.set_gauge(
                    "cluster_replica_generation",
                    health.get("generation", -1),
                    labels={"replica": label},
                )
                self.client.metrics.set_gauge(
                    "cluster_replica_queue_depth",
                    health.get("queue_depth", -1),
                    labels={"replica": label},
                )
                ring_epoch = health.get("ring_epoch")
                if (
                    ring_epoch is not None
                    and int(ring_epoch) > self.client.epoch
                ):
                    newer_epoch = True
            finally:
                probe.close()
            self.client.metrics.set_gauge(
                "cluster_breaker_state",
                breaker.snapshot()["state_code"],
                labels={"replica": label},
            )
        # Per-shard generation: the max across the shard's healthy
        # replicas (they converge after a completed shard swap; a lagging
        # replica shows up as the gauge disagreeing with its own
        # cluster_replica_generation).
        for sid, slots in sorted(self.client._shard_slots.items()):
            generations = [
                self.last_health[label].get("generation", -1)
                for label in (
                    _addr_label(self.client.replicas[i]) for i in slots
                )
                if label in self.last_health
            ]
            if generations:
                self.client.metrics.set_gauge(
                    "cluster_shard_generation",
                    max(generations),
                    labels={"shard": str(sid)},
                )
        # A replica advertising a newer ring epoch in its health payload
        # means a cutover committed since this client last fetched the
        # topology — refresh proactively instead of waiting for a
        # wrong_shard bounce on live traffic.
        if newer_epoch:
            try:
                self.client.refresh_topology()
            except Exception:  # noqa: BLE001 - keep probing
                logger.exception("topology refresh failed")

    def run(self) -> None:
        while not self._stop_event.wait(self.interval):
            try:
                self.probe_all()
            except Exception:  # noqa: BLE001 - keep probing
                logger.exception("health probe round failed")


# ----------------------------------------------------------------------
# server side
# ----------------------------------------------------------------------
def _compile(
    summary: Union[Summarization, CompiledSummaryIndex]
) -> CompiledSummaryIndex:
    if isinstance(summary, CompiledSummaryIndex):
        return summary
    return CompiledSummaryIndex(summary)


@dataclass
class SwapReport:
    """Outcome of a :meth:`SummaryCluster.rolling_swap`."""

    ok: bool
    generations: List[int] = field(default_factory=list)
    swapped: List[int] = field(default_factory=list)       # flat replicas
    swapped_shards: List[int] = field(default_factory=list)
    rolled_back: bool = False
    error: Optional[str] = None


class SummaryCluster:
    """Shards × replicas of in-process summary servers, one fleet API.

    Two topologies:

    * **Unsharded** (the original): ``SummaryCluster(summary, replicas=N)``
      runs N replicas of one compiled index (compiled once, shared —
      indexes are immutable). One implicit shard.
    * **Sharded**: ``SummaryCluster(shards={sid: summary, ...}, ring=...,
      replicas=N)`` — or :meth:`from_manifest` — runs N replicas *per
      shard*, each shard serving its own per-shard summary from
      :func:`repro.shard.stitch.shard_serving_summary`. Replica indices
      stay flat (shard-major), so ``kill(i)`` / ``restart(i)`` and the
      chaos plans keep working unchanged.

    Ports are ephemeral by default; pass ``port_base`` to pin
    ``port_base .. port_base+n-1`` across the flat replica list.

    ``config`` is the per-replica :class:`ServerConfig` template; its
    ``degraded_enabled`` flag defaults to True here (a replica set
    exists to degrade gracefully) unless a template is supplied.
    """

    def __init__(
        self,
        summary: Optional[Union[Summarization, CompiledSummaryIndex]] = None,
        replicas: int = 3,
        config: Optional[ServerConfig] = None,
        host: str = "127.0.0.1",
        port_base: int = 0,
        *,
        shards: Optional[
            Mapping[int, Union[Summarization, CompiledSummaryIndex]]
        ] = None,
        ring: Optional[HashRing] = None,
    ) -> None:
        if replicas < 1:
            raise ValueError("a cluster needs at least one replica")
        if (summary is None) == (shards is None):
            raise ValueError("pass exactly one of summary or shards")
        if shards is not None:
            if ring is None:
                raise ValueError("a sharded cluster needs its HashRing")
            self._shard_ids = sorted(int(s) for s in shards)
            if sorted(ring.shards) != self._shard_ids:
                raise ValueError(
                    f"ring shards {ring.shards} != "
                    f"summary shards {self._shard_ids}"
                )
            self._ring: Optional[HashRing] = ring
            self._indexes: Dict[int, CompiledSummaryIndex] = {
                sid: _compile(shards[sid]) for sid in self._shard_ids
            }
        else:
            if ring is not None:
                raise ValueError("a ring requires per-shard summaries")
            self._ring = None
            self._shard_ids = [0]
            self._indexes = {0: _compile(summary)}
        self._previous_indexes: Optional[
            Dict[int, CompiledSummaryIndex]
        ] = None
        self.replicas_per_shard = replicas
        template = config or ServerConfig(degraded_enabled=True)
        self._configs: List[ServerConfig] = []
        self._replica_shard: List[int] = []
        for sid in self._shard_ids:
            for _ in range(replicas):
                i = len(self._configs)
                self._configs.append(dataclasses.replace(
                    template,
                    host=host,
                    port=(port_base + i) if port_base else 0,
                ))
                self._replica_shard.append(sid)
        self._handles: List[Optional[ServerThread]] = (
            [None] * len(self._configs)
        )
        self._started = False
        # Generation cutover state: the ring epoch (bumped at every
        # commit), the staged-but-uncommitted replica fleet, and old
        # fleets kept alive after commit so stale clients can still
        # reach *something* that redirects them (deferred retirement).
        self._epoch = 0
        self._staged: Optional[Dict[str, Any]] = None
        self._retired: List[ServerThread] = []

    @classmethod
    def from_manifest(
        cls,
        manifest: Union[str, "os.PathLike[str]", object],
        replicas: int = 2,
        config: Optional[ServerConfig] = None,
        host: str = "127.0.0.1",
        port_base: int = 0,
    ) -> "SummaryCluster":
        """Build a sharded cluster from a shard-manifest directory.

        ``manifest`` is a directory path (or ``manifest.json`` path) or a
        parsed :class:`~repro.shard.manifest.ShardManifest`. Artifact
        CRCs are verified before anything serves.
        """
        from ..shard.manifest import ShardManifest, load_manifest

        if not isinstance(manifest, ShardManifest):
            manifest = load_manifest(os.fspath(manifest))  # type: ignore[arg-type]
        summaries = {
            sid: manifest.load_shard(sid) for sid in manifest.shard_ids
        }
        return cls(
            shards=summaries,
            ring=manifest.ring,
            replicas=replicas,
            config=config,
            host=host,
            port_base=port_base,
        )

    # ------------------------------------------------------------------
    @property
    def num_replicas(self) -> int:
        return len(self._configs)

    @property
    def num_shards(self) -> int:
        return len(self._shard_ids)

    @property
    def shard_ids(self) -> List[int]:
        return list(self._shard_ids)

    @property
    def ring(self) -> Optional[HashRing]:
        """The routing ring (``None`` for an unsharded cluster)."""
        return self._ring

    @property
    def index(self) -> CompiledSummaryIndex:
        """The index rolled out to (live) replicas (first shard's when
        sharded — prefer :meth:`shard_index` there)."""
        return self._indexes[self._shard_ids[0]]

    def shard_index(self, shard_id: int) -> CompiledSummaryIndex:
        """The index shard ``shard_id`` currently serves."""
        return self._indexes[shard_id]

    def start(self) -> "SummaryCluster":
        """Start every replica; blocks until all sockets are bound."""
        if self._started:
            raise RuntimeError("cluster already started")
        for i in range(self.num_replicas):
            self._start_replica(i)
        self._push_topology()
        self._started = True
        logger.info(
            "cluster up: %d replicas on %s",
            self.num_replicas,
            ", ".join(_addr_label(a) for a in self.addresses),
        )
        return self

    def _start_replica(self, i: int) -> None:
        index = self._indexes[self._replica_shard[i]]
        handle = ServerThread(index, self._configs[i]).start()
        # Pin the resolved ephemeral port so a restart rebinds the same
        # address and clients keep a stable replica list.
        self._configs[i] = dataclasses.replace(
            self._configs[i], port=handle.port
        )
        self._handles[i] = handle

    @property
    def addresses(self) -> List[Address]:
        """Flat replica addresses (stable across kill/restart)."""
        return [
            (config.host, config.port) for config in self._configs
        ]

    @property
    def shard_addresses(self) -> Dict[int, List[Address]]:
        """Replica addresses grouped by the shard they serve."""
        grouped: Dict[int, List[Address]] = {
            sid: [] for sid in self._shard_ids
        }
        for i, config in enumerate(self._configs):
            grouped[self._replica_shard[i]].append(
                (config.host, config.port)
            )
        return grouped

    def handle(self, i: int) -> ServerThread:
        """The i-th replica's server thread (raises if killed)."""
        handle = self._handles[i]
        if handle is None:
            raise RuntimeError(f"replica {i} is not running")
        return handle

    def alive(self, i: int) -> bool:
        """Whether replica ``i`` is currently running."""
        handle = self._handles[i]
        return handle is not None and handle._thread is not None \
            and handle._thread.is_alive()

    # ------------------------------------------------------------------
    # fleet operations
    # ------------------------------------------------------------------
    def kill(self, i: int) -> None:
        """Abruptly kill replica ``i`` (no drain — chaos semantics)."""
        handle = self._handles[i]
        if handle is not None:
            handle.kill()
            self._handles[i] = None
            logger.info("killed replica %d", i)

    def restart(self, i: int) -> None:
        """Restart a killed replica on its original port, current index."""
        if self._handles[i] is not None:
            raise RuntimeError(f"replica {i} is still running")
        self._start_replica(i)
        if self._ring is not None:
            handle = self._handles[i]
            assert handle is not None
            handle.server.set_topology(
                self.topology(), shard_id=self._replica_shard[i]
            )
        logger.info("restarted replica %d on port %d",
                    i, self._configs[i].port)

    def client(self, **kwargs: Any) -> ClusterClient:
        """A :class:`ClusterClient` over this cluster's addresses.

        Sharded clusters hand the client their ring and per-shard
        address map, so routing and the partitioner agree by
        construction.
        """
        if self._ring is not None:
            return ClusterClient(
                shards=self.shard_addresses, ring=self._ring,
                epoch=self._epoch, **kwargs
            )
        return ClusterClient(self.addresses, **kwargs)

    def generations(self) -> List[Optional[int]]:
        """Per-replica generation (``None`` for killed replicas)."""
        return [
            handle.server.generation if handle is not None else None
            for handle in self._handles
        ]

    def shard_generations(self) -> Dict[int, List[Optional[int]]]:
        """Per-shard view of :meth:`generations`."""
        grouped: Dict[int, List[Optional[int]]] = {
            sid: [] for sid in self._shard_ids
        }
        for i, handle in enumerate(self._handles):
            grouped[self._replica_shard[i]].append(
                handle.server.generation if handle is not None else None
            )
        return grouped

    # ------------------------------------------------------------------
    # generation cutover (elastic re-sharding)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The ring epoch — bumped by every committed cutover."""
        return self._epoch

    @property
    def staged_generation(self) -> Optional[Any]:
        """The staged-but-uncommitted manifest, or ``None``."""
        return self._staged["manifest"] if self._staged else None

    def topology(self) -> Dict[str, Any]:
        """The routing payload served by the ``topology`` control op.

        JSON-serializable by construction: it crosses the wire verbatim
        so a :class:`ClusterClient` can rebuild its ring and per-shard
        address map (:meth:`ClusterClient.refresh_topology`).
        """
        return {
            "epoch": self._epoch,
            "ring": (
                self._ring.to_dict() if self._ring is not None else None
            ),
            "shards": {
                str(sid): [[host, port] for host, port in addrs]
                for sid, addrs in self.shard_addresses.items()
            },
        }

    def _push_topology(self) -> None:
        """Install the current routing payload on every live replica."""
        if self._ring is None:
            return
        payload = self.topology()
        for i, handle in enumerate(self._handles):
            if handle is not None:
                handle.server.set_topology(
                    payload, shard_id=self._replica_shard[i]
                )

    def prepare_generation(
        self,
        manifest: Union[str, "os.PathLike[str]", object],
        replicas: Optional[int] = None,
    ) -> List[Address]:
        """Phase one of a cutover: stage a fresh fleet, old still serving.

        Loads and CRC-verifies ``manifest`` (a directory path or a parsed
        :class:`~repro.shard.manifest.ShardManifest` — which, unlike
        :meth:`rolling_swap`, may carry a *different* ring and shard
        set), starts ``replicas`` servers per new shard on ephemeral
        ports, and ping-validates each one. The current generation keeps
        serving untouched throughout. Any failure tears the staged fleet
        down and re-raises — all-or-nothing. Returns the staged replica
        addresses.
        """
        from ..shard.manifest import ShardManifest, load_manifest

        if self._ring is None:
            raise RuntimeError(
                "generation cutover requires a sharded cluster"
            )
        if not self._started:
            raise RuntimeError("cluster is not started")
        if self._staged is not None:
            raise RuntimeError(
                "a generation is already staged "
                "(commit_generation or abort_generation first)"
            )
        if not isinstance(manifest, ShardManifest):
            manifest = load_manifest(os.fspath(manifest))  # verifies CRCs
        shard_ids = list(manifest.shard_ids)
        indexes = {
            sid: CompiledSummaryIndex(manifest.load_shard(sid))
            for sid in shard_ids
        }
        count = replicas or self.replicas_per_shard
        template = dataclasses.replace(self._configs[0], port=0)
        configs: List[ServerConfig] = []
        replica_shard: List[int] = []
        handles: List[ServerThread] = []
        try:
            for sid in shard_ids:
                for _ in range(count):
                    handle = ServerThread(
                        indexes[sid], dataclasses.replace(template)
                    ).start()
                    handles.append(handle)
                    configs.append(dataclasses.replace(
                        template, port=handle.port
                    ))
                    replica_shard.append(sid)
            for config in configs:
                probe = SummaryClient(
                    config.host, config.port, timeout=2.0, retries=0
                )
                try:
                    if not probe.ping().get("pong"):
                        raise RuntimeError(
                            f"staged replica {config.host}:{config.port} "
                            f"failed validation"
                        )
                finally:
                    probe.close()
        except Exception:
            for handle in handles:
                try:
                    handle.kill()
                except Exception:  # noqa: BLE001 - best-effort teardown
                    pass
            raise
        self._staged = {
            "manifest": manifest,
            "ring": manifest.ring,
            "shard_ids": shard_ids,
            "indexes": indexes,
            "configs": configs,
            "replica_shard": replica_shard,
            "handles": handles,
        }
        logger.info(
            "staged generation: %d shards x %d replicas (epoch %d still "
            "serving)", len(shard_ids), count, self._epoch,
        )
        return [(c.host, c.port) for c in configs]

    def commit_generation(self) -> int:
        """Phase two: atomically flip routing to the staged generation.

        Swaps ring, indexes, configs and handles in one step and bumps
        the ring epoch. The *old* replicas are not stopped: they get the
        new topology installed with a sentinel shard id, so every routed
        query they still receive bounces with ``wrong_shard`` and their
        ``topology`` op hands stale clients the new address map — then
        :meth:`retire_old_generation` reaps them once traffic has moved.
        Returns the new epoch.
        """
        staged = self._staged
        if staged is None:
            raise RuntimeError("no staged generation to commit")
        old_handles = [h for h in self._handles if h is not None]
        self._ring = staged["ring"]
        self._shard_ids = staged["shard_ids"]
        self._indexes = staged["indexes"]
        self._configs = staged["configs"]
        self._replica_shard = staged["replica_shard"]
        self._handles = list(staged["handles"])
        self._previous_indexes = None   # old indexes span the old ring
        self._staged = None
        self._epoch += 1
        payload = self.topology()
        for i, handle in enumerate(self._handles):
            if handle is not None:
                handle.server.set_topology(
                    payload, shard_id=self._replica_shard[i]
                )
        for handle in old_handles:
            try:
                # shard_id=-1 owns nothing under any ring: the retired
                # replica rejects every routed query with wrong_shard
                # instead of answering from its superseded artifact.
                handle.server.set_topology(payload, shard_id=-1)
            except Exception:  # noqa: BLE001 - a dead old replica is fine
                pass
        self._retired.extend(old_handles)
        logger.info(
            "committed generation: epoch %d, shards %s (%d old replicas "
            "awaiting retirement)",
            self._epoch, self._shard_ids, len(old_handles),
        )
        return self._epoch

    def abort_generation(self) -> bool:
        """Tear down a staged-but-uncommitted generation (idempotent).

        The serving fleet is untouched — prepare is side-effect-free
        until commit, which is what makes the coordinator's rollback
        all-or-nothing. Returns whether anything was staged.
        """
        staged = self._staged
        if staged is None:
            return False
        self._staged = None
        for handle in staged["handles"]:
            try:
                handle.kill()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        logger.info("aborted staged generation (epoch %d still serving)",
                    self._epoch)
        return True

    def retire_old_generation(self, timeout: float = 5.0) -> int:
        """Stop replicas left serving redirects by past commits."""
        retired, self._retired = self._retired, []
        for handle in retired:
            try:
                handle.stop(timeout=timeout)
            except Exception:  # noqa: BLE001 - kill stragglers
                try:
                    handle.kill()
                except Exception:  # noqa: BLE001
                    pass
        return len(retired)

    # ------------------------------------------------------------------
    # rolling swap
    # ------------------------------------------------------------------
    def _resolve_swap_target(
        self,
        target: Union[
            Summarization, CompiledSummaryIndex, str,
            Mapping[int, Union[Summarization, CompiledSummaryIndex]],
        ],
    ) -> Dict[int, CompiledSummaryIndex]:
        """Normalize a swap target to one compiled index per shard.

        Raises ``OSError``/``ValueError`` (including the checksummed
        readers' :class:`~repro.errors.CorruptSummaryError`) before any
        replica is touched.
        """
        if isinstance(target, str):
            if os.path.isdir(target) or target.endswith("manifest.json"):
                from ..shard.manifest import load_manifest

                manifest = load_manifest(target)   # verifies every CRC
                if manifest.shard_ids != self._shard_ids:
                    raise ValueError(
                        f"manifest shards {manifest.shard_ids} != "
                        f"cluster shards {self._shard_ids}"
                    )
                if self._ring is not None and manifest.ring != self._ring:
                    raise ValueError(
                        "manifest ring differs from the cluster's ring "
                        "(routing would no longer match the artifacts)"
                    )
                return {
                    sid: CompiledSummaryIndex(manifest.load_shard(sid))
                    for sid in self._shard_ids
                }
            if len(self._shard_ids) != 1:
                raise ValueError(
                    "a sharded cluster swaps from a manifest directory, "
                    "not a single summary file"
                )
            return {self._shard_ids[0]: _load_index(target)}
        if isinstance(target, Mapping):
            ids = sorted(int(s) for s in target)
            if ids != self._shard_ids:
                raise ValueError(
                    f"swap shards {ids} != cluster shards {self._shard_ids}"
                )
            return {int(sid): _compile(s) for sid, s in target.items()}
        if len(self._shard_ids) != 1:
            raise ValueError(
                "a sharded cluster needs one summary per shard"
            )
        return {self._shard_ids[0]: _compile(target)}

    def rolling_swap(
        self,
        target: Union[
            Summarization, CompiledSummaryIndex, str,
            Mapping[int, Union[Summarization, CompiledSummaryIndex]],
        ],
        drain_seconds: float = 0.0,
        verify: Optional[Callable[[int, ServerThread], bool]] = None,
    ) -> SwapReport:
        """Roll a new summary across the fleet — one shard at a time,
        one replica at a time — with verification and automatic rollback.

        ``target`` may be a summary file path, a shard-manifest
        directory (sharded clusters), or an explicit shard → summary
        mapping; corruption is caught at load time (checksummed readers
        plus manifest CRCs), before any replica is touched. Each replica
        is held in degraded mode while it swaps (cached answers flow,
        stale ones flagged), then verified (``verify`` callback, or a
        live ``ping`` showing the advanced generation). Any failure
        rolls every already-swapped replica — across *all* shards — back
        to its previous index; the fleet never ends up split between the
        old and new summary sets.
        """
        try:
            targets = self._resolve_swap_target(target)
        except (OSError, ValueError) as exc:
            logger.warning("rolling swap rejected at load: %s", exc)
            return SwapReport(
                ok=False, generations=self._live_generations(),
                error=f"load failed: {exc}",
            )
        previous = dict(self._indexes)
        swapped: List[int] = []
        swapped_shards: List[int] = []
        for sid in self._shard_ids:
            index = targets[sid]
            for i, handle in enumerate(self._handles):
                if self._replica_shard[i] != sid:
                    continue
                if handle is None:
                    continue        # killed replicas pick the index up
                                    # on restart (self._indexes below)
                server = handle.server
                server.set_degraded(True)
                try:
                    server.swap(index)
                    if drain_seconds > 0:
                        time.sleep(drain_seconds)
                    ok = (
                        verify(i, handle) if verify is not None
                        else self._verify_replica(i)
                    )
                    if not ok:
                        raise RuntimeError(
                            f"replica {i} (shard {sid}) failed "
                            f"post-swap verification"
                        )
                    swapped.append(i)
                except Exception as exc:  # noqa: BLE001 - roll back on anything
                    server.set_degraded(False)
                    self._rollback(swapped + [i], previous)
                    logger.warning(
                        "rolling swap aborted at replica %d, shard %s "
                        "(%s); rolled back %d replica(s)",
                        i, sid, exc, len(swapped) + 1,
                    )
                    return SwapReport(
                        ok=False, generations=self._live_generations(),
                        swapped=[], rolled_back=True, error=str(exc),
                    )
                finally:
                    if server.degraded:
                        server.set_degraded(False)
            swapped_shards.append(sid)
        self._previous_indexes = previous
        self._indexes = targets
        return SwapReport(
            ok=True, generations=self._live_generations(),
            swapped=swapped, swapped_shards=swapped_shards,
        )

    def rollback(self) -> SwapReport:
        """Re-roll the previous index set across the fleet."""
        if self._previous_indexes is None:
            return SwapReport(
                ok=False, generations=self._live_generations(),
                error="nothing to roll back to",
            )
        if self._ring is None:
            return self.rolling_swap(
                self._previous_indexes[self._shard_ids[0]]
            )
        return self.rolling_swap(dict(self._previous_indexes))

    def _rollback(
        self,
        indices: Sequence[int],
        previous: Mapping[int, CompiledSummaryIndex],
    ) -> None:
        for i in indices:
            handle = self._handles[i]
            if handle is not None:
                handle.server.swap(previous[self._replica_shard[i]])

    def _live_generations(self) -> List[int]:
        return [
            handle.server.generation
            for handle in self._handles if handle is not None
        ]

    def _verify_replica(self, i: int) -> bool:
        """Default post-swap check: a live ping answering sanely."""
        host, port = self.addresses[i]
        probe = SummaryClient(host, port, timeout=2.0, retries=0)
        try:
            health = probe.ping()
            return bool(health.get("pong"))
        except Exception:  # noqa: BLE001 - any failure fails verification
            return False
        finally:
            probe.close()

    # ------------------------------------------------------------------
    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully stop every live replica (staged + retired too)."""
        self.abort_generation()
        self.retire_old_generation(timeout=timeout)
        for i, handle in enumerate(self._handles):
            if handle is not None:
                try:
                    handle.stop(timeout=timeout)
                except RuntimeError:
                    logger.warning("replica %d did not stop cleanly", i)
                self._handles[i] = None
        self._started = False

    def __enter__(self) -> "SummaryCluster":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
