"""Replicated serving: a health-checked failover cluster over summaries.

Two halves, mirroring a real deployment:

* :class:`SummaryCluster` — the *server* side. Runs N
  :class:`~repro.serve.server.SummaryServer` replicas (via
  :class:`~repro.serve.server.ServerThread`) over one shared compiled
  index, and owns fleet operations: abrupt :meth:`~SummaryCluster.kill`
  and :meth:`~SummaryCluster.restart` of a replica (chaos tests), and
  :meth:`~SummaryCluster.rolling_swap` — a generation-tracked rolling
  hot-swap that verifies each replica after swapping and rolls every
  replica back to the previous index if verification fails, so a bad
  summary never takes the fleet down. While a replica is mid-swap it is
  held in degraded mode (cached answers served immediately, stale ones
  flagged) instead of erroring.

* :class:`ClusterClient` — the *client* side, replacing raw
  :class:`~repro.serve.client.SummaryClient` failover with production
  semantics:

  - **per-replica circuit breakers** (closed/open/half-open,
    deterministic clocks for tests) fed both passively by request
    outcomes and actively by the optional background health checker
    (:meth:`ClusterClient.start_health_checks`, built on the cheap
    ``ping`` health op);
  - **a global retry budget** (token bucket) so retries are bounded by
    a fraction of live traffic and cannot amplify an outage;
  - **hedged reads** — after ``hedge_delay`` seconds without an answer,
    the same idempotent query is fired at a second replica and the
    first success wins, cutting tail latency when one replica stalls;
  - **deadline propagation** — a per-call deadline is enforced locally
    *and* shipped on the wire (``deadline_ms``), so the server rejects
    work whose deadline expired in its queue instead of executing it.

Everything is observable: breaker state gauges, failover / hedge /
stale / budget counters land in the client's
:class:`~repro.obs.metrics.MetricsRegistry` (Prometheus-renderable via
:meth:`ClusterClient.prometheus`) and are mirrored to the module-level
:mod:`repro.obs.metrics` seam when a registry is installed.
"""

from __future__ import annotations

import dataclasses
import logging
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.summary import Summarization
from ..obs import metrics as obs_metrics
from ..queries.compiled import CompiledSummaryIndex
from .breaker import (
    BreakerOpenError,
    CircuitBreaker,
    RetryBudget,
    failure_trips_breaker,
)
from .client import ServerError, SummaryClient
from .metrics import MetricsRegistry
from .protocol import ErrorCode, ProtocolError
from .server import ServerConfig, ServerThread, _load_index

__all__ = [
    "Address",
    "ClusterClient",
    "ClusterHealthChecker",
    "SummaryCluster",
    "SwapReport",
]

logger = logging.getLogger("repro.serve.cluster")

#: A replica address.
Address = Tuple[str, int]

#: Idempotent query ops that may be hedged (control ops never are).
_HEDGEABLE = frozenset({"neighbors", "degree", "has_edge", "bfs"})


def _addr_label(address: Address) -> str:
    return f"{address[0]}:{address[1]}"


class _Attempt(Exception):
    """Internal wrapper: a failed attempt that may fail over.

    ``code`` is the typed server error code, or ``None`` for transport
    faults; ``cause`` is the underlying exception to re-raise if no
    replica can answer.
    """

    def __init__(self, cause: Exception, code: Optional[str]) -> None:
        super().__init__(str(cause))
        self.cause = cause
        self.code = code


# ----------------------------------------------------------------------
# client side
# ----------------------------------------------------------------------
class ClusterClient:
    """Blocking failover client over a set of summary-server replicas.

    Thread-safe: loadgen workers share one instance (and thereby one set
    of breakers and one retry budget — that sharing *is* the feature).
    Each thread gets its own per-replica TCP connections.

    Parameters
    ----------
    replicas:
        ``(host, port)`` addresses of the replica set.
    timeout:
        Socket timeout per attempt (seconds).
    deadline:
        Default per-call deadline in seconds (``None`` = no deadline).
        Propagated to the server as ``deadline_ms`` remaining budget.
    hedge_delay:
        Seconds to wait for the first replica before hedging the query
        to a second one (``None`` disables hedging).
    retry_budget:
        Shared :class:`~repro.serve.breaker.RetryBudget`; defaults to a
        fresh one (ratio 0.2).
    breaker_failures / breaker_recovery:
        Per-replica breaker tuning (consecutive failures to trip, open
        seconds before half-open probes).
    clock:
        Monotonic time source, injectable for deterministic tests
        (drives deadlines and breaker recovery).
    """

    def __init__(
        self,
        replicas: Sequence[Address],
        *,
        timeout: float = 5.0,
        deadline: Optional[float] = None,
        hedge_delay: Optional[float] = None,
        retry_budget: Optional[RetryBudget] = None,
        breaker_failures: int = 3,
        breaker_recovery: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not replicas:
            raise ValueError("ClusterClient needs at least one replica")
        self.replicas: List[Address] = [
            (str(host), int(port)) for host, port in replicas
        ]
        self.timeout = timeout
        self.default_deadline = deadline
        self.hedge_delay = hedge_delay
        self.retry_budget = retry_budget or RetryBudget()
        self._clock = clock
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(
                failure_threshold=breaker_failures,
                recovery_time=breaker_recovery,
                clock=clock,
            )
            for _ in self.replicas
        ]
        self.metrics = MetricsRegistry()
        self._tl = threading.local()
        self._rr = 0                      # round-robin cursor (racy is fine)
        self._rr_lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._checker: Optional["ClusterHealthChecker"] = None
        self.retries_used = 0             # failover attempts beyond the first
        self.stale_served = 0             # stale-flagged answers observed

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _client_for(self, idx: int) -> SummaryClient:
        clients = getattr(self._tl, "clients", None)
        if clients is None:
            clients = self._tl.clients = {}
        client = clients.get(idx)
        if client is None:
            host, port = self.replicas[idx]
            # retries=0: failover policy lives here, not in the leaf client.
            client = clients[idx] = SummaryClient(
                host, port, timeout=self.timeout, retries=0
            )
        return client

    def _ordered(self) -> List[int]:
        """Replica indices, round-robin rotated for load spreading."""
        with self._rr_lock:
            start = self._rr
            self._rr = (self._rr + 1) % len(self.replicas)
        n = len(self.replicas)
        return [(start + i) % n for i in range(n)]

    def _inc(self, name: str, *, labels: Optional[Dict[str, object]] = None,
             amount: float = 1) -> None:
        self.metrics.inc(name, amount, labels=labels)
        obs_metrics.inc(name, amount, labels=labels)

    def _record(self, idx: int, *, ok: bool,
                code: Optional[str] = None) -> None:
        """Feed one attempt outcome into the replica's breaker + metrics.

        ``ok=True`` is an answered request (always a breaker success).
        ``ok=False`` classifies by ``code``: ``None`` is a transport
        fault; typed codes count as failures exactly when retryable
        (:func:`failure_trips_breaker`).
        """
        breaker = self.breakers[idx]
        label = {"replica": _addr_label(self.replicas[idx])}
        if ok or not failure_trips_breaker(code):
            breaker.record_success()
        else:
            breaker.record_failure()
            self._inc("cluster_attempt_failures_total", labels=label)
        self.metrics.set_gauge(
            "cluster_breaker_state",
            breaker.snapshot()["state_code"],
            labels=label,
        )

    def _attempt(
        self,
        idx: int,
        op: str,
        args: Optional[Dict[str, Any]],
        deadline_at: Optional[float],
        priority: Optional[int],
    ) -> Any:
        """One attempt against one replica; breaker fed on every outcome.

        Raises :class:`_Attempt` on failures eligible for failover, the
        original :class:`ServerError` for non-retryable typed errors.
        """
        deadline_ms: Optional[float] = None
        if deadline_at is not None:
            remaining = deadline_at - self._clock()
            if remaining <= 0:
                raise ServerError(
                    ErrorCode.DEADLINE_EXCEEDED,
                    "deadline expired before the request was sent",
                )
            deadline_ms = remaining * 1000.0
        client = self._client_for(idx)
        stale_before = client.stale_served
        try:
            result = client.call(
                op, args, deadline_ms=deadline_ms, priority=priority
            )
        except ServerError as exc:
            self._record(idx, ok=False, code=exc.code)
            if exc.retryable:
                raise _Attempt(exc, exc.code) from exc
            raise
        except (OSError, ProtocolError) as exc:
            self._record(idx, ok=False, code=None)
            raise _Attempt(exc, None) from exc
        self._record(idx, ok=True)
        stale_delta = client.stale_served - stale_before
        if stale_delta:
            self.stale_served += stale_delta
            self._inc(
                "cluster_stale_total",
                labels={"replica": _addr_label(self.replicas[idx])},
                amount=stale_delta,
            )
        return result

    # ------------------------------------------------------------------
    # call path
    # ------------------------------------------------------------------
    def call(
        self,
        op: str,
        args: Optional[Dict[str, Any]] = None,
        *,
        deadline: Optional[float] = None,
        priority: Optional[int] = None,
        hedge: Optional[bool] = None,
    ) -> Any:
        """Issue ``op`` with failover, breakers, budget, and deadline.

        ``deadline`` (seconds from now) overrides the client default;
        ``hedge`` forces hedging on/off for this call (default: hedge
        query ops when ``hedge_delay`` is configured).
        """
        if deadline is None:
            deadline = self.default_deadline
        deadline_at = (
            self._clock() + deadline if deadline is not None else None
        )
        self.retry_budget.deposit()
        self._inc("cluster_requests_total", labels={"op": op})
        use_hedge = (
            self.hedge_delay is not None and op in _HEDGEABLE
            if hedge is None else hedge
        )
        order = self._ordered()
        if use_hedge:
            return self._call_hedged(
                order, op, args, deadline_at, priority
            )
        return self._call_failover(order, op, args, deadline_at, priority)

    def _check_deadline(self, deadline_at: Optional[float]) -> None:
        if deadline_at is not None and self._clock() >= deadline_at:
            self._inc("cluster_deadline_exceeded_total")
            raise ServerError(
                ErrorCode.DEADLINE_EXCEEDED,
                "cluster call deadline expired",
            )

    def _call_failover(
        self,
        order: Sequence[int],
        op: str,
        args: Optional[Dict[str, Any]],
        deadline_at: Optional[float],
        priority: Optional[int],
    ) -> Any:
        last: Optional[_Attempt] = None
        attempts = 0
        for idx in order:
            self._check_deadline(deadline_at)
            if not self.breakers[idx].allow():
                continue
            if attempts > 0:
                # Failover = retry: it must fit in the global budget so a
                # cluster-wide outage cannot multiply its own traffic.
                if not self.retry_budget.try_spend():
                    self.breakers[idx].release()
                    self._inc("cluster_retry_budget_exhausted_total")
                    break
                self.retries_used += 1
                self._inc("cluster_failovers_total", labels={"op": op})
            attempts += 1
            try:
                return self._attempt(idx, op, args, deadline_at, priority)
            except _Attempt as exc:
                last = exc
                continue
        if last is not None:
            raise ConnectionError(
                f"{op} failed on {attempts} replica(s): {last.cause}"
            ) from last.cause
        raise BreakerOpenError(
            f"{op}: no replica available (all breakers open)"
        )

    def _call_hedged(
        self,
        order: Sequence[int],
        op: str,
        args: Optional[Dict[str, Any]],
        deadline_at: Optional[float],
        priority: Optional[int],
    ) -> Any:
        """Primary attempt + a hedge fired after ``hedge_delay`` seconds.

        Falls back to sequential failover over the untried replicas when
        both hedged attempts fail retryably. The losing attempt is not
        cancelled (blocking sockets cannot be); its result is discarded
        when it eventually lands, on its own per-thread connection.
        """
        # allow() is consumed lazily — a half-open breaker's probe slot
        # must only be taken by an attempt that actually happens.
        primary = next(
            (i for i in order if self.breakers[i].allow()), None
        )
        if primary is None:
            raise BreakerOpenError(
                f"{op}: no replica available (all breakers open)"
            )
        executor = self._ensure_executor()
        pending: Dict[Future, int] = {}
        tried: List[int] = [primary]
        pending[executor.submit(
            self._attempt, primary, op, args, deadline_at, priority
        )] = primary
        hedged = False
        last: Optional[BaseException] = None
        while pending:
            timeout = None
            if not hedged:
                timeout = self.hedge_delay
            if deadline_at is not None:
                remaining = deadline_at - self._clock()
                if remaining <= 0:
                    self._check_deadline(deadline_at)  # raises
                timeout = (
                    remaining if timeout is None else min(timeout, remaining)
                )
            done, _ = futures_wait(
                pending, timeout=timeout, return_when=FIRST_COMPLETED
            )
            for future in done:
                pending.pop(future)
                try:
                    return future.result()
                except _Attempt as exc:
                    last = exc.cause
                except ServerError:
                    raise           # non-retryable: surface immediately
            if not done and not hedged:
                # Primary is slow: fire the hedge at the next allowed
                # replica (budgeted — a hedge is a speculative retry).
                hedged = True
                hedge_idx = next(
                    (i for i in order
                     if i not in tried and self.breakers[i].allow()),
                    None,
                )
                if hedge_idx is not None:
                    if self.retry_budget.try_spend():
                        tried.append(hedge_idx)
                        self._inc("cluster_hedges_total", labels={"op": op})
                        pending[executor.submit(
                            self._attempt, hedge_idx, op, args,
                            deadline_at, priority,
                        )] = hedge_idx
                    else:
                        self.breakers[hedge_idx].release()
                        self._inc("cluster_retry_budget_exhausted_total")
        # Both hedged attempts failed retryably: sequential failover over
        # whatever replicas remain.
        remaining_order = [i for i in order if i not in tried]
        if remaining_order:
            try:
                return self._call_failover(
                    remaining_order, op, args, deadline_at, priority
                )
            except BreakerOpenError:
                pass
        raise ConnectionError(
            f"{op} failed on {len(tried)} hedged replica(s): {last}"
        ) from last

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=max(4, 2 * len(self.replicas)),
                    thread_name_prefix="repro-cluster-hedge",
                )
            return self._executor

    # ------------------------------------------------------------------
    # query API (mirrors SummaryClient)
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        """Health of the first replica that answers."""
        return self.call("ping", hedge=False)

    def stats(self) -> Dict[str, Any]:
        """Stats from the first replica that answers."""
        return self.call("stats", hedge=False)

    def neighbors(self, v: int, **kw: Any) -> List[int]:
        """Sorted neighbour list of ``v``."""
        return self.call("neighbors", {"v": int(v)}, **kw)

    def degree(self, v: int, **kw: Any) -> int:
        """Degree of ``v``."""
        return self.call("degree", {"v": int(v)}, **kw)

    def has_edge(self, u: int, v: int, **kw: Any) -> bool:
        """Edge membership of ``(u, v)``."""
        return self.call("has_edge", {"u": int(u), "v": int(v)}, **kw)

    def bfs(self, source: int, **kw: Any) -> Dict[int, int]:
        """Hop distances from ``source``."""
        pairs = self.call("bfs", {"source": int(source)}, **kw)
        return {int(node): int(dist) for node, dist in pairs}

    # ------------------------------------------------------------------
    # health / introspection
    # ------------------------------------------------------------------
    def start_health_checks(
        self, interval: float = 1.0, probe_timeout: float = 0.5
    ) -> "ClusterHealthChecker":
        """Start the background health checker (idempotent)."""
        if self._checker is None or not self._checker.is_alive():
            self._checker = ClusterHealthChecker(
                self, interval=interval, probe_timeout=probe_timeout
            )
            self._checker.start()
        return self._checker

    def breaker_states(self) -> Dict[str, str]:
        """``{"host:port": "closed" | "open" | "half_open"}``."""
        return {
            _addr_label(addr): breaker.state
            for addr, breaker in zip(self.replicas, self.breakers)
        }

    def status(self) -> Dict[str, Any]:
        """Structured cluster-side view: breakers, budget, last health."""
        checker = self._checker
        return {
            "replicas": [_addr_label(a) for a in self.replicas],
            "breakers": {
                _addr_label(a): b.snapshot()
                for a, b in zip(self.replicas, self.breakers)
            },
            "retry_budget": {
                "tokens": self.retry_budget.tokens,
                "spent_total": self.retry_budget.spent_total,
                "denied_total": self.retry_budget.denied_total,
            },
            "health": dict(checker.last_health) if checker else {},
            "metrics": self.metrics.snapshot(),
        }

    def prometheus(self) -> str:
        """Client-side metrics (breakers, hedges, failovers) as text.

        Same exposition format as the servers' scrape endpoints, so one
        scraper config covers both sides of the cluster.
        """
        for addr, breaker in zip(self.replicas, self.breakers):
            self.metrics.set_gauge(
                "cluster_breaker_state",
                breaker.snapshot()["state_code"],
                labels={"replica": _addr_label(addr)},
            )
        self.metrics.set_gauge(
            "cluster_retry_budget_tokens", self.retry_budget.tokens
        )
        return self.metrics.to_prometheus(prefix="repro_")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the *calling thread's* connections (client stays usable).

        Loadgen workers each call this on exit; shared state (breakers,
        budget, metrics) is untouched. Use :meth:`shutdown` for full
        teardown.
        """
        clients = getattr(self._tl, "clients", None)
        if clients:
            for client in clients.values():
                client.close()
            clients.clear()

    def shutdown(self) -> None:
        """Full teardown: health checker, hedge executor, connections."""
        if self._checker is not None:
            self._checker.stop()
            self._checker = None
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False)
                self._executor = None
        self.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


class ClusterHealthChecker(threading.Thread):
    """Active health prober feeding a :class:`ClusterClient`'s breakers.

    Every ``interval`` seconds each replica whose breaker admits a call
    is probed with the cheap ``ping`` health op on a short-timeout,
    throwaway connection. Successes close breakers (recovering replicas
    return to rotation without waiting for live traffic to gamble on
    them); failures trip them. The last health payload per replica is
    kept for :meth:`ClusterClient.status`.
    """

    def __init__(
        self,
        client: ClusterClient,
        interval: float = 1.0,
        probe_timeout: float = 0.5,
    ) -> None:
        super().__init__(name="repro-cluster-health", daemon=True)
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.client = client
        self.interval = interval
        self.probe_timeout = probe_timeout
        self.last_health: Dict[str, Dict[str, Any]] = {}
        self.probes_total = 0
        self._stop_event = threading.Event()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop probing and join the thread."""
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=timeout)

    def probe_all(self) -> None:
        """One probe round (also callable synchronously from tests)."""
        for idx, address in enumerate(self.client.replicas):
            breaker = self.client.breakers[idx]
            if not breaker.allow():
                continue
            label = _addr_label(address)
            probe = SummaryClient(
                address[0], address[1],
                timeout=self.probe_timeout, retries=0,
            )
            self.probes_total += 1
            try:
                health = probe.ping()
            except Exception:  # noqa: BLE001 - any probe failure counts
                breaker.record_failure()
                self.client.metrics.inc(
                    "cluster_probe_failures_total",
                    labels={"replica": label},
                )
                self.last_health.pop(label, None)
            else:
                breaker.record_success()
                self.last_health[label] = health
                self.client.metrics.set_gauge(
                    "cluster_replica_generation",
                    health.get("generation", -1),
                    labels={"replica": label},
                )
                self.client.metrics.set_gauge(
                    "cluster_replica_queue_depth",
                    health.get("queue_depth", -1),
                    labels={"replica": label},
                )
            finally:
                probe.close()
            self.client.metrics.set_gauge(
                "cluster_breaker_state",
                breaker.snapshot()["state_code"],
                labels={"replica": label},
            )

    def run(self) -> None:
        while not self._stop_event.wait(self.interval):
            try:
                self.probe_all()
            except Exception:  # noqa: BLE001 - keep probing
                logger.exception("health probe round failed")


# ----------------------------------------------------------------------
# server side
# ----------------------------------------------------------------------
@dataclass
class SwapReport:
    """Outcome of a :meth:`SummaryCluster.rolling_swap`."""

    ok: bool
    generations: List[int] = field(default_factory=list)
    swapped: List[int] = field(default_factory=list)
    rolled_back: bool = False
    error: Optional[str] = None


class SummaryCluster:
    """N in-process summary-server replicas behind one fleet API.

    All replicas serve the same compiled index (compiled once, shared —
    indexes are immutable). Ports are ephemeral by default; pass
    ``port_base`` to pin ``port_base .. port_base+n-1``.

    ``config`` is the per-replica :class:`ServerConfig` template; its
    ``degraded_enabled`` flag defaults to True here (a replica set
    exists to degrade gracefully) unless a template is supplied.
    """

    def __init__(
        self,
        summary: Union[Summarization, CompiledSummaryIndex],
        replicas: int = 3,
        config: Optional[ServerConfig] = None,
        host: str = "127.0.0.1",
        port_base: int = 0,
    ) -> None:
        if replicas < 1:
            raise ValueError("a cluster needs at least one replica")
        self._index = (
            summary
            if isinstance(summary, CompiledSummaryIndex)
            else CompiledSummaryIndex(summary)
        )
        self._previous_index: Optional[CompiledSummaryIndex] = None
        template = config or ServerConfig(degraded_enabled=True)
        self._configs: List[ServerConfig] = [
            dataclasses.replace(
                template,
                host=host,
                port=(port_base + i) if port_base else 0,
            )
            for i in range(replicas)
        ]
        self._handles: List[Optional[ServerThread]] = [None] * replicas
        self._started = False

    # ------------------------------------------------------------------
    @property
    def num_replicas(self) -> int:
        return len(self._configs)

    @property
    def index(self) -> CompiledSummaryIndex:
        """The index currently rolled out to (live) replicas."""
        return self._index

    def start(self) -> "SummaryCluster":
        """Start every replica; blocks until all sockets are bound."""
        if self._started:
            raise RuntimeError("cluster already started")
        for i in range(self.num_replicas):
            self._start_replica(i)
        self._started = True
        logger.info(
            "cluster up: %d replicas on %s",
            self.num_replicas,
            ", ".join(_addr_label(a) for a in self.addresses),
        )
        return self

    def _start_replica(self, i: int) -> None:
        handle = ServerThread(self._index, self._configs[i]).start()
        # Pin the resolved ephemeral port so a restart rebinds the same
        # address and clients keep a stable replica list.
        self._configs[i] = dataclasses.replace(
            self._configs[i], port=handle.port
        )
        self._handles[i] = handle

    @property
    def addresses(self) -> List[Address]:
        """Replica addresses (stable across kill/restart)."""
        return [
            (config.host, config.port) for config in self._configs
        ]

    def handle(self, i: int) -> ServerThread:
        """The i-th replica's server thread (raises if killed)."""
        handle = self._handles[i]
        if handle is None:
            raise RuntimeError(f"replica {i} is not running")
        return handle

    def alive(self, i: int) -> bool:
        """Whether replica ``i`` is currently running."""
        handle = self._handles[i]
        return handle is not None and handle._thread is not None \
            and handle._thread.is_alive()

    # ------------------------------------------------------------------
    # fleet operations
    # ------------------------------------------------------------------
    def kill(self, i: int) -> None:
        """Abruptly kill replica ``i`` (no drain — chaos semantics)."""
        handle = self._handles[i]
        if handle is not None:
            handle.kill()
            self._handles[i] = None
            logger.info("killed replica %d", i)

    def restart(self, i: int) -> None:
        """Restart a killed replica on its original port, current index."""
        if self._handles[i] is not None:
            raise RuntimeError(f"replica {i} is still running")
        self._start_replica(i)
        logger.info("restarted replica %d on port %d",
                    i, self._configs[i].port)

    def client(self, **kwargs: Any) -> ClusterClient:
        """A :class:`ClusterClient` over this cluster's addresses."""
        return ClusterClient(self.addresses, **kwargs)

    def generations(self) -> List[Optional[int]]:
        """Per-replica generation (``None`` for killed replicas)."""
        return [
            handle.server.generation if handle is not None else None
            for handle in self._handles
        ]

    # ------------------------------------------------------------------
    # rolling swap
    # ------------------------------------------------------------------
    def rolling_swap(
        self,
        target: Union[Summarization, CompiledSummaryIndex, str],
        drain_seconds: float = 0.0,
        verify: Optional[Callable[[int, ServerThread], bool]] = None,
    ) -> SwapReport:
        """Roll a new summary across the replica set, one replica at a
        time, with verification and automatic rollback.

        ``target`` may be a summary file path — corruption is caught at
        load time (checksummed readers), before any replica is touched.
        Each replica is held in degraded mode while it swaps (cached
        answers flow, stale ones flagged), then verified (``verify``
        callback, or a live ``ping`` showing the advanced generation).
        Any failure rolls every already-swapped replica back to the
        previous index; the fleet never ends up split across summaries.
        """
        try:
            if isinstance(target, str):
                index = _load_index(target)
            elif isinstance(target, CompiledSummaryIndex):
                index = target
            else:
                index = CompiledSummaryIndex(target)
        except (OSError, ValueError) as exc:
            logger.warning("rolling swap rejected at load: %s", exc)
            return SwapReport(
                ok=False, generations=self._live_generations(),
                error=f"load failed: {exc}",
            )
        previous = self._index
        swapped: List[int] = []
        for i, handle in enumerate(self._handles):
            if handle is None:
                continue            # killed replicas pick the index up
                                    # on restart (self._index below)
            server = handle.server
            server.set_degraded(True)
            try:
                server.swap(index)
                if drain_seconds > 0:
                    time.sleep(drain_seconds)
                ok = (
                    verify(i, handle) if verify is not None
                    else self._verify_replica(i)
                )
                if not ok:
                    raise RuntimeError(
                        f"replica {i} failed post-swap verification"
                    )
                swapped.append(i)
            except Exception as exc:  # noqa: BLE001 - roll back on anything
                server.set_degraded(False)
                self._rollback(swapped + [i], previous)
                logger.warning(
                    "rolling swap aborted at replica %d (%s); "
                    "rolled back %d replica(s)", i, exc, len(swapped) + 1,
                )
                return SwapReport(
                    ok=False, generations=self._live_generations(),
                    swapped=[], rolled_back=True, error=str(exc),
                )
            finally:
                if server.degraded:
                    server.set_degraded(False)
        self._previous_index = previous
        self._index = index
        return SwapReport(
            ok=True, generations=self._live_generations(), swapped=swapped,
        )

    def rollback(self) -> SwapReport:
        """Re-roll the previous index across the fleet (post-swap regret)."""
        if self._previous_index is None:
            return SwapReport(
                ok=False, generations=self._live_generations(),
                error="nothing to roll back to",
            )
        return self.rolling_swap(self._previous_index)

    def _rollback(
        self, indices: Sequence[int], previous: CompiledSummaryIndex
    ) -> None:
        for i in indices:
            handle = self._handles[i]
            if handle is not None:
                handle.server.swap(previous)

    def _live_generations(self) -> List[int]:
        return [
            handle.server.generation
            for handle in self._handles if handle is not None
        ]

    def _verify_replica(self, i: int) -> bool:
        """Default post-swap check: a live ping answering sanely."""
        host, port = self.addresses[i]
        probe = SummaryClient(host, port, timeout=2.0, retries=0)
        try:
            health = probe.ping()
            return bool(health.get("pong"))
        except Exception:  # noqa: BLE001 - any failure fails verification
            return False
        finally:
            probe.close()

    # ------------------------------------------------------------------
    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully stop every live replica."""
        for i, handle in enumerate(self._handles):
            if handle is not None:
                try:
                    handle.stop(timeout=timeout)
                except RuntimeError:
                    logger.warning("replica %d did not stop cleanly", i)
                self._handles[i] = None
        self._started = False

    def __enter__(self) -> "SummaryCluster":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
