"""Serving metrics: counters, gauges, and percentile histograms.

A deliberately small registry in the Prometheus spirit — counters only go
up, gauges are set, histograms keep a bounded reservoir from which
percentiles are computed on snapshot. Everything is thread-safe because
observations come from both the event loop and the batch-executor thread.

The server exposes :meth:`MetricsRegistry.snapshot` through the ``stats``
request and prints :meth:`MetricsRegistry.format_line` periodically.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["Histogram", "MetricsRegistry"]


class Histogram:
    """Bounded-reservoir histogram with exact count/sum.

    Keeps the most recent ``capacity`` observations (a ring buffer), which
    is the standard trade-off for sliding-window latency percentiles: old
    samples age out instead of dominating forever.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._ring: List[float] = []
        self._next = 0
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if len(self._ring) < self._capacity:
            self._ring.append(value)
        else:
            self._ring[self._next] = value
            self._next = (self._next + 1) % self._capacity

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile over the reservoir (``q`` in [0, 100])."""
        if not self._ring:
            return None
        ordered = sorted(self._ring)
        rank = max(0, min(len(ordered) - 1,
                          int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def summary(self) -> Dict[str, Any]:
        """count/mean/p50/p95/p99/max over the current reservoir."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.total / self.count,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": max(self._ring) if self._ring else None,
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` (created at zero on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    # ------------------------------------------------------------------
    @property
    def uptime_seconds(self) -> float:
        """Seconds since the registry was created."""
        return time.monotonic() - self._started

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable dump of every metric."""
        with self._lock:
            return {
                "uptime_seconds": self.uptime_seconds,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: hist.summary()
                    for name, hist in self._histograms.items()
                },
            }

    def format_line(self) -> str:
        """One human-readable log line (the periodic server heartbeat)."""
        snap = self.snapshot()
        uptime = max(snap["uptime_seconds"], 1e-9)
        requests = snap["counters"].get("requests_total", 0)
        parts = [
            f"uptime={uptime:.0f}s",
            f"requests={requests}",
            f"qps={requests / uptime:.1f}",
        ]
        latency = snap["histograms"].get("request_latency_seconds")
        if latency and latency.get("count"):
            parts.append(
                "latency_ms p50={:.2f} p95={:.2f} p99={:.2f}".format(
                    latency["p50"] * 1e3,
                    latency["p95"] * 1e3,
                    latency["p99"] * 1e3,
                )
            )
        batch = snap["histograms"].get("batch_size")
        if batch and batch.get("count"):
            parts.append(f"batch_mean={batch['mean']:.1f}")
        for name in ("cache_hit_rate", "queue_depth", "inflight"):
            if name in snap["gauges"]:
                value = snap["gauges"][name]
                parts.append(
                    f"{name}={value:.2f}"
                    if isinstance(value, float) and name == "cache_hit_rate"
                    else f"{name}={value:g}"
                )
        errors = sum(
            count for name, count in snap["counters"].items()
            if name.startswith("errors_")
        )
        parts.append(f"errors={errors}")
        return "serve " + " ".join(parts)
