"""Serving metrics — re-exported from the unified observability registry.

Historically this module owned its own ``Histogram`` and
``MetricsRegistry`` while the pipeline used a separate ``PhaseTimer``;
the duplicated implementations now live once in
:mod:`repro.obs.metrics`, which adds labels and the Prometheus text
exporter behind the server's ``metrics`` op and optional HTTP scrape
endpoint. This shim keeps the long-standing import path
(``repro.serve.metrics``) working: the classes here *are* the unified
ones (identity, not copies), so isinstance checks and monkeypatching
hit the single implementation.
"""

from __future__ import annotations

from ..obs.metrics import Histogram, MetricsRegistry

__all__ = ["Histogram", "MetricsRegistry"]
