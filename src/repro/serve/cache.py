"""Bounded LRU result cache with hit/miss accounting.

Keys are the canonical query keys produced by the batch executor
(``("neighbors", v)``, ``("edge", u, v)`` with ``u < v``, ``("bfs", s)``);
``degree`` shares the ``neighbors`` entry, so a degree query warms the
cache for a later neighborhood query and vice versa.

The cache is thread-safe: the asyncio control plane reads stats while the
batch executor thread populates entries. Hot-swapping the index calls
:meth:`LRUCache.clear`, which also bumps a generation counter surfaced in
``stats`` so operators can see invalidations.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

__all__ = ["LRUCache"]

_MISS = object()


class LRUCache:
    """A size-bounded least-recently-used mapping.

    Parameters
    ----------
    max_entries:
        Upper bound on resident entries; ``0`` disables caching entirely
        (every lookup is a miss, nothing is stored).
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        self._max = max_entries
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._generation = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a hit refreshes the entry's recency."""
        with self._lock:
            value = self._data.get(key, _MISS)
            if value is _MISS:
                self._misses += 1
                return False, None
            self._data.move_to_end(key)
            self._hits += 1
            return True, value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh an entry, evicting the oldest past the bound."""
        if self._max == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self._max:
                self._data.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (used on hot-swap); counts a generation."""
        with self._lock:
            self._data.clear()
            self._generation += 1

    def snapshot_items(self) -> Dict[Hashable, Any]:
        """Shallow copy of the resident entries (degraded-mode snapshot).

        Taken by the server just before a hot-swap clears the cache, so
        degraded mode can keep answering from the previous generation's
        results while flagging them stale.
        """
        with self._lock:
            return dict(self._data)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def max_entries(self) -> int:
        """Configured capacity."""
        return self._max

    @property
    def hit_rate(self) -> Optional[float]:
        """Hits over lookups, or ``None`` before the first lookup."""
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else None

    def stats(self) -> Dict[str, Any]:
        """Snapshot of counters for the metrics registry."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "entries": len(self._data),
                "max_entries": self._max,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": self._hits / total if total else None,
                "generation": self._generation,
            }
