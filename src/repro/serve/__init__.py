"""Query-serving layer over graph summaries.

The production-facing half of the reproduction: an asyncio TCP server
(:class:`SummaryServer`) that answers neighborhood / degree /
edge-membership / BFS queries from a compiled summary index with request
batching, an LRU result cache, admission control, per-request timeouts,
priority-aware load shedding, deadline propagation, a degraded mode that
serves flagged stale answers under stress, atomic hot-swap of the live
summary, and a metrics registry — plus a blocking :class:`SummaryClient`
with retry/backoff, a replicated-serving layer
(:class:`SummaryCluster` / :class:`ClusterClient` with per-replica
circuit breakers, health checks, hedged reads, and a global retry
budget — shard-aware: shards × replicas topologies route single-node
ops by hash ring and scatter-gather multi-shard ops with
partial-result envelopes), and a thread-based load generator
(:func:`run_load`).

See ``docs/serving.md`` for the wire protocol and operational semantics.
"""

from .batching import execute_batch
from .breaker import (
    BreakerOpenError,
    CircuitBreaker,
    RetryBudget,
    failure_trips_breaker,
)
from .cache import LRUCache
from .client import ServerError, SummaryClient
from .cluster import (
    ClusterClient,
    ClusterHealthChecker,
    PartialResult,
    PartialResultError,
    SummaryCluster,
    SwapReport,
)
from .loadgen import (
    ANALYTICS_MIX,
    DEFAULT_MIX,
    ChaosConfig,
    LoadReport,
    run_load,
    with_analytics,
)
from .metrics import Histogram, MetricsRegistry
from .protocol import ErrorCode, ProtocolError, RequestError
from .server import ServerConfig, ServerThread, SummaryServer

__all__ = [
    "SummaryServer",
    "ServerConfig",
    "ServerThread",
    "SummaryClient",
    "ServerError",
    "SummaryCluster",
    "ClusterClient",
    "ClusterHealthChecker",
    "PartialResult",
    "PartialResultError",
    "SwapReport",
    "CircuitBreaker",
    "RetryBudget",
    "BreakerOpenError",
    "failure_trips_breaker",
    "LRUCache",
    "MetricsRegistry",
    "Histogram",
    "ErrorCode",
    "ProtocolError",
    "RequestError",
    "execute_batch",
    "LoadReport",
    "run_load",
    "DEFAULT_MIX",
    "ANALYTICS_MIX",
    "with_analytics",
    "ChaosConfig",
]
