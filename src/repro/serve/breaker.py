"""Circuit breakers and retry budgets for the replicated serving layer.

Two small, deterministic state machines that :class:`~repro.serve.cluster.
ClusterClient` composes into production failover semantics:

* :class:`CircuitBreaker` — per-replica closed / open / half-open
  breaker. Consecutive failures trip it open; after ``recovery_time``
  it admits a bounded number of half-open probes, and one success
  closes it again. The clock is injectable so tests drive the state
  machine with a fake monotonic counter instead of sleeping.
* :class:`RetryBudget` — a token bucket that caps cluster-wide retries
  as a *fraction of live traffic* (the classic anti-retry-storm
  budget): every first attempt deposits ``ratio`` tokens, every retry
  withdraws one, and when the bucket is empty retries fail fast
  instead of amplifying an outage.

Which server error codes count as breaker failures is a single shared
predicate, :func:`failure_trips_breaker`, kept deliberately equal to
:attr:`repro.serve.protocol.ErrorCode.RETRYABLE` — a failure a client
may retry is exactly a failure that should count against the replica;
a ``bad_request`` or ``out_of_range`` answer is proof the replica is
healthy. ``tests/serve/test_client_retry.py`` pins this equivalence
code-by-code.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from .protocol import ErrorCode

__all__ = [
    "BreakerOpenError",
    "CircuitBreaker",
    "RetryBudget",
    "failure_trips_breaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
]

#: Breaker states (string-valued for readable metrics/labels).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric encoding for gauges: closed=0, half_open=1, open=2.
STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class BreakerOpenError(ConnectionError):
    """Raised when every candidate replica's breaker refuses the call."""


def failure_trips_breaker(code: Optional[str]) -> bool:
    """Whether a server error ``code`` counts against a replica's breaker.

    ``None`` means a transport fault (refused/reset/truncated) — always a
    breaker failure. Typed server errors count exactly when they are
    retryable: a replica that *answered* with ``bad_request`` or
    ``out_of_range`` is alive and healthy; one that answered
    ``overloaded``/``timeout``/``shutting_down`` is in trouble.
    """
    return code is None or code in ErrorCode.RETRYABLE


class CircuitBreaker:
    """A closed / open / half-open circuit breaker for one replica.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    recovery_time:
        Seconds the breaker stays open before admitting probes.
    half_open_max:
        Concurrent probe calls admitted while half-open.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_time: float = 1.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if recovery_time <= 0:
            raise ValueError("recovery_time must be positive")
        if half_open_max < 1:
            raise ValueError("half_open_max must be at least 1")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_max = half_open_max
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        # lifetime accounting (drives metrics)
        self.trips = 0
        self.failures_total = 0
        self.successes_total = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing ``open -> half_open`` when due."""
        with self._lock:
            self._advance_locked()
            return self._state

    def _advance_locked(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_time
        ):
            self._state = HALF_OPEN
            self._probes_in_flight = 0

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether a call may be sent to this replica right now.

        While half-open, at most ``half_open_max`` probes are admitted
        concurrently; each admission must be answered with
        :meth:`record_success` or :meth:`record_failure`.
        """
        with self._lock:
            self._advance_locked()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                return False
            if self._probes_in_flight < self.half_open_max:
                self._probes_in_flight += 1
                return True
            return False

    def release(self) -> None:
        """Return a half-open probe slot that was admitted but never used.

        Callers that :meth:`allow` a probe and then decide not to send it
        (retry budget denied, say) must release the slot — otherwise the
        replica would stay half-open with its only probe slot leaked and
        never be retried.
        """
        with self._lock:
            if self._state == HALF_OPEN and self._probes_in_flight > 0:
                self._probes_in_flight -= 1

    def record_success(self) -> None:
        """A call to the replica succeeded (or failed non-retryably).

        Any success closes the breaker: the replica demonstrably
        answered, so there is nothing left to protect against.
        """
        with self._lock:
            self.successes_total += 1
            self._consecutive_failures = 0
            self._state = CLOSED
            self._probes_in_flight = 0
            self._opened_at = None

    def record_failure(self) -> None:
        """A call to the replica failed retryably (or at the transport)."""
        with self._lock:
            self.failures_total += 1
            self._consecutive_failures += 1
            if self._state == HALF_OPEN or (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self._probes_in_flight = 0
                self.trips += 1

    def record_outcome(self, code: Optional[str]) -> None:
        """Classify a typed server error (``None`` = transport fault)."""
        if failure_trips_breaker(code):
            self.record_failure()
        else:
            self.record_success()

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """State + lifetime counters (for stats/metrics surfaces)."""
        with self._lock:
            self._advance_locked()
            return {
                "state": self._state,
                "state_code": STATE_GAUGE[self._state],
                "consecutive_failures": self._consecutive_failures,
                "failures_total": self.failures_total,
                "successes_total": self.successes_total,
                "trips": self.trips,
            }


class RetryBudget:
    """Token bucket bounding retries to a fraction of live traffic.

    Every first attempt deposits ``ratio`` tokens (capped at
    ``max_tokens``); every retry withdraws one whole token. When the
    bucket cannot cover a withdrawal the retry is denied and the caller
    fails fast — so even a total outage generates at most
    ``1 + ratio`` attempts per request on average, instead of
    ``1 + retries``.

    The bucket starts at ``initial`` tokens so isolated early failures
    (before much traffic has accrued budget) can still retry.
    """

    def __init__(
        self,
        ratio: float = 0.2,
        max_tokens: float = 64.0,
        initial: float = 8.0,
    ) -> None:
        if ratio < 0:
            raise ValueError("ratio must be non-negative")
        if max_tokens <= 0:
            raise ValueError("max_tokens must be positive")
        self.ratio = ratio
        self.max_tokens = max_tokens
        self._lock = threading.Lock()
        self._tokens = min(float(initial), float(max_tokens))
        self.denied_total = 0
        self.spent_total = 0

    @property
    def tokens(self) -> float:
        """Current balance (for tests and stats)."""
        with self._lock:
            return self._tokens

    def deposit(self) -> None:
        """Account one first attempt (accrues ``ratio`` tokens)."""
        with self._lock:
            self._tokens = min(self.max_tokens, self._tokens + self.ratio)

    def try_spend(self) -> bool:
        """Withdraw one token for a retry; ``False`` denies the retry."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.spent_total += 1
                return True
            self.denied_total += 1
            return False
