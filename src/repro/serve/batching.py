"""Batch execution of coalesced queries against a compiled index.

The server collects requests that arrive within one batching window and
hands them to :func:`execute_batch` as a single list. The executor:

* answers what it can from the :class:`~repro.serve.cache.LRUCache`
  (``degree`` and ``neighbors`` share one cache entry);
* runs the remaining neighborhood expansions through
  :meth:`~repro.queries.compiled.CompiledSummaryIndex.neighbors_batch`,
  one vectorized pass that deduplicates repeated nodes and shares
  supernode expansions across the batch;
* resolves edge-membership and BFS queries individually (both are cached);
* returns one outcome per query — a failure (an out-of-range node, say)
  is per-item and never poisons the rest of the batch.

This module is asyncio-free on purpose: the server calls it from a worker
thread, and tests drive it synchronously.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..queries.summary_analytics import (
    ANALYTICS_OPS,
    PAGERANK_DEFAULTS,
    execute_analytics,
)
from .cache import LRUCache
from .metrics import MetricsRegistry
from .protocol import ErrorCode

__all__ = ["Outcome", "execute_batch", "cache_key", "from_cached"]

#: ``("ok", result)`` or ``("error", code, message)`` per query.
Outcome = Tuple[Any, ...]

Query = Tuple[str, Dict[str, Any]]


def cache_key(op: str, args: Dict[str, Any]) -> Optional[Tuple[Any, ...]]:
    """Canonical cache key for a query, or ``None`` for uncacheable ops.

    Shared by the batch executor (population) and the server's degraded
    mode (stale lookup) so both agree on aliasing: ``degree`` reads the
    ``neighbors`` entry, ``has_edge`` is symmetric in ``(u, v)``.
    """
    if op in ("neighbors", "degree"):
        return ("neighbors", args["v"])
    if op == "has_edge":
        u, v = args["u"], args["v"]
        return ("edge", min(u, v), max(u, v))
    if op == "bfs":
        return ("bfs", args["source"])
    if op == "analytics.degree":
        return ("analytics.degree", args["v"])
    if op == "analytics.pagerank":
        # Canonicalize so explicit defaults alias the bare request.
        return (
            "analytics.pagerank",
            float(args.get("damping", PAGERANK_DEFAULTS[0])),
            int(args.get("max_iterations", PAGERANK_DEFAULTS[1])),
            float(args.get("tolerance", PAGERANK_DEFAULTS[2])),
            None if args.get("top") is None else int(args["top"]),
        )
    if op in ("analytics.degree_hist", "analytics.triangles",
              "analytics.modularity", "analytics.slice"):
        return (op,)
    return None


def from_cached(op: str, value: Any) -> Any:
    """Project a cached value onto a query result (``degree`` = len)."""
    return len(value) if op == "degree" else value


def _ok(result: Any) -> Outcome:
    return ("ok", result)


def _err(code: str, message: str) -> Outcome:
    return ("error", code, message)


def _out_of_range(v: Any) -> Outcome:
    return _err(ErrorCode.OUT_OF_RANGE, f"node {v} out of range")


def execute_batch(
    index: Any,
    cache: LRUCache,
    metrics: MetricsRegistry,
    queries: Sequence[Query],
) -> List[Outcome]:
    """Execute ``queries`` as one pass; returns one outcome per query."""
    results: List[Outcome] = [None] * len(queries)  # type: ignore[list-item]
    num_nodes = index.num_nodes

    # Pass 1: serve cache hits, classify misses.
    neighbor_slots: List[Tuple[int, int]] = []   # (query position, node)
    for pos, (op, args) in enumerate(queries):
        metrics.inc(f"queries_{op}_total")
        if op in ("neighbors", "degree"):
            v = args["v"]
            if not 0 <= v < num_nodes:
                results[pos] = _out_of_range(v)
                continue
            hit, value = cache.get(("neighbors", v))
            if hit:
                results[pos] = _ok(len(value) if op == "degree" else value)
            else:
                neighbor_slots.append((pos, v))
        elif op == "has_edge":
            u, v = args["u"], args["v"]
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                results[pos] = _out_of_range(u if not 0 <= u < num_nodes
                                             else v)
                continue
            key = ("edge", min(u, v), max(u, v))
            hit, value = cache.get(key)
            if not hit:
                value = bool(index.has_edge(u, v))
                cache.put(key, value)
            results[pos] = _ok(value)
        elif op == "bfs":
            source = args["source"]
            if not 0 <= source < num_nodes:
                results[pos] = _out_of_range(source)
                continue
            hit, value = cache.get(("bfs", source))
            if not hit:
                distances = index.bfs_distances(source)
                value = sorted(distances.items())
                cache.put(("bfs", source), value)
            results[pos] = _ok(value)
        elif op in ANALYTICS_OPS:
            key = cache_key(op, args)
            hit, value = cache.get(key)
            if not hit:
                started = time.perf_counter()
                try:
                    value = execute_analytics(index, op, args)
                except IndexError as exc:
                    results[pos] = _err(ErrorCode.OUT_OF_RANGE, str(exc))
                    continue
                except (KeyError, TypeError, ValueError) as exc:
                    results[pos] = _err(ErrorCode.BAD_REQUEST, str(exc))
                    continue
                metrics.observe(
                    "analytics_op_seconds",
                    time.perf_counter() - started,
                    labels={"op": op},
                )
                cache.put(key, value)
            results[pos] = _ok(value)
        else:  # pragma: no cover - validated before enqueue
            results[pos] = _err(ErrorCode.INTERNAL, f"unbatchable op {op!r}")

    # Pass 2: one vectorized expansion for every uncached neighborhood.
    if neighbor_slots:
        unique = sorted({v for _, v in neighbor_slots})
        lists = index.neighbors_batch(np.asarray(unique, dtype=np.int64))
        by_node = dict(zip(unique, lists))
        for v, neigh in by_node.items():
            cache.put(("neighbors", v), neigh)
        for pos, v in neighbor_slots:
            op = queries[pos][0]
            neigh = by_node[v]
            results[pos] = _ok(len(neigh) if op == "degree" else neigh)
        metrics.inc("neighbor_expansions_total", len(unique))

    metrics.inc("batches_total")
    metrics.inc("batched_queries_total", len(queries))
    metrics.observe("batch_size", len(queries))
    hit_rate = cache.hit_rate
    if hit_rate is not None:
        metrics.set_gauge("cache_hit_rate", hit_rate)
    return results
