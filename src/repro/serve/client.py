"""Blocking client for the summary query server.

:class:`SummaryClient` speaks the length-prefixed JSON protocol over a
plain TCP socket — no asyncio required on the caller's side, so it works
from scripts, notebooks, and thread-based load generators.

Robustness: transport failures (refused/reset connections, truncated
frames, socket timeouts) and *retryable* server errors (``overloaded``,
``timeout``) are retried with exponential backoff up to ``retries``
times; the connection is re-established after any transport fault.
Non-retryable server errors surface immediately as :class:`ServerError`
with the typed code from the wire.

:meth:`SummaryClient.neighbors_many` pipelines many requests on one
connection before reading any response — the natural way to feed the
server's batching window from a single client.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Dict, Iterable, List, Optional

from .protocol import (
    MAX_FRAME_BYTES,
    ErrorCode,
    ProtocolError,
    recv_frame,
    send_frame,
)

__all__ = ["ServerError", "SummaryClient"]


class ServerError(RuntimeError):
    """A typed error response from the server."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code

    @property
    def retryable(self) -> bool:
        """Whether a client may retry this failure with backoff."""
        return self.code in ErrorCode.RETRYABLE


class SummaryClient:
    """Blocking TCP client with retry/backoff.

    Parameters
    ----------
    host / port:
        Server address.
    timeout:
        Socket timeout per send/receive (seconds).
    retries:
        Additional attempts after the first failure.
    backoff:
        Backoff *cap base*: a retry sleeps a uniform random duration in
        ``[0, backoff * 2**attempt]`` (full jitter). Deterministic
        exponential backoff synchronizes retry storms — every client that
        failed together retries together; the jitter decorrelates them.
    rng:
        Randomness source for the jitter (injectable for deterministic
        tests). Defaults to a private :class:`random.Random`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7421,
        timeout: float = 10.0,
        retries: int = 3,
        backoff: float = 0.05,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_frame_bytes = max_frame_bytes
        self._rng = rng if rng is not None else random.Random()
        self._sock: Optional[socket.socket] = None
        self._next_id = 0
        self.retries_used = 0   # total retry sleeps taken (for tests/stats)
        self.stale_served = 0   # responses flagged stale (degraded mode)

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Open the connection now (otherwise opened lazily)."""
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock

    def close(self) -> None:
        """Close the connection (reopened automatically on next call)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "SummaryClient":
        self.connect()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _sleep_backoff(self, attempt: int) -> None:
        # Full jitter: uniform in [0, cap], cap doubling per attempt.
        self.retries_used += 1
        time.sleep(self._rng.uniform(0.0, self.backoff * (2 ** attempt)))

    def _roundtrip(self, requests: List[Dict[str, Any]]) -> List[Any]:
        """Send all requests, then collect all responses (id-matched)."""
        self.connect()
        for request in requests:
            send_frame(self._sock, request, self.max_frame_bytes)
        outstanding = {request["id"] for request in requests}
        results: Dict[int, Any] = {}
        while outstanding:
            response = recv_frame(self._sock, self.max_frame_bytes)
            if response is None:
                raise ProtocolError("server closed mid-conversation")
            rid = response.get("id")
            if rid not in outstanding:
                continue            # stale response from an abandoned call
            outstanding.discard(rid)
            results[rid] = response
        return [results[request["id"]] for request in requests]

    def _build_request(
        self,
        op: str,
        args: Optional[Dict[str, Any]],
        deadline_ms: Optional[float],
        priority: Optional[int],
    ) -> Dict[str, Any]:
        request: Dict[str, Any] = {
            "id": self._new_id(), "op": op, "args": args or {},
        }
        if deadline_ms is not None:
            request["deadline_ms"] = float(deadline_ms)
        if priority is not None:
            request["priority"] = int(priority)
        return request

    def _call(
        self,
        op: str,
        args: Optional[Dict[str, Any]] = None,
        *,
        deadline_ms: Optional[float] = None,
        priority: Optional[int] = None,
    ) -> Any:
        """One request/response with transport + retryable-error retries."""
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            request = self._build_request(op, args, deadline_ms, priority)
            try:
                response = self._roundtrip([request])[0]
            except (OSError, ProtocolError) as exc:
                self.close()
                last_error = exc
                if attempt < self.retries:
                    self._sleep_backoff(attempt)
                    continue
                raise ConnectionError(
                    f"{op} failed after {attempt + 1} attempts: {exc}"
                ) from exc
            if response.get("ok"):
                if response.get("stale"):
                    self.stale_served += 1
                return response.get("result")
            error = response.get("error") or {}
            server_error = ServerError(
                error.get("code", ErrorCode.INTERNAL),
                error.get("message", "unknown server error"),
            )
            if server_error.retryable and attempt < self.retries:
                last_error = server_error
                self._sleep_backoff(attempt)
                continue
            raise server_error
        raise ConnectionError(f"{op} failed: {last_error}")  # unreachable

    def call(
        self,
        op: str,
        args: Optional[Dict[str, Any]] = None,
        *,
        deadline_ms: Optional[float] = None,
        priority: Optional[int] = None,
    ) -> Any:
        """Issue one raw operation with optional deadline and priority.

        ``deadline_ms`` is the remaining time budget the server is told
        about (it rejects the query with ``deadline_exceeded`` instead of
        executing it once that budget is spent in its queue);
        ``priority`` feeds the server's load shedding (0 = critical,
        1 = normal, 2+ = best-effort, shed first).
        :class:`~repro.serve.cluster.ClusterClient` drives this method
        with ``retries=0`` and does its own failover.
        """
        return self._call(
            op, args, deadline_ms=deadline_ms, priority=priority
        )

    # ------------------------------------------------------------------
    # query API
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        """Cheap health probe: generation, queue depth, draining/degraded.

        Returns the server's health dict — light enough for a 1-second
        probe loop (``stats`` snapshots every metric; this does not). The
        dict is truthy, so ``if client.ping():`` still reads naturally;
        a legacy server answering the bare string ``"pong"`` is
        normalized to ``{"pong": True}``.
        """
        result = self._call("ping")
        if result == "pong":
            return {"pong": True}
        return result

    def stats(self) -> Dict[str, Any]:
        """Server stats: cache, metrics, generation, queue depth."""
        return self._call("stats")

    def metrics_text(self) -> str:
        """The server's metrics in Prometheus text exposition format."""
        return self._call("metrics")

    def neighbors(self, v: int) -> List[int]:
        """Sorted neighbour list of ``v``."""
        return self._call("neighbors", {"v": int(v)})

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        return self._call("degree", {"v": int(v)})

    def has_edge(self, u: int, v: int) -> bool:
        """Edge membership of ``(u, v)``."""
        return self._call("has_edge", {"u": int(u), "v": int(v)})

    def bfs(self, source: int) -> Dict[int, int]:
        """Hop distances from ``source`` (unreachable nodes absent)."""
        pairs = self._call("bfs", {"source": int(source)})
        return {int(node): int(dist) for node, dist in pairs}

    def reload(self, path: str) -> Dict[str, Any]:
        """Ask the server to hot-swap to the summary file at ``path``."""
        return self._call("reload", {"path": str(path)})

    def analytics(
        self,
        op: str,
        args: Optional[Dict[str, Any]] = None,
        *,
        deadline_ms: Optional[float] = None,
        priority: Optional[int] = None,
    ) -> Any:
        """Issue one summary-native analytics op (``"pagerank"`` and
        ``"analytics.pagerank"`` both work)."""
        if not op.startswith("analytics."):
            op = f"analytics.{op}"
        return self._call(
            op, args or {}, deadline_ms=deadline_ms, priority=priority
        )

    def neighbors_many(self, nodes: Iterable[int]) -> List[List[int]]:
        """Pipelined neighbour lists for many nodes.

        All requests are written before any response is read, letting the
        server coalesce them into one batch. Transport faults retry the
        whole pipeline; a per-node server error raises
        :class:`ServerError`.
        """
        nodes = [int(v) for v in nodes]
        if not nodes:
            return []
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            requests = [
                {"id": self._new_id(), "op": "neighbors", "args": {"v": v}}
                for v in nodes
            ]
            try:
                responses = self._roundtrip(requests)
            except (OSError, ProtocolError) as exc:
                self.close()
                last_error = exc
                if attempt < self.retries:
                    self._sleep_backoff(attempt)
                    continue
                raise ConnectionError(
                    f"pipeline failed after {attempt + 1} attempts: {exc}"
                ) from exc
            for response in responses:
                if not response.get("ok"):
                    error = response.get("error") or {}
                    raise ServerError(
                        error.get("code", ErrorCode.INTERNAL),
                        error.get("message", "unknown server error"),
                    )
                if response.get("stale"):
                    self.stale_served += 1
            return [response["result"] for response in responses]
        raise ConnectionError(f"pipeline failed: {last_error}")  # unreachable
