"""Wire protocol for the summary query server.

Frames are length-prefixed JSON: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON. Requests and responses are
plain objects so the protocol is trivially inspectable with ``nc`` plus
a JSON pretty-printer::

    request  = {"id": 7, "op": "neighbors", "args": {"v": 12}}
    response = {"id": 7, "ok": true, "result": [3, 5, 8]}
    error    = {"id": 7, "ok": false,
                "error": {"code": "out_of_range", "message": "..."}}

Responses may arrive out of request order (the server coalesces queries
into batches); clients match on ``id``. Both sides enforce a maximum
frame size so a corrupt length prefix cannot allocate unbounded memory.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "MAX_FRAME_BYTES",
    "ANALYTICS_OPS",
    "OPS",
    "ErrorCode",
    "ProtocolError",
    "RequestError",
    "encode_frame",
    "decode_body",
    "read_frame",
    "write_frame",
    "recv_frame",
    "send_frame",
    "validate_request",
    "request_meta",
    "ok_response",
    "error_response",
    "DEFAULT_PRIORITY",
    "MAX_PRIORITY",
]

#: Default ceiling on a single frame's body (requests and responses).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")

#: Summary-native analytics ops (batched, cached, metered like the
#: neighbour-style queries). ``analytics.slice`` ships the summary
#: aggregate for client-side sharded scatter-gather. Defined next to
#: the estimators so the wire surface and the executor cannot drift.
from ..queries.summary_analytics import ANALYTICS_OPS  # noqa: E402

#: Query operations the server understands.
#: ``stats``/``ping``/``reload``/``metrics``/``topology`` are
#: control-plane ops answered on the event loop; the rest go through the
#: batch executor. ``topology`` returns the cluster routing payload
#: (ring + shard addresses + epoch) installed at the last cutover, so a
#: client that sees a newer ``ring_epoch`` in a ``ping`` can refetch.
OPS = frozenset(
    {"neighbors", "degree", "has_edge", "bfs",
     "stats", "ping", "reload", "metrics", "topology"}
) | ANALYTICS_OPS


class ErrorCode:
    """Typed error codes carried in error responses."""

    BAD_REQUEST = "bad_request"        # malformed frame / unknown op / args
    OUT_OF_RANGE = "out_of_range"      # node id outside the graph
    OVERLOADED = "overloaded"          # admission control rejected (retryable)
    TIMEOUT = "timeout"                # server-side processing timeout
    DEADLINE_EXCEEDED = "deadline_exceeded"  # caller's deadline expired
    SHUTTING_DOWN = "shutting_down"    # server is draining
    FORBIDDEN = "forbidden"            # op disabled by server config
    INTERNAL = "internal"              # unexpected server-side failure
    WRONG_SHARD = "wrong_shard"        # routed by a stale ring epoch

    #: Codes a client may safely retry with backoff. ``shutting_down`` is
    #: retryable because in a replica set the retry lands elsewhere (and a
    #: lone server restarting will accept it shortly). ``deadline_exceeded``
    #: is not: the caller's deadline has passed, so a retry cannot help.
    #: ``wrong_shard`` is not blind-retryable either — the same stale
    #: route would fail again; :class:`~repro.serve.cluster.ClusterClient`
    #: handles it by refreshing its cached topology and re-routing once.
    RETRYABLE = frozenset({"overloaded", "timeout", "shutting_down"})


class ProtocolError(ValueError):
    """Raised on malformed frames (bad length, bad JSON, oversize)."""


class RequestError(ValueError):
    """A request-level failure that maps to a typed error response."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(obj: Any, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize ``obj`` to a length-prefixed JSON frame."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > max_bytes:
        raise ProtocolError(f"frame body {len(body)}B exceeds {max_bytes}B")
    return _LEN.pack(len(body)) + body


def decode_body(body: bytes) -> Any:
    """Parse a frame body; raises :class:`ProtocolError` on bad JSON."""
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc


async def read_frame(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[Any]:
    """Read one frame; returns ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-length-prefix") from exc
    (length,) = _LEN.unpack(header)
    if length > max_bytes:
        raise ProtocolError(f"frame length {length}B exceeds {max_bytes}B")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_body(body)


async def write_frame(
    writer: asyncio.StreamWriter, obj: Any,
    max_bytes: int = MAX_FRAME_BYTES,
) -> None:
    """Write one frame and drain the transport."""
    writer.write(encode_frame(obj, max_bytes))
    await writer.drain()


def send_frame(sock: socket.socket, obj: Any,
               max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Blocking counterpart of :func:`write_frame` for plain sockets."""
    sock.sendall(encode_frame(obj, max_bytes))


def recv_frame(sock: socket.socket,
               max_bytes: int = MAX_FRAME_BYTES) -> Optional[Any]:
    """Blocking counterpart of :func:`read_frame` for plain sockets."""
    header = _recv_exact(sock, _LEN.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > max_bytes:
        raise ProtocolError(f"frame length {length}B exceeds {max_bytes}B")
    body = _recv_exact(sock, length, allow_eof=False)
    return decode_body(body)


def _recv_exact(sock: socket.socket, count: int,
                allow_eof: bool) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# request / response shapes
# ----------------------------------------------------------------------
def _require_node(args: Dict[str, Any], key: str) -> int:
    value = args.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(
            ErrorCode.BAD_REQUEST, f"argument {key!r} must be an integer"
        )
    return value


def validate_request(obj: Any) -> Tuple[int, str, Dict[str, Any]]:
    """Check shape and types; returns ``(id, op, args)``.

    Raises :class:`RequestError` with ``bad_request`` on any violation so
    the caller can answer with a typed error instead of dropping the
    connection.
    """
    if not isinstance(obj, dict):
        raise RequestError(ErrorCode.BAD_REQUEST, "request must be an object")
    rid = obj.get("id")
    if isinstance(rid, bool) or not isinstance(rid, int):
        raise RequestError(ErrorCode.BAD_REQUEST, "request 'id' must be int")
    op = obj.get("op")
    if op not in OPS:
        raise RequestError(ErrorCode.BAD_REQUEST, f"unknown op {op!r}")
    args = obj.get("args", {})
    if not isinstance(args, dict):
        raise RequestError(ErrorCode.BAD_REQUEST, "'args' must be an object")
    if op in ("neighbors", "degree"):
        _require_node(args, "v")
    elif op == "has_edge":
        _require_node(args, "u")
        _require_node(args, "v")
    elif op == "bfs":
        _require_node(args, "source")
    elif op == "reload":
        if not isinstance(args.get("path"), str):
            raise RequestError(
                ErrorCode.BAD_REQUEST, "reload needs a string 'path'"
            )
    elif op == "analytics.degree":
        _require_node(args, "v")
    elif op == "analytics.pagerank":
        for key in ("damping", "tolerance"):
            value = args.get(key)
            if value is not None and (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
            ):
                raise RequestError(
                    ErrorCode.BAD_REQUEST,
                    f"argument {key!r} must be a number",
                )
        for key in ("max_iterations", "top"):
            value = args.get(key)
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, int)
            ):
                raise RequestError(
                    ErrorCode.BAD_REQUEST,
                    f"argument {key!r} must be an integer",
                )
    return rid, op, args


#: Priority carried by requests: 0 = critical (never shed), 1 = normal
#: (the default), 2+ = best-effort (shed first under overload).
DEFAULT_PRIORITY = 1
MAX_PRIORITY = 9


def request_meta(obj: Dict[str, Any]) -> Tuple[int, Optional[float]]:
    """Validate the optional ``priority`` / ``deadline_ms`` envelope fields.

    Returns ``(priority, deadline_ms)``. ``deadline_ms`` is the *remaining*
    time the client is still willing to wait, measured at send time —
    carrying a relative duration instead of an absolute timestamp keeps
    the field meaningful across unsynchronized clocks. ``None`` means the
    client did not set a deadline.
    """
    priority = obj.get("priority", DEFAULT_PRIORITY)
    if (
        isinstance(priority, bool)
        or not isinstance(priority, int)
        or not 0 <= priority <= MAX_PRIORITY
    ):
        raise RequestError(
            ErrorCode.BAD_REQUEST,
            f"'priority' must be an int in [0, {MAX_PRIORITY}]",
        )
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(
            deadline_ms, (int, float)
        ) or deadline_ms < 0:
            raise RequestError(
                ErrorCode.BAD_REQUEST,
                "'deadline_ms' must be a non-negative number",
            )
        deadline_ms = float(deadline_ms)
    return priority, deadline_ms


def ok_response(rid: int, result: Any, *, stale: bool = False) -> Dict[str, Any]:
    """Build a success response envelope.

    ``stale=True`` flags a degraded-mode answer served from the previous
    index generation's cache; clients must treat it as possibly outdated.
    """
    payload = {"id": rid, "ok": True, "result": result}
    if stale:
        payload["stale"] = True
    return payload


def error_response(rid: Optional[int], code: str,
                   message: str) -> Dict[str, Any]:
    """Build a typed error response envelope."""
    return {
        "id": rid,
        "ok": False,
        "error": {"code": code, "message": message},
    }
