"""Thread-based load generator for the query server.

Drives a mixed workload (neighbors / degree / has_edge / bfs) through
:class:`~repro.serve.client.SummaryClient` instances on worker threads
and reports throughput and client-side latency percentiles. Node
selection is skewed toward low ids (``v = ⌊n · u^skew⌋`` for uniform
``u``) so repeated traffic concentrates on hot nodes the way real
workloads do — which is also what makes the server's cache and
per-supernode batching earn their keep.

Used by the ``ldme serve-bench`` style benchmark in
``benchmarks/test_serve_load.py`` and handy from scripts::

    from repro.serve import run_load
    report = run_load("127.0.0.1", 7421, num_queries=5000, concurrency=8)
    print(report.format())
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .client import ServerError, SummaryClient

__all__ = [
    "LoadReport", "run_load", "DEFAULT_MIX", "ANALYTICS_MIX",
    "with_analytics", "ChaosConfig",
]

#: Default operation mix (weights, normalized internally).
DEFAULT_MIX: Dict[str, float] = {
    "neighbors": 0.55,
    "degree": 0.2,
    "has_edge": 0.2,
    "bfs": 0.05,
}

#: Relative weights *within* the analytics share of a mixed workload
#: (point lookups dominate, whole-graph estimators are rarer — they are
#: served from the cache after the first hit anyway).
ANALYTICS_MIX: Dict[str, float] = {
    "analytics.degree": 0.5,
    "analytics.degree_hist": 0.2,
    "analytics.pagerank": 0.15,
    "analytics.triangles": 0.1,
    "analytics.modularity": 0.05,
}


def with_analytics(
    mix: Optional[Dict[str, float]] = None, fraction: float = 0.25
) -> Dict[str, float]:
    """Blend ``fraction`` of analytics traffic into a query mix.

    The base mix keeps its internal proportions at weight ``1 −
    fraction``; :data:`ANALYTICS_MIX` fills the rest. ``fraction=0``
    returns the base mix unchanged.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("analytics fraction must be in [0, 1]")
    base = dict(mix or DEFAULT_MIX)
    if fraction == 0.0:
        return base
    base_total = sum(base.values())
    if base_total <= 0:
        raise ValueError("mix weights must sum to a positive value")
    blended = {
        op: weight * (1.0 - fraction) / base_total
        for op, weight in base.items()
    }
    for op, weight in ANALYTICS_MIX.items():
        blended[op] = blended.get(op, 0.0) + fraction * weight
    return blended


@dataclass(frozen=True)
class ChaosConfig:
    """Deterministic connection chaos for load runs (``--chaos``).

    Both knobs key off the per-worker query counter, so a chaos run is
    reproducible: the same faults hit the same query indices every time.

    drop_every:
        Every Nth query, the worker abruptly closes its connection first
        and lets the client transparently reconnect (exercises the
        reconnect path under load). 0 disables.
    junk_every:
        Every Nth query, a throwaway socket sends a garbage frame — an
        absurd length prefix followed by non-JSON — to verify the server
        drops that connection without disturbing well-behaved clients.
        0 disables.
    """

    drop_every: int = 0
    junk_every: int = 0

    def __post_init__(self) -> None:
        if self.drop_every < 0 or self.junk_every < 0:
            raise ValueError("chaos intervals must be non-negative")

    @property
    def enabled(self) -> bool:
        return bool(self.drop_every or self.junk_every)


#: Deliberately malformed wire bytes: huge length prefix + non-JSON body.
_JUNK_FRAME = b"\xff\xff\xff\xf0not-json-at-all"


def _send_junk(host: str, port: int, timeout: float) -> bool:
    """Fire one garbage frame at the server on a throwaway connection."""
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.sendall(_JUNK_FRAME)
            # Read whatever the server says (error frame or EOF) so the
            # teardown is observed, not raced.
            sock.settimeout(timeout)
            try:
                sock.recv(4096)
            except OSError:
                pass
        return True
    except OSError:
        return False


@dataclass
class LoadReport:
    """Aggregate result of one load-generation run."""

    num_queries: int
    errors: int
    retries: int
    elapsed_seconds: float
    concurrency: int
    op_counts: Dict[str, int] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list)
    chaos_drops: int = 0     # forced client reconnects
    chaos_junk: int = 0      # garbage frames delivered to the server
    stale: int = 0           # answers flagged stale (degraded serving)
    wrong: int = 0           # answers that failed ground-truth verification
    #: Per-phase outcome buckets when a ``phase_fn`` was supplied:
    #: ``{phase: {"queries": n, "errors": n, "wrong": n}}`` — the
    #: during-migration verification mode reads wrong/error counts per
    #: migration step out of this.
    phase_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def qps(self) -> float:
        """Completed queries per wall-clock second."""
        return self.num_queries / max(self.elapsed_seconds, 1e-9)

    def percentile(self, q: float) -> Optional[float]:
        """Client-observed latency percentile in milliseconds."""
        if not self.latencies_ms:
            return None
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def format(self) -> str:
        """One summary line for logs and benchmark output."""
        parts = [
            f"queries={self.num_queries}",
            f"concurrency={self.concurrency}",
            f"elapsed={self.elapsed_seconds:.2f}s",
            f"qps={self.qps:.0f}",
            f"errors={self.errors}",
            f"retries={self.retries}",
        ]
        if self.chaos_drops or self.chaos_junk:
            parts.append(
                f"chaos drops={self.chaos_drops} junk={self.chaos_junk}"
            )
        if self.stale:
            parts.append(f"stale={self.stale}")
        if self.wrong:
            parts.append(f"WRONG={self.wrong}")
        for phase in sorted(self.phase_counts):
            bucket = self.phase_counts[phase]
            parts.append(
                "phase[{}] q={} err={} wrong={}".format(
                    phase, bucket.get("queries", 0),
                    bucket.get("errors", 0), bucket.get("wrong", 0),
                )
            )
        if self.latencies_ms:
            parts.append(
                "latency_ms p50={:.2f} p95={:.2f} p99={:.2f}".format(
                    self.percentile(50),
                    self.percentile(95),
                    self.percentile(99),
                )
            )
        return "load " + " ".join(parts)


def _pick_node(rng: np.random.Generator, num_nodes: int,
               skew: float) -> int:
    return min(num_nodes - 1, int(num_nodes * rng.random() ** skew))


def _analytics_reference(truth: Any, key: str) -> Any:
    """Exact whole-graph references, computed once per truth index.

    Memoized on the truth object itself (immutable, shared across
    workers) so a chaos run pays for each exact baseline exactly once.
    Racing workers may compute the same value twice; both results are
    identical, so last-write-wins is harmless.
    """
    memo = getattr(truth, "_loadgen_analytics_memo", None)
    if memo is None:
        memo = {}
        truth._loadgen_analytics_memo = memo
    if key not in memo:
        from ..queries import analytics as exact

        if key == "degrees":
            snapshot = exact.adjacency_snapshot(truth)
            memo[key] = np.asarray(
                [len(s) for s in snapshot], dtype=np.int64
            )
        elif key == "hist":
            memo[key] = exact.degree_histogram(truth)
        elif key == "pagerank":
            memo[key] = exact.pagerank(truth)
        elif key == "triangles":
            memo[key] = exact.triangle_count(truth)
        elif key == "modularity":
            memo[key] = exact.modularity(truth, truth._node2dense)
    return memo[key]


def _verify_analytics(truth: Any, op: str, v: int, result: Any) -> bool:
    """Bound-aware check: the estimate must sit within its own declared
    bound of the exact ``queries.analytics`` answer on the truth index.

    For a lossless serving summary the degree/histogram bounds are 0.0,
    so this degrades to exact equality there.
    """
    value, bound = result["value"], float(result["bound"])
    if op == "analytics.degree":
        exact_deg = int(_analytics_reference(truth, "degrees")[v])
        return abs(float(value) - exact_deg) <= bound
    if op == "analytics.degree_hist":
        got = np.asarray(value, dtype=np.int64)
        want = _analytics_reference(truth, "hist")
        width = max(got.size, want.size)
        g = np.zeros(width, dtype=np.int64)
        g[:got.size] = got
        w = np.zeros(width, dtype=np.int64)
        w[:want.size] = want
        return float(np.abs(g - w).max()) <= bound
    if op == "analytics.pagerank":
        got = np.asarray(value, dtype=np.float64)
        want = _analytics_reference(truth, "pagerank")
        if got.shape != want.shape:
            return False
        return float(np.abs(got - want).sum()) <= bound
    if op == "analytics.triangles":
        want = _analytics_reference(truth, "triangles")
        return abs(float(value) - float(want)) <= bound
    if op == "analytics.modularity":
        want = _analytics_reference(truth, "modularity")
        return abs(float(value) - float(want)) <= bound
    return True


def _verify(truth: Any, op: str, v: int, u: int, result: Any) -> bool:
    """Check one answer against the compiled ground-truth index."""
    if op.startswith("analytics."):
        return _verify_analytics(truth, op, v, result)
    if op == "neighbors":
        expected = truth.neighbors_batch(np.asarray([v], dtype=np.int64))[0]
        return [int(x) for x in result] == [int(x) for x in expected]
    if op == "degree":
        expected = truth.neighbors_batch(np.asarray([v], dtype=np.int64))[0]
        return int(result) == len(expected)
    if op == "has_edge":
        return bool(result) == bool(truth.has_edge(v, u))
    if op == "bfs":
        expected = truth.bfs_distances(v)
        return {int(k): int(d) for k, d in result.items()} == {
            int(k): int(d) for k, d in expected.items()
        }
    return True


def run_load(
    host: str,
    port: int,
    num_queries: int = 1000,
    concurrency: int = 4,
    mix: Optional[Dict[str, float]] = None,
    seed: int = 0,
    skew: float = 2.0,
    client_timeout: float = 30.0,
    chaos: Optional[ChaosConfig] = None,
    client_factory: Optional[Callable[[], Any]] = None,
    truth: Optional[Any] = None,
    on_progress: Optional[Callable[[int], None]] = None,
    phase_fn: Optional[Callable[[], str]] = None,
) -> LoadReport:
    """Fire ``num_queries`` mixed queries from ``concurrency`` threads.

    With ``chaos`` set, workers deterministically drop their own
    connections and/or lob malformed frames at the server while the load
    runs (see :class:`ChaosConfig`) — queries must still all complete.

    ``client_factory`` substitutes the per-worker client — pass a closure
    returning a shared :class:`~repro.serve.cluster.ClusterClient` to
    drive a replica set (its connections are per-thread; its breakers and
    retry budget are deliberately shared). The object must expose the
    query methods plus ``close()``, ``stats()``, and the ``retries_used``
    / ``stale_served`` counters.

    ``truth`` (a :class:`~repro.queries.compiled.CompiledSummaryIndex`)
    verifies every successful answer against ground truth; mismatches are
    counted in :attr:`LoadReport.wrong` — the chaos suite asserts this
    stays zero while replicas are killed and swaps corrupted.

    ``on_progress`` is called from worker threads with the running count
    of attempted queries (successes and failures) — chaos tests use it to
    trigger faults at a deterministic point mid-run. Keep it cheap and
    thread-safe.

    ``phase_fn`` labels every query with the phase the system was in
    when it was *issued* (e.g. a migration coordinator's current journal
    step); outcomes are bucketed per phase in
    :attr:`LoadReport.phase_counts`, so the during-migration
    verification mode can assert "zero wrong answers in *every* phase"
    rather than only in aggregate. Must be cheap and thread-safe.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    if concurrency < 1:
        raise ValueError("concurrency must be positive")
    weights = dict(mix or DEFAULT_MIX)
    ops = sorted(weights)
    probs = np.asarray([max(0.0, weights[op]) for op in ops], dtype=float)
    if probs.sum() <= 0:
        raise ValueError("mix weights must sum to a positive value")
    probs /= probs.sum()

    def make_client() -> Any:
        if client_factory is not None:
            return client_factory()
        return SummaryClient(host, port, timeout=client_timeout)

    if truth is not None:
        num_nodes = int(truth.num_nodes)
    else:
        probe = make_client()
        try:
            num_nodes = int(probe.stats()["num_nodes"])
        finally:
            probe.close()
    if num_nodes <= 0:
        raise ValueError("server is serving an empty graph")

    per_worker = [num_queries // concurrency] * concurrency
    for i in range(num_queries % concurrency):
        per_worker[i] += 1

    lock = threading.Lock()
    latencies: List[float] = []
    op_counts: Dict[str, int] = {op: 0 for op in ops}
    errors = [0]
    retries = [0]
    chaos_drops = [0]
    chaos_junk = [0]
    wrong = [0]
    completed = [0]
    phase_counts: Dict[str, Dict[str, int]] = {}
    # Distinct client objects with their counter baselines: a shared
    # ClusterClient appears once, so retries/stale are counted once.
    client_registry: Dict[int, Any] = {}
    client_baselines: Dict[int, Dict[str, int]] = {}

    def register_client(client: Any) -> None:
        with lock:
            if id(client) not in client_registry:
                client_registry[id(client)] = client
                client_baselines[id(client)] = {
                    "retries": getattr(client, "retries_used", 0),
                    "stale": getattr(client, "stale_served", 0),
                }

    # The run span lives on this thread; workers parent their spans on it
    # explicitly (span stacks are thread-local, so a worker thread cannot
    # inherit the ambient parent).
    run_span = obs_trace.span(
        "load_run", key=f"{num_queries}/{concurrency}/{seed}",
        num_queries=num_queries, concurrency=concurrency, skew=skew,
    )

    def worker(worker_id: int, quota: int) -> None:
        rng = np.random.default_rng(seed + worker_id)
        client = make_client()
        register_client(client)
        local_lat: List[float] = []
        local_ops: Dict[str, int] = {op: 0 for op in ops}
        local_errors = 0
        local_drops = 0
        local_junk = 0
        local_wrong = 0
        local_phases: Dict[str, Dict[str, int]] = {}

        def phase_bucket() -> Optional[Dict[str, int]]:
            if phase_fn is None:
                return None
            phase = str(phase_fn())
            bucket = local_phases.get(phase)
            if bucket is None:
                bucket = local_phases[phase] = {
                    "queries": 0, "errors": 0, "wrong": 0,
                }
            return bucket
        worker_span = obs_trace.span(
            "load_worker", key=worker_id, parent=run_span, quota=quota,
        )
        worker_span.__enter__()
        try:
            for q in range(1, quota + 1):
                if chaos is not None and chaos.enabled:
                    if chaos.drop_every and q % chaos.drop_every == 0:
                        client.close()      # reconnects on the next call
                        local_drops += 1
                    if chaos.junk_every and q % chaos.junk_every == 0:
                        if _send_junk(host, port, client_timeout):
                            local_junk += 1
                op = ops[int(rng.choice(len(ops), p=probs))]
                v = _pick_node(rng, num_nodes, skew)
                u = _pick_node(rng, num_nodes, skew)
                bucket = phase_bucket()
                if bucket is not None:
                    bucket["queries"] += 1
                tic = time.perf_counter()
                try:
                    if op == "neighbors":
                        result = client.neighbors(v)
                    elif op == "degree":
                        result = client.degree(v)
                    elif op == "has_edge":
                        result = client.has_edge(v, u)
                    elif op == "analytics.degree":
                        result = client.analytics(op, {"v": v})
                    elif op.startswith("analytics."):
                        result = client.analytics(op, {})
                    else:
                        result = client.bfs(v)
                except (ServerError, ConnectionError):
                    local_errors += 1
                    if bucket is not None:
                        bucket["errors"] += 1
                    continue
                finally:
                    if on_progress is not None:
                        with lock:
                            completed[0] += 1
                            done_now = completed[0]
                        on_progress(done_now)
                local_lat.append((time.perf_counter() - tic) * 1e3)
                local_ops[op] += 1
                if truth is not None and not _verify(truth, op, v, u,
                                                     result):
                    local_wrong += 1
                    if bucket is not None:
                        bucket["wrong"] += 1
        finally:
            client.close()
            worker_span.set_attribute("errors", local_errors)
            worker_span.__exit__(None, None, None)
            with lock:
                latencies.extend(local_lat)
                errors[0] += local_errors
                chaos_drops[0] += local_drops
                chaos_junk[0] += local_junk
                wrong[0] += local_wrong
                for phase, bucket in local_phases.items():
                    merged = phase_counts.setdefault(
                        phase, {"queries": 0, "errors": 0, "wrong": 0}
                    )
                    for key, count in bucket.items():
                        merged[key] += count
                for op, count in local_ops.items():
                    op_counts[op] += count
                    if count:
                        obs_metrics.inc(
                            "loadgen_queries_total", count,
                            labels={"op": op},
                        )
                if local_errors:
                    obs_metrics.inc("loadgen_errors_total", local_errors)
                if local_wrong:
                    obs_metrics.inc("loadgen_wrong_total", local_wrong)

    threads = [
        threading.Thread(
            target=worker, args=(i, quota), name=f"loadgen-{i}", daemon=True
        )
        for i, quota in enumerate(per_worker)
    ]
    tic = time.perf_counter()
    run_span.__enter__()
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        elapsed = time.perf_counter() - tic
        # Counter deltas per *distinct* client object — a shared cluster
        # client contributes once, not once per worker.
        stale = [0]
        with lock:
            for cid, client in client_registry.items():
                baseline = client_baselines[cid]
                retries[0] += (
                    getattr(client, "retries_used", 0) - baseline["retries"]
                )
                stale[0] += (
                    getattr(client, "stale_served", 0) - baseline["stale"]
                )
        run_span.set_attribute("errors", errors[0])
        run_span.set_attribute("retries", retries[0])
        run_span.__exit__(None, None, None)

    return LoadReport(
        num_queries=num_queries,
        errors=errors[0],
        retries=retries[0],
        elapsed_seconds=elapsed,
        concurrency=concurrency,
        op_counts=op_counts,
        latencies_ms=latencies,
        chaos_drops=chaos_drops[0],
        chaos_junk=chaos_junk[0],
        stale=stale[0],
        wrong=wrong[0],
        phase_counts=phase_counts,
    )
