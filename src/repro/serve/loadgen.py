"""Thread-based load generator for the query server.

Drives a mixed workload (neighbors / degree / has_edge / bfs) through
:class:`~repro.serve.client.SummaryClient` instances on worker threads
and reports throughput and client-side latency percentiles. Node
selection is skewed toward low ids (``v = ⌊n · u^skew⌋`` for uniform
``u``) so repeated traffic concentrates on hot nodes the way real
workloads do — which is also what makes the server's cache and
per-supernode batching earn their keep.

Used by the ``ldme serve-bench`` style benchmark in
``benchmarks/test_serve_load.py`` and handy from scripts::

    from repro.serve import run_load
    report = run_load("127.0.0.1", 7421, num_queries=5000, concurrency=8)
    print(report.format())
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .client import ServerError, SummaryClient

__all__ = ["LoadReport", "run_load", "DEFAULT_MIX"]

#: Default operation mix (weights, normalized internally).
DEFAULT_MIX: Dict[str, float] = {
    "neighbors": 0.55,
    "degree": 0.2,
    "has_edge": 0.2,
    "bfs": 0.05,
}


@dataclass
class LoadReport:
    """Aggregate result of one load-generation run."""

    num_queries: int
    errors: int
    retries: int
    elapsed_seconds: float
    concurrency: int
    op_counts: Dict[str, int] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def qps(self) -> float:
        """Completed queries per wall-clock second."""
        return self.num_queries / max(self.elapsed_seconds, 1e-9)

    def percentile(self, q: float) -> Optional[float]:
        """Client-observed latency percentile in milliseconds."""
        if not self.latencies_ms:
            return None
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def format(self) -> str:
        """One summary line for logs and benchmark output."""
        parts = [
            f"queries={self.num_queries}",
            f"concurrency={self.concurrency}",
            f"elapsed={self.elapsed_seconds:.2f}s",
            f"qps={self.qps:.0f}",
            f"errors={self.errors}",
            f"retries={self.retries}",
        ]
        if self.latencies_ms:
            parts.append(
                "latency_ms p50={:.2f} p95={:.2f} p99={:.2f}".format(
                    self.percentile(50),
                    self.percentile(95),
                    self.percentile(99),
                )
            )
        return "load " + " ".join(parts)


def _pick_node(rng: np.random.Generator, num_nodes: int,
               skew: float) -> int:
    return min(num_nodes - 1, int(num_nodes * rng.random() ** skew))


def run_load(
    host: str,
    port: int,
    num_queries: int = 1000,
    concurrency: int = 4,
    mix: Optional[Dict[str, float]] = None,
    seed: int = 0,
    skew: float = 2.0,
    client_timeout: float = 30.0,
) -> LoadReport:
    """Fire ``num_queries`` mixed queries from ``concurrency`` threads."""
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    if concurrency < 1:
        raise ValueError("concurrency must be positive")
    weights = dict(mix or DEFAULT_MIX)
    ops = sorted(weights)
    probs = np.asarray([max(0.0, weights[op]) for op in ops], dtype=float)
    if probs.sum() <= 0:
        raise ValueError("mix weights must sum to a positive value")
    probs /= probs.sum()

    probe = SummaryClient(host, port, timeout=client_timeout)
    try:
        num_nodes = int(probe.stats()["num_nodes"])
    finally:
        probe.close()
    if num_nodes <= 0:
        raise ValueError("server is serving an empty graph")

    per_worker = [num_queries // concurrency] * concurrency
    for i in range(num_queries % concurrency):
        per_worker[i] += 1

    lock = threading.Lock()
    latencies: List[float] = []
    op_counts: Dict[str, int] = {op: 0 for op in ops}
    errors = [0]
    retries = [0]

    def worker(worker_id: int, quota: int) -> None:
        rng = np.random.default_rng(seed + worker_id)
        client = SummaryClient(host, port, timeout=client_timeout)
        local_lat: List[float] = []
        local_ops: Dict[str, int] = {op: 0 for op in ops}
        local_errors = 0
        try:
            for _ in range(quota):
                op = ops[int(rng.choice(len(ops), p=probs))]
                v = _pick_node(rng, num_nodes, skew)
                tic = time.perf_counter()
                try:
                    if op == "neighbors":
                        client.neighbors(v)
                    elif op == "degree":
                        client.degree(v)
                    elif op == "has_edge":
                        client.has_edge(v, _pick_node(rng, num_nodes, skew))
                    else:
                        client.bfs(v)
                except (ServerError, ConnectionError):
                    local_errors += 1
                    continue
                local_lat.append((time.perf_counter() - tic) * 1e3)
                local_ops[op] += 1
        finally:
            client.close()
            with lock:
                latencies.extend(local_lat)
                errors[0] += local_errors
                retries[0] += client.retries_used
                for op, count in local_ops.items():
                    op_counts[op] += count

    threads = [
        threading.Thread(
            target=worker, args=(i, quota), name=f"loadgen-{i}", daemon=True
        )
        for i, quota in enumerate(per_worker)
    ]
    tic = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - tic

    return LoadReport(
        num_queries=num_queries,
        errors=errors[0],
        retries=retries[0],
        elapsed_seconds=elapsed,
        concurrency=concurrency,
        op_counts=op_counts,
        latencies_ms=latencies,
    )
