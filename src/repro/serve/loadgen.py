"""Thread-based load generator for the query server.

Drives a mixed workload (neighbors / degree / has_edge / bfs) through
:class:`~repro.serve.client.SummaryClient` instances on worker threads
and reports throughput and client-side latency percentiles. Node
selection is skewed toward low ids (``v = ⌊n · u^skew⌋`` for uniform
``u``) so repeated traffic concentrates on hot nodes the way real
workloads do — which is also what makes the server's cache and
per-supernode batching earn their keep.

Used by the ``ldme serve-bench`` style benchmark in
``benchmarks/test_serve_load.py`` and handy from scripts::

    from repro.serve import run_load
    report = run_load("127.0.0.1", 7421, num_queries=5000, concurrency=8)
    print(report.format())
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .client import ServerError, SummaryClient

__all__ = ["LoadReport", "run_load", "DEFAULT_MIX", "ChaosConfig"]

#: Default operation mix (weights, normalized internally).
DEFAULT_MIX: Dict[str, float] = {
    "neighbors": 0.55,
    "degree": 0.2,
    "has_edge": 0.2,
    "bfs": 0.05,
}


@dataclass(frozen=True)
class ChaosConfig:
    """Deterministic connection chaos for load runs (``--chaos``).

    Both knobs key off the per-worker query counter, so a chaos run is
    reproducible: the same faults hit the same query indices every time.

    drop_every:
        Every Nth query, the worker abruptly closes its connection first
        and lets the client transparently reconnect (exercises the
        reconnect path under load). 0 disables.
    junk_every:
        Every Nth query, a throwaway socket sends a garbage frame — an
        absurd length prefix followed by non-JSON — to verify the server
        drops that connection without disturbing well-behaved clients.
        0 disables.
    """

    drop_every: int = 0
    junk_every: int = 0

    def __post_init__(self) -> None:
        if self.drop_every < 0 or self.junk_every < 0:
            raise ValueError("chaos intervals must be non-negative")

    @property
    def enabled(self) -> bool:
        return bool(self.drop_every or self.junk_every)


#: Deliberately malformed wire bytes: huge length prefix + non-JSON body.
_JUNK_FRAME = b"\xff\xff\xff\xf0not-json-at-all"


def _send_junk(host: str, port: int, timeout: float) -> bool:
    """Fire one garbage frame at the server on a throwaway connection."""
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.sendall(_JUNK_FRAME)
            # Read whatever the server says (error frame or EOF) so the
            # teardown is observed, not raced.
            sock.settimeout(timeout)
            try:
                sock.recv(4096)
            except OSError:
                pass
        return True
    except OSError:
        return False


@dataclass
class LoadReport:
    """Aggregate result of one load-generation run."""

    num_queries: int
    errors: int
    retries: int
    elapsed_seconds: float
    concurrency: int
    op_counts: Dict[str, int] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list)
    chaos_drops: int = 0     # forced client reconnects
    chaos_junk: int = 0      # garbage frames delivered to the server

    @property
    def qps(self) -> float:
        """Completed queries per wall-clock second."""
        return self.num_queries / max(self.elapsed_seconds, 1e-9)

    def percentile(self, q: float) -> Optional[float]:
        """Client-observed latency percentile in milliseconds."""
        if not self.latencies_ms:
            return None
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def format(self) -> str:
        """One summary line for logs and benchmark output."""
        parts = [
            f"queries={self.num_queries}",
            f"concurrency={self.concurrency}",
            f"elapsed={self.elapsed_seconds:.2f}s",
            f"qps={self.qps:.0f}",
            f"errors={self.errors}",
            f"retries={self.retries}",
        ]
        if self.chaos_drops or self.chaos_junk:
            parts.append(
                f"chaos drops={self.chaos_drops} junk={self.chaos_junk}"
            )
        if self.latencies_ms:
            parts.append(
                "latency_ms p50={:.2f} p95={:.2f} p99={:.2f}".format(
                    self.percentile(50),
                    self.percentile(95),
                    self.percentile(99),
                )
            )
        return "load " + " ".join(parts)


def _pick_node(rng: np.random.Generator, num_nodes: int,
               skew: float) -> int:
    return min(num_nodes - 1, int(num_nodes * rng.random() ** skew))


def run_load(
    host: str,
    port: int,
    num_queries: int = 1000,
    concurrency: int = 4,
    mix: Optional[Dict[str, float]] = None,
    seed: int = 0,
    skew: float = 2.0,
    client_timeout: float = 30.0,
    chaos: Optional[ChaosConfig] = None,
) -> LoadReport:
    """Fire ``num_queries`` mixed queries from ``concurrency`` threads.

    With ``chaos`` set, workers deterministically drop their own
    connections and/or lob malformed frames at the server while the load
    runs (see :class:`ChaosConfig`) — queries must still all complete.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    if concurrency < 1:
        raise ValueError("concurrency must be positive")
    weights = dict(mix or DEFAULT_MIX)
    ops = sorted(weights)
    probs = np.asarray([max(0.0, weights[op]) for op in ops], dtype=float)
    if probs.sum() <= 0:
        raise ValueError("mix weights must sum to a positive value")
    probs /= probs.sum()

    probe = SummaryClient(host, port, timeout=client_timeout)
    try:
        num_nodes = int(probe.stats()["num_nodes"])
    finally:
        probe.close()
    if num_nodes <= 0:
        raise ValueError("server is serving an empty graph")

    per_worker = [num_queries // concurrency] * concurrency
    for i in range(num_queries % concurrency):
        per_worker[i] += 1

    lock = threading.Lock()
    latencies: List[float] = []
    op_counts: Dict[str, int] = {op: 0 for op in ops}
    errors = [0]
    retries = [0]
    chaos_drops = [0]
    chaos_junk = [0]

    # The run span lives on this thread; workers parent their spans on it
    # explicitly (span stacks are thread-local, so a worker thread cannot
    # inherit the ambient parent).
    run_span = obs_trace.span(
        "load_run", key=f"{num_queries}/{concurrency}/{seed}",
        num_queries=num_queries, concurrency=concurrency, skew=skew,
    )

    def worker(worker_id: int, quota: int) -> None:
        rng = np.random.default_rng(seed + worker_id)
        client = SummaryClient(host, port, timeout=client_timeout)
        local_lat: List[float] = []
        local_ops: Dict[str, int] = {op: 0 for op in ops}
        local_errors = 0
        local_drops = 0
        local_junk = 0
        worker_span = obs_trace.span(
            "load_worker", key=worker_id, parent=run_span, quota=quota,
        )
        worker_span.__enter__()
        try:
            for q in range(1, quota + 1):
                if chaos is not None and chaos.enabled:
                    if chaos.drop_every and q % chaos.drop_every == 0:
                        client.close()      # reconnects on the next call
                        local_drops += 1
                    if chaos.junk_every and q % chaos.junk_every == 0:
                        if _send_junk(host, port, client_timeout):
                            local_junk += 1
                op = ops[int(rng.choice(len(ops), p=probs))]
                v = _pick_node(rng, num_nodes, skew)
                tic = time.perf_counter()
                try:
                    if op == "neighbors":
                        client.neighbors(v)
                    elif op == "degree":
                        client.degree(v)
                    elif op == "has_edge":
                        client.has_edge(v, _pick_node(rng, num_nodes, skew))
                    else:
                        client.bfs(v)
                except (ServerError, ConnectionError):
                    local_errors += 1
                    continue
                local_lat.append((time.perf_counter() - tic) * 1e3)
                local_ops[op] += 1
        finally:
            client.close()
            worker_span.set_attribute("errors", local_errors)
            worker_span.set_attribute("retries", client.retries_used)
            worker_span.__exit__(None, None, None)
            with lock:
                latencies.extend(local_lat)
                errors[0] += local_errors
                retries[0] += client.retries_used
                chaos_drops[0] += local_drops
                chaos_junk[0] += local_junk
                for op, count in local_ops.items():
                    op_counts[op] += count
                    if count:
                        obs_metrics.inc(
                            "loadgen_queries_total", count,
                            labels={"op": op},
                        )
                if local_errors:
                    obs_metrics.inc("loadgen_errors_total", local_errors)

    threads = [
        threading.Thread(
            target=worker, args=(i, quota), name=f"loadgen-{i}", daemon=True
        )
        for i, quota in enumerate(per_worker)
    ]
    tic = time.perf_counter()
    run_span.__enter__()
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        elapsed = time.perf_counter() - tic
        run_span.set_attribute("errors", errors[0])
        run_span.set_attribute("retries", retries[0])
        run_span.__exit__(None, None, None)

    return LoadReport(
        num_queries=num_queries,
        errors=errors[0],
        retries=retries[0],
        elapsed_seconds=elapsed,
        concurrency=concurrency,
        op_counts=op_counts,
        latencies_ms=latencies,
        chaos_drops=chaos_drops[0],
        chaos_junk=chaos_junk[0],
    )
