"""Asyncio TCP server answering summary queries.

:class:`SummaryServer` owns a :class:`CompiledSummaryIndex` and serves
``neighbors`` / ``degree`` / ``has_edge`` / ``bfs`` queries over the
length-prefixed JSON protocol in :mod:`repro.serve.protocol`. The design
is a miniature inference server:

* **Batching** — query requests land in a queue; a single batcher task
  sleeps ``batch_window`` seconds after the first arrival, then drains up
  to ``max_batch`` items and executes them as one vectorized pass in a
  worker thread (:func:`repro.serve.batching.execute_batch`). Responses
  return out of order; clients match on request id.
* **Caching** — results are memoized in an LRU bounded by
  ``cache_entries``; a hot-swap invalidates it atomically.
* **Admission control** — at most ``max_pending`` queries may be queued
  or executing; excess requests get an immediate ``overloaded`` error so
  clients back off instead of piling onto a slow server. Each request
  also carries a ``request_timeout`` deadline (``timeout`` error).
* **Hot-swap** — :meth:`SummaryServer.swap` atomically replaces the live
  index from a new :class:`~repro.core.summary.Summarization` without
  dropping connections; in-flight batches finish against the index they
  captured. Thread-safe, so a streaming pipeline can push
  ``DynamicSummarizer.snapshot()`` results from another thread.
* **Graceful shutdown** — :meth:`SummaryServer.stop` stops admitting,
  drains queued work, flushes responses, then closes connections.
* **Metrics** — counters/gauges/latency histograms in the unified
  :class:`~repro.obs.metrics.MetricsRegistry`, served via the ``stats``
  op (structured), the ``metrics`` op (Prometheus text exposition), an
  optional HTTP scrape endpoint (``metrics_port``), and logged
  periodically (``log_interval``).

:class:`ServerThread` runs the whole event loop on a daemon thread so
blocking code (tests, benchmarks, the CLI's load generator) can stand up
a real server in-process.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional, Tuple, Union

from ..core.summary import Summarization
from ..obs import trace as obs_trace
from ..queries.compiled import CompiledSummaryIndex
from .batching import execute_batch
from .cache import LRUCache
from .metrics import MetricsRegistry
from .protocol import (
    ANALYTICS_OPS,
    MAX_FRAME_BYTES,
    ErrorCode,
    ProtocolError,
    RequestError,
    error_response,
    ok_response,
    read_frame,
    request_meta,
    validate_request,
    write_frame,
)

__all__ = ["ServerConfig", "SummaryServer", "ServerThread"]

logger = logging.getLogger("repro.serve")

_QUERY_OPS = frozenset(
    {"neighbors", "degree", "has_edge", "bfs"}
) | ANALYTICS_OPS


@dataclass
class ServerConfig:
    """Tunables for :class:`SummaryServer`."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral, see SummaryServer.port
    batch_window: float = 0.002        # coalescing window (seconds)
    max_batch: int = 128               # queries per vectorized pass
    cache_entries: int = 4096          # LRU bound (0 disables caching)
    max_pending: int = 1024            # queued+executing admission bound
    request_timeout: float = 5.0       # per-request deadline (seconds)
    log_interval: float = 30.0         # heartbeat period (0 disables)
    allow_reload: bool = False         # permit the 'reload' op
    max_frame_bytes: int = MAX_FRAME_BYTES
    metrics_port: Optional[int] = None  # HTTP scrape port (None disables,
                                        # 0 = ephemeral)
    degraded_enabled: bool = False     # serve stale cached answers instead
                                       # of erroring under overload/swap
    shed_fraction: float = 0.9         # of max_pending at which priority>=2
                                       # (best-effort) requests are shed

    def __post_init__(self) -> None:
        if self.batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if not 0.0 < self.shed_fraction <= 1.0:
            raise ValueError("shed_fraction must be in (0, 1]")


#: (op, args, future, absolute loop-time deadline or None)
_Item = Tuple[str, Dict[str, Any], "asyncio.Future", Optional[float]]


class SummaryServer:
    """Serve queries over a summarization's compiled index."""

    def __init__(
        self,
        summary: Union[Summarization, CompiledSummaryIndex],
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.config = config or ServerConfig()
        if isinstance(summary, CompiledSummaryIndex):
            self._index = summary
        else:
            self._index = CompiledSummaryIndex(summary)
        self._swap_lock = threading.Lock()
        self._generation = 0
        self._degraded = False
        self._topology: Optional[Dict[str, Any]] = None
        self._topology_ring: Optional[Any] = None   # HashRing when sharded
        self._shard_id: Optional[int] = None
        self._stale_cache: Dict[Any, Any] = {}
        self._stale_generation: Optional[int] = None
        self._shed_threshold = max(
            1, int(self.config.max_pending * self.config.shed_fraction)
        )
        self.cache = LRUCache(self.config.cache_entries)
        self.metrics = MetricsRegistry()
        self._queue: Deque[_Item] = deque()
        self._pending = 0              # queued + executing queries
        self._wakeup: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._bound_port: Optional[int] = None
        self._metrics_bound_port: Optional[int] = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-batch"
        )
        self._tasks: set = set()
        self._writers: set = set()
        self._batcher_task: Optional[asyncio.Task] = None
        self._log_task: Optional[asyncio.Task] = None
        self._draining = False
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start background tasks."""
        if self._started:
            raise RuntimeError("server already started")
        self._wakeup = asyncio.Event()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._bound_port = self._server.sockets[0].getsockname()[1]
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_scrape, self.config.host,
                self.config.metrics_port,
            )
            self._metrics_bound_port = (
                self._metrics_server.sockets[0].getsockname()[1]
            )
        self._batcher_task = asyncio.create_task(self._batch_loop())
        if self.config.log_interval > 0:
            self._log_task = asyncio.create_task(self._log_loop())
        self._started = True
        logger.info("serving on %s:%d", self.config.host, self.port)

    @property
    def port(self) -> int:
        """Bound port (resolves ephemeral port 0 after :meth:`start`)."""
        if self._bound_port is None:
            raise RuntimeError("server not started")
        return self._bound_port

    @property
    def metrics_http_port(self) -> int:
        """Bound HTTP scrape port (requires ``metrics_port`` configured)."""
        if self._metrics_bound_port is None:
            raise RuntimeError("metrics endpoint not enabled/started")
        return self._metrics_bound_port

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` is called (starts if needed)."""
        if not self._started:
            await self.start()
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful shutdown: reject new work, drain, then close."""
        if not self._started or self._draining:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        # Drain: every admitted query resolves (the batcher keeps running),
        # then every response task finishes writing.
        while self._pending:
            self._wakeup.set()
            await asyncio.sleep(0.005)
        if self._tasks:
            await asyncio.gather(*tuple(self._tasks), return_exceptions=True)
        for task in (self._batcher_task, self._log_task):
            if task is not None:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
        for writer in tuple(self._writers):
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        self._executor.shutdown(wait=True)
        self._stopped.set()
        logger.info("server stopped after %d requests",
                    self.metrics.counter("requests_total"))

    async def __aenter__(self) -> "SummaryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # hot swap
    # ------------------------------------------------------------------
    def swap(
        self, summary: Union[Summarization, CompiledSummaryIndex]
    ) -> int:
        """Atomically replace the live index; returns the new generation.

        Safe to call from any thread. In-flight batches keep answering
        from the index reference they captured; the result cache is
        invalidated so no stale answer survives the swap.
        """
        index = (
            summary
            if isinstance(summary, CompiledSummaryIndex)
            else CompiledSummaryIndex(summary)
        )
        with self._swap_lock:
            # Keep the outgoing generation's cached answers: degraded mode
            # can serve them (flagged stale) while the swap settles.
            if self.config.degraded_enabled:
                self._stale_cache = self.cache.snapshot_items()
                self._stale_generation = self._generation
            self._index = index
            self._generation += 1
            generation = self._generation
        self.cache.clear()
        self.metrics.inc("swaps_total")
        logger.info("hot-swapped index (generation %d, %d nodes)",
                    generation, index.num_nodes)
        return generation

    @property
    def generation(self) -> int:
        """Number of completed hot-swaps."""
        return self._generation

    @property
    def index(self) -> CompiledSummaryIndex:
        """The live compiled index (rolling swaps keep it for rollback)."""
        return self._index

    # ------------------------------------------------------------------
    # cluster topology
    # ------------------------------------------------------------------
    def set_topology(
        self,
        payload: Dict[str, Any],
        *,
        shard_id: Optional[int] = None,
    ) -> None:
        """Install the cluster routing payload this replica should hand out.

        ``payload`` carries ``epoch``, the ring description, and the
        shard → address map (see
        :meth:`~repro.serve.cluster.SummaryCluster.topology`). The epoch
        is echoed in every ``ping`` health dict so clients detect a
        cutover, and the full payload is served by the ``topology`` op.
        When ``shard_id`` is given, single-node queries whose owner under
        the installed ring is a *different* shard are rejected with
        ``wrong_shard`` — the signal a stale-routed client needs to
        refresh. Thread-safe (atomic reference swaps under the GIL).
        """
        ring = None
        if payload.get("ring") is not None:
            from ..shard.hashring import HashRing

            ring = HashRing.from_dict(payload["ring"])
        self._topology_ring = ring
        self._shard_id = shard_id
        self._topology = payload

    @property
    def ring_epoch(self) -> Optional[int]:
        """Epoch of the installed topology (``None`` when unsharded)."""
        if self._topology is None:
            return None
        return int(self._topology.get("epoch", 0))

    def _check_route(self, op: str, args: Dict[str, Any]) -> None:
        """Reject queries a stale ring epoch routed to the wrong shard."""
        ring, shard_id = self._topology_ring, self._shard_id
        if ring is None or shard_id is None:
            return
        key = None
        if op in ("neighbors", "degree", "analytics.degree"):
            key = args.get("v")
        elif op == "has_edge":
            key = args.get("u")
        if not isinstance(key, int) or isinstance(key, bool):
            return
        if not 0 <= key < self._index.num_nodes:
            return                  # let the executor answer out_of_range
        owner = ring.shard_of(key)
        if owner != shard_id:
            self.metrics.inc("wrong_shard_total")
            raise RequestError(
                ErrorCode.WRONG_SHARD,
                f"node {key} belongs to shard {owner}, not {shard_id} "
                f"(ring epoch {self.ring_epoch})",
            )

    # ------------------------------------------------------------------
    # degraded mode
    # ------------------------------------------------------------------
    def set_degraded(self, degraded: bool) -> None:
        """Force degraded mode on/off (rolling swaps hold it on).

        While degraded (and ``degraded_enabled``), queries answerable
        from the live cache or the previous generation's snapshot are
        served immediately — stale-snapshot answers carry a
        ``stale: true`` flag — without entering the queue. Misses fall
        through to the normal path. Thread-safe.
        """
        self._degraded = bool(degraded)
        self.metrics.set_gauge("degraded", 1 if degraded else 0)

    @property
    def degraded(self) -> bool:
        """Whether degraded mode is currently forced on."""
        return self._degraded

    def _degraded_answer(
        self, op: str, args: Dict[str, Any]
    ) -> Optional[Tuple[Any, bool]]:
        """A ``(result, stale)`` cached answer, or ``None`` on a miss.

        The live cache is consulted first (current generation — correct,
        not stale); then the pre-swap snapshot (flagged stale).
        """
        from .batching import cache_key, from_cached

        key = cache_key(op, args)
        if key is None:
            return None
        hit, value = self.cache.get(key)
        if hit:
            return from_cached(op, value), False
        if key in self._stale_cache:
            return from_cached(op, self._stale_cache[key]), True
        return None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The payload served for a ``stats`` request."""
        return {
            "num_nodes": self._index.num_nodes,
            "generation": self._generation,
            "draining": self._draining,
            "degraded": self._degraded,
            "pending": self._pending,
            "connections": len(self._writers),
            "cache": self.cache.stats(),
            "metrics": self.metrics.snapshot(),
        }

    def health(self) -> Dict[str, Any]:
        """The payload served for a ``ping`` request.

        Deliberately cheap — no cache/metrics snapshots — so a health
        checker can hit it every second without perturbing the server.
        """
        payload = {
            "pong": True,
            "generation": self._generation,
            "queue_depth": len(self._queue),
            "pending": self._pending,
            "draining": self._draining,
            "degraded": self._degraded,
        }
        epoch = self.ring_epoch
        if epoch is not None:
            payload["ring_epoch"] = epoch
        return payload

    def prometheus(self) -> str:
        """Prometheus text exposition of the server's metrics.

        Gauges that live outside the registry (queue depth, connection
        count, generation) are refreshed into it first, so a scrape is
        self-contained.
        """
        self.metrics.set_gauge("queue_depth", len(self._queue))
        self.metrics.set_gauge("connections", len(self._writers))
        self.metrics.set_gauge("generation", self._generation)
        self.metrics.set_gauge("pending", self._pending)
        self.metrics.set_gauge("degraded", 1 if self._degraded else 0)
        cache = self.cache.stats()
        for key, value in cache.items():
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                self.metrics.set_gauge(f"cache_{key}", value)
        return self.metrics.to_prometheus(prefix="repro_serve_")

    # ------------------------------------------------------------------
    # connection plane
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        self.metrics.inc("connections_total")
        try:
            while True:
                try:
                    frame = await read_frame(
                        reader, self.config.max_frame_bytes
                    )
                except ProtocolError as exc:
                    # Framing is broken; answer once, then hang up (there
                    # is no way to find the next frame boundary).
                    self.metrics.inc("errors_bad_frame")
                    with contextlib.suppress(Exception):
                        await self._respond(
                            writer, write_lock,
                            error_response(
                                None, ErrorCode.BAD_REQUEST, str(exc)
                            ),
                        )
                    break
                if frame is None:
                    break
                task = asyncio.create_task(
                    self._handle_request(frame, writer, write_lock)
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: Dict[str, Any],
    ) -> None:
        # config.max_frame_bytes bounds what clients may *send*; responses
        # use the protocol-wide ceiling so a large-but-legitimate result
        # (or an error reply under a tiny request bound) still goes out.
        async with write_lock:
            await write_frame(writer, payload, MAX_FRAME_BYTES)

    # ------------------------------------------------------------------
    # request plane
    # ------------------------------------------------------------------
    async def _handle_request(
        self,
        frame: Any,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        started = time.perf_counter()
        self.metrics.inc("requests_total")
        rid: Optional[int] = (
            frame.get("id") if isinstance(frame, dict)
            and isinstance(frame.get("id"), int)
            and not isinstance(frame.get("id"), bool) else None
        )
        try:
            rid, op, args = validate_request(frame)
            if op in _QUERY_OPS:
                priority, deadline_ms = request_meta(frame)
                payload = await self._handle_query(
                    rid, op, args, priority, deadline_ms
                )
            else:
                payload = await self._handle_control(rid, op, args)
        except RequestError as exc:
            self.metrics.inc(f"errors_{exc.code}")
            payload = error_response(rid, exc.code, str(exc))
        except Exception as exc:  # noqa: BLE001 - report, don't drop conn
            logger.exception("internal error handling request %s", rid)
            self.metrics.inc("errors_internal")
            payload = error_response(rid, ErrorCode.INTERNAL, repr(exc))
        try:
            await self._respond(writer, write_lock, payload)
        except (ConnectionResetError, BrokenPipeError, ProtocolError):
            self.metrics.inc("responses_dropped")
        self.metrics.observe(
            "request_latency_seconds", time.perf_counter() - started
        )

    async def _handle_control(
        self, rid: int, op: str, args: Dict[str, Any]
    ) -> Dict[str, Any]:
        if op == "ping":
            return ok_response(rid, self.health())
        if op == "stats":
            return ok_response(rid, self.stats())
        if op == "metrics":
            return ok_response(rid, self.prometheus())
        if op == "topology":
            if self._topology is None:
                raise RequestError(
                    ErrorCode.BAD_REQUEST,
                    "no topology installed (unsharded server)",
                )
            return ok_response(rid, self._topology)
        # reload: load a summary file and hot-swap to it.
        if not self.config.allow_reload:
            raise RequestError(
                ErrorCode.FORBIDDEN,
                "reload is disabled (start the server with allow_reload)",
            )
        loop = asyncio.get_running_loop()
        try:
            index = await loop.run_in_executor(
                None, _load_index, args["path"]
            )
        except (OSError, ValueError) as exc:
            # Covers CorruptSummaryError (a ValueError): a damaged file is
            # rejected here, before swap — the live index is untouched.
            self.metrics.inc("reload_rejected_total")
            logger.warning("rejected reload of %s: %s", args.get("path"), exc)
            raise RequestError(
                ErrorCode.BAD_REQUEST, f"reload failed: {exc}"
            ) from exc
        generation = self.swap(index)
        return ok_response(
            rid, {"generation": generation, "num_nodes": index.num_nodes}
        )

    def _reject_or_degrade(
        self, rid: int, op: str, args: Dict[str, Any],
        code: str, message: str,
    ) -> Dict[str, Any]:
        """Overload path: a cached (possibly stale) answer, or the error."""
        if self.config.degraded_enabled:
            answer = self._degraded_answer(op, args)
            if answer is not None:
                result, stale = answer
                self.metrics.inc(
                    "degraded_served_total", labels={"op": op}
                )
                if stale:
                    self.metrics.inc("stale_served_total")
                return ok_response(rid, result, stale=stale)
        raise RequestError(code, message)

    async def _handle_query(
        self,
        rid: int,
        op: str,
        args: Dict[str, Any],
        priority: int = 1,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        if self._draining:
            raise RequestError(
                ErrorCode.SHUTTING_DOWN, "server is shutting down"
            )
        self._check_route(op, args)
        if self._pending >= self.config.max_pending:
            return self._reject_or_degrade(
                rid, op, args, ErrorCode.OVERLOADED,
                f"queue full ({self.config.max_pending} pending)",
            )
        if priority >= 2 and self._pending >= self._shed_threshold:
            # Priority-aware load shedding: best-effort traffic is turned
            # away before the queue is full so high-priority work keeps a
            # reserved slice of the admission budget.
            self.metrics.inc("shed_total", labels={"priority": priority})
            return self._reject_or_degrade(
                rid, op, args, ErrorCode.OVERLOADED,
                f"shed at priority {priority} "
                f"({self._pending}/{self.config.max_pending} pending)",
            )
        if self._degraded:
            # Rolling swap in progress: prefer an immediate cached answer
            # over queueing behind the swap (misses still run normally).
            answer = (
                self._degraded_answer(op, args)
                if self.config.degraded_enabled else None
            )
            if answer is not None:
                result, stale = answer
                self.metrics.inc(
                    "degraded_served_total", labels={"op": op}
                )
                if stale:
                    self.metrics.inc("stale_served_total")
                return ok_response(rid, result, stale=stale)
        loop = asyncio.get_running_loop()
        deadline: Optional[float] = None
        wait_timeout = self.config.request_timeout
        if deadline_ms is not None:
            deadline = loop.time() + deadline_ms / 1000.0
            wait_timeout = min(wait_timeout, max(deadline_ms / 1000.0, 1e-4))
        future: asyncio.Future = loop.create_future()
        self._pending += 1
        self._queue.append((op, args, future, deadline))
        self.metrics.set_gauge("queue_depth", len(self._queue))
        self._wakeup.set()
        try:
            outcome = await asyncio.wait_for(
                asyncio.shield(future), wait_timeout
            )
        except asyncio.TimeoutError:
            # deadline_expired_total is counted at queue-pop time (the
            # single place that proves the query never executed), not here.
            if deadline is not None and wait_timeout < self.config.request_timeout:
                raise RequestError(
                    ErrorCode.DEADLINE_EXCEEDED,
                    f"deadline of {deadline_ms:.0f}ms expired while queued",
                ) from None
            raise RequestError(
                ErrorCode.TIMEOUT,
                f"no result within {self.config.request_timeout}s",
            ) from None
        if outcome[0] == "ok":
            return ok_response(rid, outcome[1])
        _, code, message = outcome
        raise RequestError(code, message)

    # ------------------------------------------------------------------
    # batch plane
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wakeup.wait()
            if not self._queue:
                self._wakeup.clear()
                continue
            if self.config.batch_window > 0:
                await asyncio.sleep(self.config.batch_window)
            batch: list = []
            now = loop.time()
            while self._queue and len(batch) < self.config.max_batch:
                item = self._queue.popleft()
                deadline = item[3]
                if deadline is not None and now > deadline:
                    # Deadline propagation: expired work is rejected here,
                    # before it ever touches the index — doing it anyway
                    # would burn batch capacity on an answer nobody is
                    # waiting for.
                    self._pending -= 1
                    self.metrics.inc("deadline_expired_total")
                    future = item[2]
                    if not future.done():
                        future.set_result((
                            "error", ErrorCode.DEADLINE_EXCEEDED,
                            "deadline expired before execution",
                        ))
                    continue
                batch.append(item)
            if not self._queue:
                self._wakeup.clear()
            self.metrics.set_gauge("queue_depth", len(self._queue))
            if not batch:
                continue
            index = self._index     # capture: immune to concurrent swap
            queries = [(op, args) for op, args, _, _ in batch]
            self.metrics.set_gauge("inflight", len(batch))
            # A no-op unless a tracer is installed (the --trace CLI knob);
            # batch spans key on their per-parent occurrence index.
            with obs_trace.span("serve_batch", size=len(batch)):
                try:
                    outcomes = await loop.run_in_executor(
                        self._executor, execute_batch,
                        index, self.cache, self.metrics, queries,
                    )
                except Exception as exc:  # noqa: BLE001 - fail batch only
                    logger.exception("batch execution failed")
                    outcomes = [
                        ("error", ErrorCode.INTERNAL, repr(exc))
                    ] * len(batch)
                finally:
                    self.metrics.set_gauge("inflight", 0)
            for (_, _, future, _), outcome in zip(batch, outcomes):
                self._pending -= 1
                if not future.done():
                    future.set_result(outcome)

    async def _log_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.log_interval)
            self.metrics.set_gauge("queue_depth", len(self._queue))
            logger.info("%s", self.metrics.format_line())

    # ------------------------------------------------------------------
    # metrics scrape plane
    # ------------------------------------------------------------------
    async def _handle_scrape(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one plain-HTTP scrape (``GET /metrics``) and hang up.

        Deliberately minimal: no keep-alive, no chunking — exactly what a
        Prometheus scraper (or ``curl``) needs, with no new dependency.
        """
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=5.0
            )
            # Drain headers until the blank line; scrapers send few.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            if len(parts) >= 2 and parts[0] == "GET" and (
                parts[1] == "/metrics" or parts[1] == "/"
            ):
                body = self.prometheus().encode("utf-8")
                head = (
                    "HTTP/1.1 200 OK\r\n"
                    "Content-Type: text/plain; version=0.0.4; "
                    "charset=utf-8\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                )
            else:
                body = b"not found\n"
                head = (
                    "HTTP/1.1 404 Not Found\r\n"
                    "Content-Type: text/plain; charset=utf-8\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()


def _load_index(path: str) -> CompiledSummaryIndex:
    """Load a summary file (binary ``.ldmeb`` or text) and compile it."""
    if str(path).endswith(".ldmeb"):
        from ..binaryio import read_summary_binary

        summary = read_summary_binary(path)
    else:
        from ..graph.io import read_summary

        summary = read_summary(path)
    return CompiledSummaryIndex(summary)


class ServerThread:
    """Run a :class:`SummaryServer` on a background event-loop thread.

    For blocking callers (tests, benchmarks, notebooks)::

        with ServerThread(summary) as handle:
            client = SummaryClient("127.0.0.1", handle.port)
            ...

    ``handle.server.swap(...)`` is safe from the caller's thread.
    """

    def __init__(
        self,
        summary: Union[Summarization, CompiledSummaryIndex],
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.server = SummaryServer(summary, config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._killed = False

    def start(self) -> "ServerThread":
        """Start the loop thread; blocks until the socket is bound."""
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") \
                from self._startup_error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException:  # noqa: BLE001
            # A kill() cancels every task; the resulting CancelledError
            # (or loop-teardown noise) is the intended outcome, not a
            # crash worth a traceback on stderr.
            if not self._killed:
                raise

    async def _main(self) -> None:
        try:
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - surfaced in start()
            self._startup_error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.server.serve_forever()

    @property
    def port(self) -> int:
        """The server's bound port."""
        return self.server.port

    @property
    def metrics_http_port(self) -> int:
        """The server's HTTP metrics scrape port (if configured)."""
        return self.server.metrics_http_port

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully stop the server and join the loop thread.

        Has a definite outcome: if the graceful drain or the thread join
        does not finish within ``timeout``, the thread is force-killed
        (tasks cancelled, connections aborted) and, if it *still* will
        not exit, :class:`RuntimeError` is raised — it never returns
        silently with the server thread alive.
        """
        if self._thread is None:
            return
        graceful = True
        if (
            not self._killed
            and self._loop is not None
            and self._thread.is_alive()
        ):
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            )
            try:
                future.result(timeout=timeout)
            except (FuturesTimeoutError, RuntimeError) as exc:
                graceful = False
                logger.warning(
                    "graceful stop did not finish within %.1fs (%s); "
                    "force-killing the server thread", timeout, exc,
                )
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            graceful = False
            self.kill(timeout=min(timeout, 5.0))
        if self._thread.is_alive():
            raise RuntimeError(
                f"server thread failed to stop within {timeout}s "
                "(graceful drain and force-kill both timed out)"
            )
        if not graceful:
            logger.warning("server thread stopped only after force-kill")

    def kill(self, timeout: float = 5.0) -> None:
        """Abruptly terminate the server — the in-process analog of
        ``kill -9`` for chaos tests.

        Every task is cancelled and every open connection aborted without
        draining; clients see resets/EOF mid-conversation and subsequent
        connects are refused. No graceful-shutdown code runs.
        """
        self._killed = True
        loop, thread = self._loop, self._thread
        if loop is None or thread is None or not thread.is_alive():
            return

        def _abort() -> None:
            # Close the listeners synchronously — loop teardown does not,
            # and a leaked listening fd keeps the port bound, which would
            # make an immediate restart() fail with EADDRINUSE.
            for server in (self.server._server,
                           self.server._metrics_server):
                if server is not None:
                    server.close()
            for writer in tuple(self.server._writers):
                transport = writer.transport
                if transport is not None:
                    transport.abort()
            for task in asyncio.all_tasks(loop):
                task.cancel()

        try:
            loop.call_soon_threadsafe(_abort)
        except RuntimeError:
            pass                      # loop already closed
        self.server._executor.shutdown(wait=False)
        thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
