"""Asyncio TCP server answering summary queries.

:class:`SummaryServer` owns a :class:`CompiledSummaryIndex` and serves
``neighbors`` / ``degree`` / ``has_edge`` / ``bfs`` queries over the
length-prefixed JSON protocol in :mod:`repro.serve.protocol`. The design
is a miniature inference server:

* **Batching** — query requests land in a queue; a single batcher task
  sleeps ``batch_window`` seconds after the first arrival, then drains up
  to ``max_batch`` items and executes them as one vectorized pass in a
  worker thread (:func:`repro.serve.batching.execute_batch`). Responses
  return out of order; clients match on request id.
* **Caching** — results are memoized in an LRU bounded by
  ``cache_entries``; a hot-swap invalidates it atomically.
* **Admission control** — at most ``max_pending`` queries may be queued
  or executing; excess requests get an immediate ``overloaded`` error so
  clients back off instead of piling onto a slow server. Each request
  also carries a ``request_timeout`` deadline (``timeout`` error).
* **Hot-swap** — :meth:`SummaryServer.swap` atomically replaces the live
  index from a new :class:`~repro.core.summary.Summarization` without
  dropping connections; in-flight batches finish against the index they
  captured. Thread-safe, so a streaming pipeline can push
  ``DynamicSummarizer.snapshot()`` results from another thread.
* **Graceful shutdown** — :meth:`SummaryServer.stop` stops admitting,
  drains queued work, flushes responses, then closes connections.
* **Metrics** — counters/gauges/latency histograms in the unified
  :class:`~repro.obs.metrics.MetricsRegistry`, served via the ``stats``
  op (structured), the ``metrics`` op (Prometheus text exposition), an
  optional HTTP scrape endpoint (``metrics_port``), and logged
  periodically (``log_interval``).

:class:`ServerThread` runs the whole event loop on a daemon thread so
blocking code (tests, benchmarks, the CLI's load generator) can stand up
a real server in-process.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional, Tuple, Union

from ..core.summary import Summarization
from ..obs import trace as obs_trace
from ..queries.compiled import CompiledSummaryIndex
from .batching import execute_batch
from .cache import LRUCache
from .metrics import MetricsRegistry
from .protocol import (
    MAX_FRAME_BYTES,
    ErrorCode,
    ProtocolError,
    RequestError,
    error_response,
    ok_response,
    read_frame,
    validate_request,
    write_frame,
)

__all__ = ["ServerConfig", "SummaryServer", "ServerThread"]

logger = logging.getLogger("repro.serve")

_QUERY_OPS = frozenset({"neighbors", "degree", "has_edge", "bfs"})


@dataclass
class ServerConfig:
    """Tunables for :class:`SummaryServer`."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral, see SummaryServer.port
    batch_window: float = 0.002        # coalescing window (seconds)
    max_batch: int = 128               # queries per vectorized pass
    cache_entries: int = 4096          # LRU bound (0 disables caching)
    max_pending: int = 1024            # queued+executing admission bound
    request_timeout: float = 5.0       # per-request deadline (seconds)
    log_interval: float = 30.0         # heartbeat period (0 disables)
    allow_reload: bool = False         # permit the 'reload' op
    max_frame_bytes: int = MAX_FRAME_BYTES
    metrics_port: Optional[int] = None  # HTTP scrape port (None disables,
                                        # 0 = ephemeral)

    def __post_init__(self) -> None:
        if self.batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")


_Item = Tuple[str, Dict[str, Any], "asyncio.Future"]


class SummaryServer:
    """Serve queries over a summarization's compiled index."""

    def __init__(
        self,
        summary: Union[Summarization, CompiledSummaryIndex],
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.config = config or ServerConfig()
        if isinstance(summary, CompiledSummaryIndex):
            self._index = summary
        else:
            self._index = CompiledSummaryIndex(summary)
        self._swap_lock = threading.Lock()
        self._generation = 0
        self.cache = LRUCache(self.config.cache_entries)
        self.metrics = MetricsRegistry()
        self._queue: Deque[_Item] = deque()
        self._pending = 0              # queued + executing queries
        self._wakeup: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._bound_port: Optional[int] = None
        self._metrics_bound_port: Optional[int] = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-batch"
        )
        self._tasks: set = set()
        self._writers: set = set()
        self._batcher_task: Optional[asyncio.Task] = None
        self._log_task: Optional[asyncio.Task] = None
        self._draining = False
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start background tasks."""
        if self._started:
            raise RuntimeError("server already started")
        self._wakeup = asyncio.Event()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._bound_port = self._server.sockets[0].getsockname()[1]
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_scrape, self.config.host,
                self.config.metrics_port,
            )
            self._metrics_bound_port = (
                self._metrics_server.sockets[0].getsockname()[1]
            )
        self._batcher_task = asyncio.create_task(self._batch_loop())
        if self.config.log_interval > 0:
            self._log_task = asyncio.create_task(self._log_loop())
        self._started = True
        logger.info("serving on %s:%d", self.config.host, self.port)

    @property
    def port(self) -> int:
        """Bound port (resolves ephemeral port 0 after :meth:`start`)."""
        if self._bound_port is None:
            raise RuntimeError("server not started")
        return self._bound_port

    @property
    def metrics_http_port(self) -> int:
        """Bound HTTP scrape port (requires ``metrics_port`` configured)."""
        if self._metrics_bound_port is None:
            raise RuntimeError("metrics endpoint not enabled/started")
        return self._metrics_bound_port

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` is called (starts if needed)."""
        if not self._started:
            await self.start()
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful shutdown: reject new work, drain, then close."""
        if not self._started or self._draining:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        # Drain: every admitted query resolves (the batcher keeps running),
        # then every response task finishes writing.
        while self._pending:
            self._wakeup.set()
            await asyncio.sleep(0.005)
        if self._tasks:
            await asyncio.gather(*tuple(self._tasks), return_exceptions=True)
        for task in (self._batcher_task, self._log_task):
            if task is not None:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
        for writer in tuple(self._writers):
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        self._executor.shutdown(wait=True)
        self._stopped.set()
        logger.info("server stopped after %d requests",
                    self.metrics.counter("requests_total"))

    async def __aenter__(self) -> "SummaryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # hot swap
    # ------------------------------------------------------------------
    def swap(
        self, summary: Union[Summarization, CompiledSummaryIndex]
    ) -> int:
        """Atomically replace the live index; returns the new generation.

        Safe to call from any thread. In-flight batches keep answering
        from the index reference they captured; the result cache is
        invalidated so no stale answer survives the swap.
        """
        index = (
            summary
            if isinstance(summary, CompiledSummaryIndex)
            else CompiledSummaryIndex(summary)
        )
        with self._swap_lock:
            self._index = index
            self._generation += 1
            generation = self._generation
        self.cache.clear()
        self.metrics.inc("swaps_total")
        logger.info("hot-swapped index (generation %d, %d nodes)",
                    generation, index.num_nodes)
        return generation

    @property
    def generation(self) -> int:
        """Number of completed hot-swaps."""
        return self._generation

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The payload served for a ``stats`` request."""
        return {
            "num_nodes": self._index.num_nodes,
            "generation": self._generation,
            "draining": self._draining,
            "pending": self._pending,
            "connections": len(self._writers),
            "cache": self.cache.stats(),
            "metrics": self.metrics.snapshot(),
        }

    def prometheus(self) -> str:
        """Prometheus text exposition of the server's metrics.

        Gauges that live outside the registry (queue depth, connection
        count, generation) are refreshed into it first, so a scrape is
        self-contained.
        """
        self.metrics.set_gauge("queue_depth", len(self._queue))
        self.metrics.set_gauge("connections", len(self._writers))
        self.metrics.set_gauge("generation", self._generation)
        self.metrics.set_gauge("pending", self._pending)
        cache = self.cache.stats()
        for key, value in cache.items():
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                self.metrics.set_gauge(f"cache_{key}", value)
        return self.metrics.to_prometheus(prefix="repro_serve_")

    # ------------------------------------------------------------------
    # connection plane
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        self.metrics.inc("connections_total")
        try:
            while True:
                try:
                    frame = await read_frame(
                        reader, self.config.max_frame_bytes
                    )
                except ProtocolError as exc:
                    # Framing is broken; answer once, then hang up (there
                    # is no way to find the next frame boundary).
                    self.metrics.inc("errors_bad_frame")
                    with contextlib.suppress(Exception):
                        await self._respond(
                            writer, write_lock,
                            error_response(
                                None, ErrorCode.BAD_REQUEST, str(exc)
                            ),
                        )
                    break
                if frame is None:
                    break
                task = asyncio.create_task(
                    self._handle_request(frame, writer, write_lock)
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: Dict[str, Any],
    ) -> None:
        # config.max_frame_bytes bounds what clients may *send*; responses
        # use the protocol-wide ceiling so a large-but-legitimate result
        # (or an error reply under a tiny request bound) still goes out.
        async with write_lock:
            await write_frame(writer, payload, MAX_FRAME_BYTES)

    # ------------------------------------------------------------------
    # request plane
    # ------------------------------------------------------------------
    async def _handle_request(
        self,
        frame: Any,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        started = time.perf_counter()
        self.metrics.inc("requests_total")
        rid: Optional[int] = (
            frame.get("id") if isinstance(frame, dict)
            and isinstance(frame.get("id"), int)
            and not isinstance(frame.get("id"), bool) else None
        )
        try:
            rid, op, args = validate_request(frame)
            if op in _QUERY_OPS:
                payload = await self._handle_query(rid, op, args)
            else:
                payload = await self._handle_control(rid, op, args)
        except RequestError as exc:
            self.metrics.inc(f"errors_{exc.code}")
            payload = error_response(rid, exc.code, str(exc))
        except Exception as exc:  # noqa: BLE001 - report, don't drop conn
            logger.exception("internal error handling request %s", rid)
            self.metrics.inc("errors_internal")
            payload = error_response(rid, ErrorCode.INTERNAL, repr(exc))
        try:
            await self._respond(writer, write_lock, payload)
        except (ConnectionResetError, BrokenPipeError, ProtocolError):
            self.metrics.inc("responses_dropped")
        self.metrics.observe(
            "request_latency_seconds", time.perf_counter() - started
        )

    async def _handle_control(
        self, rid: int, op: str, args: Dict[str, Any]
    ) -> Dict[str, Any]:
        if op == "ping":
            return ok_response(rid, "pong")
        if op == "stats":
            return ok_response(rid, self.stats())
        if op == "metrics":
            return ok_response(rid, self.prometheus())
        # reload: load a summary file and hot-swap to it.
        if not self.config.allow_reload:
            raise RequestError(
                ErrorCode.FORBIDDEN,
                "reload is disabled (start the server with allow_reload)",
            )
        loop = asyncio.get_running_loop()
        try:
            index = await loop.run_in_executor(
                None, _load_index, args["path"]
            )
        except (OSError, ValueError) as exc:
            # Covers CorruptSummaryError (a ValueError): a damaged file is
            # rejected here, before swap — the live index is untouched.
            self.metrics.inc("reload_rejected_total")
            logger.warning("rejected reload of %s: %s", args.get("path"), exc)
            raise RequestError(
                ErrorCode.BAD_REQUEST, f"reload failed: {exc}"
            ) from exc
        generation = self.swap(index)
        return ok_response(
            rid, {"generation": generation, "num_nodes": index.num_nodes}
        )

    async def _handle_query(
        self, rid: int, op: str, args: Dict[str, Any]
    ) -> Dict[str, Any]:
        if self._draining:
            raise RequestError(
                ErrorCode.SHUTTING_DOWN, "server is shutting down"
            )
        if self._pending >= self.config.max_pending:
            raise RequestError(
                ErrorCode.OVERLOADED,
                f"queue full ({self.config.max_pending} pending)",
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending += 1
        self._queue.append((op, args, future))
        self.metrics.set_gauge("queue_depth", len(self._queue))
        self._wakeup.set()
        try:
            outcome = await asyncio.wait_for(
                asyncio.shield(future), self.config.request_timeout
            )
        except asyncio.TimeoutError:
            raise RequestError(
                ErrorCode.TIMEOUT,
                f"no result within {self.config.request_timeout}s",
            ) from None
        if outcome[0] == "ok":
            return ok_response(rid, outcome[1])
        _, code, message = outcome
        raise RequestError(code, message)

    # ------------------------------------------------------------------
    # batch plane
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wakeup.wait()
            if not self._queue:
                self._wakeup.clear()
                continue
            if self.config.batch_window > 0:
                await asyncio.sleep(self.config.batch_window)
            batch: list = []
            while self._queue and len(batch) < self.config.max_batch:
                batch.append(self._queue.popleft())
            if not self._queue:
                self._wakeup.clear()
            self.metrics.set_gauge("queue_depth", len(self._queue))
            if not batch:
                continue
            index = self._index     # capture: immune to concurrent swap
            queries = [(op, args) for op, args, _ in batch]
            self.metrics.set_gauge("inflight", len(batch))
            # A no-op unless a tracer is installed (the --trace CLI knob);
            # batch spans key on their per-parent occurrence index.
            with obs_trace.span("serve_batch", size=len(batch)):
                try:
                    outcomes = await loop.run_in_executor(
                        self._executor, execute_batch,
                        index, self.cache, self.metrics, queries,
                    )
                except Exception as exc:  # noqa: BLE001 - fail batch only
                    logger.exception("batch execution failed")
                    outcomes = [
                        ("error", ErrorCode.INTERNAL, repr(exc))
                    ] * len(batch)
                finally:
                    self.metrics.set_gauge("inflight", 0)
            for (_, _, future), outcome in zip(batch, outcomes):
                self._pending -= 1
                if not future.done():
                    future.set_result(outcome)

    async def _log_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.log_interval)
            self.metrics.set_gauge("queue_depth", len(self._queue))
            logger.info("%s", self.metrics.format_line())

    # ------------------------------------------------------------------
    # metrics scrape plane
    # ------------------------------------------------------------------
    async def _handle_scrape(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one plain-HTTP scrape (``GET /metrics``) and hang up.

        Deliberately minimal: no keep-alive, no chunking — exactly what a
        Prometheus scraper (or ``curl``) needs, with no new dependency.
        """
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=5.0
            )
            # Drain headers until the blank line; scrapers send few.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            if len(parts) >= 2 and parts[0] == "GET" and (
                parts[1] == "/metrics" or parts[1] == "/"
            ):
                body = self.prometheus().encode("utf-8")
                head = (
                    "HTTP/1.1 200 OK\r\n"
                    "Content-Type: text/plain; version=0.0.4; "
                    "charset=utf-8\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                )
            else:
                body = b"not found\n"
                head = (
                    "HTTP/1.1 404 Not Found\r\n"
                    "Content-Type: text/plain; charset=utf-8\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()


def _load_index(path: str) -> CompiledSummaryIndex:
    """Load a summary file (binary ``.ldmeb`` or text) and compile it."""
    if str(path).endswith(".ldmeb"):
        from ..binaryio import read_summary_binary

        summary = read_summary_binary(path)
    else:
        from ..graph.io import read_summary

        summary = read_summary(path)
    return CompiledSummaryIndex(summary)


class ServerThread:
    """Run a :class:`SummaryServer` on a background event-loop thread.

    For blocking callers (tests, benchmarks, notebooks)::

        with ServerThread(summary) as handle:
            client = SummaryClient("127.0.0.1", handle.port)
            ...

    ``handle.server.swap(...)`` is safe from the caller's thread.
    """

    def __init__(
        self,
        summary: Union[Summarization, CompiledSummaryIndex],
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.server = SummaryServer(summary, config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "ServerThread":
        """Start the loop thread; blocks until the socket is bound."""
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") \
                from self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        try:
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - surfaced in start()
            self._startup_error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.server.serve_forever()

    @property
    def port(self) -> int:
        """The server's bound port."""
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully stop the server and join the loop thread."""
        if self._loop is not None and self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            )
            future.result(timeout=timeout)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
