"""Crash-safe streaming ingestion for online graph summarization.

The durability pipeline of ROADMAP item 2: edge insertions/deletions go
through a segmented, CRC-framed write-ahead log (fsync-on-ack batches),
get applied to a :class:`~repro.streaming.DynamicSummarizer` under
monotonic sequence numbers, and periodically compile into snapshots that
are checkpointed and hot-swapped into a :class:`~repro.serve.SummaryCluster`
with zero downtime. Recovery = newest good checkpoint + idempotent WAL
replay from its pinned sequence number; the ``ingest-chaos`` CI gate
SIGKILLs the whole thing mid-stream to prove no acknowledged event is
ever lost. See ``docs/streaming.md`` for the protocol.
"""

from .service import (
    INGEST_PAYLOAD_KIND,
    Ack,
    IngestService,
    RecoveryReport,
)
from .source import IngestListener, feed_stream_file, send_events
from .wal import (
    OP_DELETE,
    OP_INSERT,
    SegmentInfo,
    WalRecord,
    WalRecovery,
    WalWriter,
    iter_wal,
    list_segments,
    read_segment,
    recover_wal,
    segment_path,
)

__all__ = [
    "Ack",
    "IngestService",
    "IngestListener",
    "RecoveryReport",
    "INGEST_PAYLOAD_KIND",
    "feed_stream_file",
    "send_events",
    "WalWriter",
    "WalRecovery",
    "WalRecord",
    "SegmentInfo",
    "recover_wal",
    "iter_wal",
    "list_segments",
    "read_segment",
    "segment_path",
    "OP_INSERT",
    "OP_DELETE",
]
