"""Segmented write-ahead log for edge-stream events.

The durability contract of :mod:`repro.ingest`: an event is
**acknowledged** only after its record has been appended to the active
WAL segment and the segment fsynced. Acknowledged events survive any
crash — SIGKILL, power loss, torn tail — and are replayed into the
summarizer on recovery.

On-disk layout (one directory, ``wal-<index>.seg`` files)::

    header : magic "WALS" | version varint | base_seq varint
    record : payload_len u32le | crc32(payload) u32le | payload
    payload: seq varint | op byte (0 = insert, 1 = delete)
             | u varint | v varint
    footer : crc32(all preceding bytes) u32le | magic "WALZ"   [sealed]

following the ``binaryio`` v2 conventions (LEB128 varints, a trailing
CRC footer guarding the whole byte stream). Every record additionally
carries its own CRC so the *active* segment — the only one without a
footer — can be scanned record-by-record after a crash.

Rotation is atomic with respect to recovery: the current segment is
sealed (footer appended + fsync) **before** the next segment's header is
created, so recovery can classify every file:

* a segment ending in a valid footer is **sealed** — replaying it
  re-verifies the whole-file CRC, and any mismatch raises
  :class:`~repro.errors.CorruptWALError` (bit rot in acknowledged data
  is never silently dropped);
* the newest segment without a footer is **active** — a scan stops at
  the first invalid record and the torn tail is truncated in place
  (those bytes never completed an fsynced append, so nothing
  acknowledged is lost);
* a *non*-newest segment without a valid footer is damaged sealed data
  and is only tolerated when the caller's replay start is past it.

Sequence numbers are assigned by :class:`WalWriter`, monotonically from
1, and stored in every record — replay is idempotent (records at or
below the caller's ``from_seq`` are skipped) and gap-checked (a missing
acknowledged record raises instead of silently diverging).
"""

from __future__ import annotations

import os
import re
import struct
import zlib
from dataclasses import dataclass, field
from typing import IO, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import CorruptWALError
from ..ioutil import fsync_directory

__all__ = [
    "WalWriter",
    "WalRecovery",
    "SegmentInfo",
    "WalRecord",
    "recover_wal",
    "list_segments",
    "read_segment",
    "segment_path",
    "header_end",
    "frame_length",
    "SEGMENT_MAGIC",
    "SEGMENT_FOOTER_MAGIC",
    "OP_INSERT",
    "OP_DELETE",
]

PathLike = Union[str, "os.PathLike[str]"]

SEGMENT_MAGIC = b"WALS"
SEGMENT_FOOTER_MAGIC = b"WALZ"
SEGMENT_VERSION = 1
_FILE_RE = re.compile(r"^wal-(\d{8})\.seg$")
_FRAME = struct.Struct("<II")          # payload_len, crc32(payload)
_CRC = struct.Struct("<I")
FOOTER_BYTES = _CRC.size + len(SEGMENT_FOOTER_MAGIC)

#: Upper bound on a record payload — a seq/u/v varint is at most 10
#: bytes each, plus the op byte. Anything larger is frame corruption.
MAX_PAYLOAD_BYTES = 64

OP_INSERT = 0
OP_DELETE = 1
_OP_TO_CHAR = {OP_INSERT: "+", OP_DELETE: "-"}
_CHAR_TO_OP = {"+": OP_INSERT, "-": OP_DELETE}


# ----------------------------------------------------------------------
# varint primitives (binaryio conventions)
# ----------------------------------------------------------------------
def _encode_varint(value: int) -> bytes:
    if value < 0:
        raise ValueError("varints encode non-negative integers")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(data: bytes, pos: int, path: str) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CorruptWALError(path, "truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WalRecord:
    """One durably-logged edge event."""

    seq: int
    op: str          # "+" | "-"
    u: int
    v: int

    def event(self) -> Tuple[str, int, int]:
        """The ``(op, u, v)`` tuple :meth:`DynamicSummarizer.apply` eats."""
        return (self.op, self.u, self.v)


def _encode_record(seq: int, op: str, u: int, v: int) -> bytes:
    try:
        op_code = _CHAR_TO_OP[op]
    except KeyError:
        raise ValueError(f"unknown stream op {op!r}") from None
    if u < 0 or v < 0:
        raise ValueError(f"negative node id in event ({u}, {v})")
    payload = (
        _encode_varint(seq)
        + bytes([op_code])
        + _encode_varint(u)
        + _encode_varint(v)
    )
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _decode_payload(payload: bytes, path: str) -> WalRecord:
    seq, pos = _decode_varint(payload, 0, path)
    if pos >= len(payload):
        raise CorruptWALError(path, "record payload missing op byte")
    op_code = payload[pos]
    pos += 1
    if op_code not in _OP_TO_CHAR:
        raise CorruptWALError(path, f"unknown record op code {op_code}")
    u, pos = _decode_varint(payload, pos, path)
    v, pos = _decode_varint(payload, pos, path)
    if pos != len(payload):
        raise CorruptWALError(
            path, f"{len(payload) - pos} trailing payload bytes"
        )
    return WalRecord(seq=seq, op=_OP_TO_CHAR[op_code], u=u, v=v)


def _encode_header(base_seq: int) -> bytes:
    return (
        SEGMENT_MAGIC
        + _encode_varint(SEGMENT_VERSION)
        + _encode_varint(base_seq)
    )


# ----------------------------------------------------------------------
# reading one segment
# ----------------------------------------------------------------------
@dataclass
class SegmentInfo:
    """Parse result for one WAL segment file."""

    path: str
    index: int
    base_seq: int
    records: List[WalRecord] = field(default_factory=list)
    sealed: bool = False
    #: Byte length of the valid prefix (header + intact records [+footer]).
    valid_bytes: int = 0
    #: File size on disk at scan time.
    size: int = 0

    @property
    def last_seq(self) -> Optional[int]:
        """Highest record seq, or ``None`` for an empty segment."""
        return self.records[-1].seq if self.records else None

    @property
    def torn_bytes(self) -> int:
        """Bytes past the valid prefix (0 for a clean segment)."""
        return self.size - self.valid_bytes


def segment_path(directory: PathLike, index: int) -> str:
    """Path of segment ``index`` inside ``directory``."""
    return os.path.join(os.fspath(directory), f"wal-{index:08d}.seg")


def header_end(data: bytes, path: str = "<segment>") -> int:
    """Byte offset where a segment's record frames begin."""
    return _parse_header(data, path)[1]


def frame_length(data: bytes, pos: int) -> int:
    """Total byte length of the record frame starting at ``pos``."""
    length, _ = _FRAME.unpack_from(data, pos)
    return _FRAME.size + length


def list_segments(directory: PathLike) -> List[Tuple[int, str]]:
    """``(index, path)`` of every segment file, ascending by index."""
    directory = os.fspath(directory)
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    out = []
    for name in names:
        match = _FILE_RE.match(name)
        if match:
            out.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(out)


def _parse_header(data: bytes, path: str) -> Tuple[int, int]:
    """Returns ``(base_seq, header_end)``."""
    if data[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        raise CorruptWALError(path, "not a WAL segment (bad magic)")
    pos = len(SEGMENT_MAGIC)
    version, pos = _decode_varint(data, pos, path)
    if version != SEGMENT_VERSION:
        raise CorruptWALError(path, f"unsupported WAL version {version}")
    base_seq, pos = _decode_varint(data, pos, path)
    return base_seq, pos


def _scan_records(
    data: bytes, start: int, end: int, path: str, *, strict: bool
) -> Tuple[List[WalRecord], int]:
    """Walk frames in ``data[start:end]``.

    ``strict=True`` (sealed segments) raises on the first invalid frame;
    ``strict=False`` (the active segment) stops there instead, returning
    the offset of the valid prefix — the torn-tail truncation point.
    """
    records: List[WalRecord] = []
    pos = start
    while pos < end:
        if end - pos < _FRAME.size:
            if strict:
                raise CorruptWALError(path, "truncated record frame")
            return records, pos
        length, crc = _FRAME.unpack_from(data, pos)
        body_start = pos + _FRAME.size
        if length > MAX_PAYLOAD_BYTES or body_start + length > end:
            if strict:
                raise CorruptWALError(path, "invalid record length")
            return records, pos
        payload = data[body_start:body_start + length]
        if zlib.crc32(payload) != crc:
            if strict:
                raise CorruptWALError(path, "record checksum mismatch")
            return records, pos
        try:
            record = _decode_payload(payload, path)
        except CorruptWALError:
            if strict:
                raise
            return records, pos
        records.append(record)
        pos = body_start + length
    return records, pos


def read_segment(path: PathLike) -> SegmentInfo:
    """Parse one segment file without modifying it.

    Sealed segments (valid footer) are verified end to end; a CRC or
    structure failure inside one raises :class:`CorruptWALError`. An
    unsealed segment is scanned leniently: ``valid_bytes`` marks the
    torn-tail truncation point and ``records`` holds the intact prefix.
    """
    path = os.fspath(path)
    match = _FILE_RE.match(os.path.basename(path))
    index = int(match.group(1)) if match else -1
    with open(path, "rb") as fh:
        data = fh.read()
    base_seq, header_end = _parse_header(data, path)
    info = SegmentInfo(
        path=path, index=index, base_seq=base_seq, size=len(data)
    )
    if (
        len(data) >= header_end + FOOTER_BYTES
        and data[-len(SEGMENT_FOOTER_MAGIC):] == SEGMENT_FOOTER_MAGIC
    ):
        (stored,) = _CRC.unpack(data[-FOOTER_BYTES:-len(SEGMENT_FOOTER_MAGIC)])
        if stored == zlib.crc32(data[:-FOOTER_BYTES]):
            records, _ = _scan_records(
                data, header_end, len(data) - FOOTER_BYTES, path, strict=True
            )
            info.records = records
            info.sealed = True
            info.valid_bytes = len(data)
            return info
        # Footer magic present but CRC wrong: either a torn footer write
        # or payload damage. Fall through to the lenient scan — the
        # caller decides whether lenient treatment is allowed (it is not
        # for non-newest segments, which must be sealed).
    records, valid_end = _scan_records(
        data, header_end, len(data), path, strict=False
    )
    info.records = records
    info.valid_bytes = valid_end
    return info


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------
@dataclass
class WalRecovery:
    """Outcome of :func:`recover_wal`."""

    records: List[WalRecord] = field(default_factory=list)
    last_seq: int = 0                  # highest seq surviving on disk
    segments: int = 0                  # segment files examined
    truncated_bytes: int = 0           # torn tail cut from the active seg
    truncated_path: Optional[str] = None
    discarded_segments: List[str] = field(default_factory=list)
    skipped_segments: List[str] = field(default_factory=list)

    def events(self) -> List[Tuple[str, int, int]]:
        """Replayable ``(op, u, v)`` tuples in seq order."""
        return [record.event() for record in self.records]


def recover_wal(directory: PathLike, from_seq: int = 1) -> WalRecovery:
    """Scan a WAL directory, repair the active tail, return the replay.

    ``from_seq`` is the first sequence number the caller still needs
    (its snapshot checkpoint covers everything below). Guarantees:

    * the returned records are exactly the surviving records with
      ``seq >= from_seq``, in strictly contiguous seq order — a gap in
      needed records raises :class:`CorruptWALError`;
    * the *newest* segment's torn tail (bytes that never completed an
      fsynced append, or a half-written footer) is truncated in place;
      a newest segment whose header never made it to disk is discarded;
    * every older segment must carry a valid sealed footer. A damaged
      sealed segment raises :class:`CorruptWALError` unless the caller's
      ``from_seq`` proves the replay never enters it (then it is skipped
      and reported in ``skipped_segments``).
    """
    if from_seq < 1:
        raise ValueError("from_seq must be >= 1")
    directory = os.fspath(directory)
    segments = list_segments(directory)
    recovery = WalRecovery(segments=len(segments))
    if not segments:
        recovery.last_seq = from_seq - 1 if from_seq > 1 else 0
        return recovery
    # Each non-final segment's coverage ends where its successor begins,
    # so a damaged sealed segment can be classified without parsing it.
    next_base: List[Optional[int]] = []
    for position, (_, path) in enumerate(segments):
        if position + 1 < len(segments):
            with open(segments[position + 1][1], "rb") as fh:
                head = fh.read(32)
            try:
                base, _ = _parse_header(head, segments[position + 1][1])
            except CorruptWALError:
                base = None
            next_base.append(base)
        else:
            next_base.append(None)

    last_seq = 0
    for position, (_, path) in enumerate(segments):
        final = position == len(segments) - 1
        try:
            info = read_segment(path)
        except (CorruptWALError, OSError) as exc:
            if final:
                # The newest segment's header never hit the disk (the
                # crash beat the post-create fsync): no record in it was
                # ever acknowledged, so the file is safe to discard.
                os.unlink(path)
                fsync_directory(directory)
                recovery.discarded_segments.append(path)
                continue
            successor_base = next_base[position]
            if successor_base is not None and successor_base <= from_seq:
                recovery.skipped_segments.append(path)
                continue
            raise CorruptWALError(
                path, f"damaged sealed segment needed for replay ({exc})"
            ) from exc
        if not final and not info.sealed:
            successor_base = next_base[position]
            if successor_base is not None and successor_base <= from_seq:
                recovery.skipped_segments.append(path)
                continue
            raise CorruptWALError(
                path,
                "non-final segment is not sealed but its records are "
                "needed for replay",
            )
        if final and info.torn_bytes:
            with open(path, "r+b") as fh:
                fh.truncate(info.valid_bytes)
                fh.flush()
                os.fsync(fh.fileno())
            fsync_directory(directory)
            recovery.truncated_bytes = info.torn_bytes
            recovery.truncated_path = path
        for record in info.records:
            if record.seq > last_seq:
                last_seq = record.seq
            if record.seq < from_seq:
                continue
            expected = (
                from_seq if not recovery.records
                else recovery.records[-1].seq + 1
            )
            if record.seq != expected:
                raise CorruptWALError(
                    path,
                    f"sequence gap: expected {expected}, found {record.seq}",
                )
            recovery.records.append(record)
    recovery.last_seq = max(last_seq, from_seq - 1)
    return recovery


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
class WalWriter:
    """Appends acknowledged-durable records to a segmented WAL.

    Run :func:`recover_wal` on the directory first; hand its
    ``last_seq`` in so sequence numbering continues where the log left
    off. The writer reopens the newest unsealed segment for append (the
    recovery scan has already truncated any torn tail) or starts a new
    one.

    ``fsync=False`` trades the durability guarantee for speed — only
    for tests and benchmarks; the service default keeps it on, and
    :meth:`append` does not return (= the events are not *acked*) until
    the batch is flushed and fsynced.
    """

    def __init__(
        self,
        directory: PathLike,
        *,
        last_seq: int = 0,
        segment_max_bytes: int = 1 << 20,
        fsync: bool = True,
    ) -> None:
        if segment_max_bytes < 1024:
            raise ValueError("segment_max_bytes must be >= 1024")
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.segment_max_bytes = segment_max_bytes
        self.fsync = fsync
        self._last_seq = int(last_seq)
        self._fh: Optional[IO[bytes]] = None
        self._crc = 0                # running CRC of the active segment
        self._bytes = 0              # bytes written to the active segment
        self._index = 0              # active segment index
        self._base_seq = self._last_seq + 1
        self.rotations = 0
        self._closed = False
        self._open_active()

    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._last_seq

    @property
    def next_seq(self) -> int:
        """Sequence number the next appended record will get."""
        return self._last_seq + 1

    @property
    def active_segment(self) -> str:
        """Path of the segment currently being appended to."""
        return segment_path(self.directory, self._index)

    def segment_count(self) -> int:
        """Number of segment files currently on disk."""
        return len(list_segments(self.directory))

    # ------------------------------------------------------------------
    def _open_active(self) -> None:
        segments = list_segments(self.directory)
        if segments:
            index, path = segments[-1]
            info = read_segment(path)
            if not info.sealed and info.torn_bytes == 0 \
                    and info.size < self.segment_max_bytes:
                # Resume the unsealed tail segment.
                self._index = index
                with open(path, "rb") as fh:
                    self._crc = zlib.crc32(fh.read())
                self._bytes = info.size
                self._base_seq = info.base_seq
                self._fh = open(path, "ab")
                return
            if not info.sealed:
                # Full (or still-torn) unsealed segment: seal it so the
                # next recovery verifies it end to end.
                if info.torn_bytes:
                    raise CorruptWALError(
                        path,
                        "torn tail present; run recover_wal() before "
                        "opening a writer",
                    )
                self._seal_file(path)
            self._index = index + 1
        else:
            self._index = 1
        self._create_segment()

    def _create_segment(self) -> None:
        self._base_seq = self._last_seq + 1
        path = segment_path(self.directory, self._index)
        header = _encode_header(self._base_seq)
        fh = open(path, "wb")
        fh.write(header)
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
        fsync_directory(self.directory)
        self._fh = fh
        self._crc = zlib.crc32(header)
        self._bytes = len(header)

    def _seal_file(self, path: str) -> None:
        """Append a footer to a closed segment file (used on resume)."""
        with open(path, "r+b") as fh:
            data = fh.read()
            fh.write(_CRC.pack(zlib.crc32(data)))
            fh.write(SEGMENT_FOOTER_MAGIC)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        fsync_directory(self.directory)

    # ------------------------------------------------------------------
    def append(
        self, events: Sequence[Tuple[str, int, int]]
    ) -> Tuple[int, int]:
        """Durably append a batch; returns ``(first_seq, last_seq)``.

        The whole batch is written in one OS write and fsynced once —
        the fsync-per-batch amortization that makes per-event durability
        affordable. When this method returns, every event in the batch
        is acknowledged-durable.
        """
        if self._closed:
            raise RuntimeError("WalWriter is closed")
        if not events:
            return (self._last_seq + 1, self._last_seq)
        first = self._last_seq + 1
        chunk = bytearray()
        seq = self._last_seq
        for op, u, v in events:
            seq += 1
            chunk += _encode_record(seq, op, int(u), int(v))
        assert self._fh is not None
        self._fh.write(chunk)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._crc = zlib.crc32(chunk, self._crc)
        self._bytes += len(chunk)
        self._last_seq = seq
        if self._bytes >= self.segment_max_bytes:
            self.rotate()
        return (first, seq)

    def rotate(self) -> str:
        """Seal the active segment and start the next one.

        Ordering is what makes recovery's classification sound: footer
        write + fsync first, *then* the new segment's header — a crash
        anywhere in between leaves either a sealed final segment or a
        sealed segment plus an empty-headered successor.
        """
        if self._closed:
            raise RuntimeError("WalWriter is closed")
        assert self._fh is not None
        sealed = self.active_segment
        self._fh.write(_CRC.pack(self._crc))
        self._fh.write(SEGMENT_FOOTER_MAGIC)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._fh.close()
        fsync_directory(self.directory)
        self._index += 1
        self._create_segment()
        self.rotations += 1
        return sealed

    def prune_through(self, seq: int) -> List[str]:
        """Delete sealed segments whose records are all ``<= seq``.

        Called after a snapshot checkpoint lands: replay will never need
        records the checkpoint covers. The active segment is never
        deleted. Returns the removed paths.
        """
        removed: List[str] = []
        segments = list_segments(self.directory)
        for position, (index, path) in enumerate(segments):
            if index == self._index or position + 1 >= len(segments):
                break
            # A segment's coverage ends where its successor begins, so
            # it is prunable iff successor_base - 1 <= seq.
            next_path = segments[position + 1][1]
            with open(next_path, "rb") as fh:
                head = fh.read(32)
            base, _ = _parse_header(head, next_path)
            if base - 1 > seq:
                break
            os.unlink(path)
            removed.append(path)
        if removed:
            fsync_directory(self.directory)
        return removed

    # ------------------------------------------------------------------
    def close(self, seal: bool = True) -> None:
        """Flush, optionally seal the active segment, and close.

        Sealing on clean shutdown upgrades the final segment to the
        fully-verified class on the next recovery.
        """
        if self._closed:
            return
        self._closed = True
        if self._fh is None:
            return
        if seal:
            self._fh.write(_CRC.pack(self._crc))
            self._fh.write(SEGMENT_FOOTER_MAGIC)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._fh.close()
        self._fh = None
        fsync_directory(self.directory)

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def iter_wal(
    directory: PathLike, from_seq: int = 1
) -> Iterator[WalRecord]:
    """Read-only iteration over surviving records (no tail repair)."""
    for _, path in list_segments(directory):
        info = read_segment(path)
        for record in info.records:
            if record.seq >= from_seq:
                yield record
