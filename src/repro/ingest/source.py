"""Event sources feeding an :class:`~repro.ingest.IngestService`.

Two producers cover the CLI's ``ingest`` subcommand:

* :func:`feed_stream_file` replays a recorded ``+ u v`` / ``- u v``
  stream file (see :func:`repro.streaming.read_stream`). Stream position
  and WAL sequence numbers advance in lockstep — event *i* of the file
  gets seq *i* — so a restarted feeder resumes exactly where the
  recovered service left off by skipping the first ``last_seq`` events.
* :class:`IngestListener` accepts live events over TCP, one per line,
  and replies ``ack <seq>`` only after the event is durable (the
  at-least-once handshake end to end: a client that never saw the ack
  resubmits, and replay idempotence absorbs the duplicate).
"""

from __future__ import annotations

import logging
import os
import socket
import socketserver
import threading
from typing import Callable, List, Optional, Tuple, Union

from ..errors import IngestOverloadError
from ..streaming import read_stream
from .service import Ack, IngestService

__all__ = ["feed_stream_file", "IngestListener"]

logger = logging.getLogger("repro.ingest")


def feed_stream_file(
    service: IngestService,
    path: Union[str, "os.PathLike[str]"],
    *,
    start_index: int = 0,
    progress: Optional[Callable[[int], None]] = None,
) -> int:
    """Submit a stream file's events; returns how many were submitted.

    ``start_index`` events are skipped from the front — pass the
    recovered service's ``last_seq`` so a resumed run continues from the
    first un-logged event instead of re-submitting the whole file
    (re-submitting would also be *correct*, just wasteful: duplicate
    seqs never happen because the service assigns fresh ones, and MoSSo
    treats repeated inserts/deletes of the same live/absent edge as
    no-ops only when they truly are — so resume-by-skip is the exact
    protocol, not an optimization of an approximation).
    """
    if start_index < 0:
        raise ValueError("start_index must be non-negative")
    submitted = 0
    for position, (op, u, v) in enumerate(read_stream(path)):
        if position < start_index:
            continue
        service.submit(op, u, v, block=True)
        submitted += 1
        if progress is not None:
            progress(position + 1)
    return submitted


class _IngestHandler(socketserver.StreamRequestHandler):
    """Line protocol: ``+ u v`` / ``- u v`` → ``ack <seq>``; ``ping`` → ``pong``."""

    def handle(self) -> None:  # noqa: D102 - socketserver contract
        service: IngestService = self.server.service  # type: ignore[attr-defined]
        wait_acks: bool = self.server.wait_acks  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            if line == "ping":
                self._reply("pong")
                continue
            if line == "quit":
                self._reply("bye")
                return
            parts = line.split()
            if len(parts) != 3 or parts[0] not in ("+", "-"):
                self._reply(f"err expected '+/- u v', got {line!r}")
                continue
            try:
                u, v = int(parts[1]), int(parts[2])
                if u < 0 or v < 0:
                    raise ValueError("negative node id")
            except ValueError as exc:
                self._reply(f"err {exc}")
                continue
            try:
                ack = service.submit(parts[0], u, v, block=False)
            except IngestOverloadError:
                self._reply("err overloaded; retry later")
                continue
            except RuntimeError as exc:
                self._reply(f"err {exc}")
                continue
            if wait_acks:
                try:
                    seq = ack.wait(timeout=30.0)
                except BaseException as exc:  # noqa: BLE001 - report, keep conn
                    self._reply(f"err {exc}")
                    continue
                self._reply(f"ack {seq}")
            else:
                self._reply("ok")

    def _reply(self, text: str) -> None:
        try:
            self.wfile.write((text + "\n").encode("utf-8"))
            self.wfile.flush()
        except OSError:
            pass


class _IngestServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class IngestListener:
    """TCP front door for live edge events.

    One line per event; the reply ``ack <seq>`` is sent only after the
    event's WAL batch is fsynced (``wait_acks=False`` downgrades to an
    immediate ``ok`` for fire-and-forget producers). Start/stop it
    around the service's own lifecycle::

        with IngestService.open(wal_dir, num_nodes=n)[0] as svc:
            listener = IngestListener(svc, port=0).start()
            ...
            listener.stop()
    """

    def __init__(
        self,
        service: IngestService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        wait_acks: bool = True,
    ) -> None:
        self.service = service
        self._server = _IngestServer((host, port), _IngestHandler)
        self._server.service = service  # type: ignore[attr-defined]
        self._server.wait_acks = wait_acks  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (port resolved when 0)."""
        return self._server.server_address[:2]

    def start(self) -> "IngestListener":
        """Serve connections on a daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("listener already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-ingest-listener",
            daemon=True,
        )
        self._thread.start()
        logger.info("ingest listener on %s:%d", *self.address)
        return self

    def stop(self) -> None:
        """Stop accepting, close the socket, and join the thread."""
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "IngestListener":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def send_events(
    address: Tuple[str, int],
    events: List[Tuple[str, int, int]],
    *,
    timeout: float = 30.0,
) -> List[int]:
    """Blocking client helper: submit events, return their acked seqs.

    Mostly for tests and scripts; raises :class:`RuntimeError` on any
    ``err`` reply (nothing after the failed event was submitted).
    """
    seqs: List[int] = []
    with socket.create_connection(address, timeout=timeout) as sock:
        fh = sock.makefile("rwb")
        for op, u, v in events:
            fh.write(f"{op} {u} {v}\n".encode("utf-8"))
            fh.flush()
            reply = fh.readline().decode("utf-8").strip()
            if reply.startswith("ack "):
                seqs.append(int(reply.split()[1]))
            elif reply == "ok":
                continue
            else:
                raise RuntimeError(f"ingest listener refused event: {reply}")
    return seqs
