"""Crash-safe online summarization: WAL → summarizer → snapshot → swap.

:class:`IngestService` turns the batch LDME reproduction into a
continuously self-updating service. One pipeline thread owns the whole
write path, which is what makes every guarantee simple to state:

1. producers :meth:`submit` edge events into a **bounded queue**
   (backpressure: block, or reject with
   :class:`~repro.errors.IngestOverloadError`);
2. the pipeline drains the queue in batches, appends each batch to the
   segmented :class:`~repro.ingest.wal.WalWriter` and **fsyncs — that
   is the acknowledgement point**; every :class:`Ack` in the batch
   resolves with its sequence number;
3. the batch is applied to the :class:`~repro.streaming.DynamicSummarizer`
   (MoSSo-style incremental updates, near-constant time per event);
4. every ``snapshot_every`` applied events the pipeline compiles a
   snapshot — the summarizer state lands in a
   :class:`~repro.resilience.CheckpointManager` checkpoint *pinned to
   its sequence number*, fully-covered WAL segments are pruned, and the
   compiled index is hot-swapped into an attached
   :class:`~repro.serve.SummaryCluster` via its generation-tracked
   ``rolling_swap`` — replicas keep answering (degraded/stale semantics)
   throughout, so a swap is zero-downtime by construction.

**Recovery** (:meth:`IngestService.open`) inverts the write path: load
the newest good checkpoint, rebuild the summarizer bit-identically
(:meth:`DynamicSummarizer.from_state` restores the RNG), then replay the
WAL from the checkpoint's pinned sequence number. Replay is idempotent
(records at or below the pinned seq are skipped) and gap-checked, so a
recovered service is *bit-identical* to one that never crashed — the
property the ``ingest-chaos`` CI gate SIGKILLs its way through.

Observability: ``ingest_lag_events`` / ``wal_segments_active`` gauges,
``ingest_acked/applied/replayed/rejected/snapshots/swaps_total``
counters — mirrored to :mod:`repro.obs.metrics` when a registry is
installed, rendered by :meth:`IngestService.prometheus` — plus
``ingest.recover`` / ``ingest.snapshot`` / ``ingest.swap`` spans on the
active tracer.
"""

from __future__ import annotations

import logging
import os
import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..errors import CheckpointError, IngestOverloadError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..resilience.checkpoint import CheckpointManager
from ..serve.metrics import MetricsRegistry
from ..streaming import STREAM_PAYLOAD_KIND, DynamicSummarizer
from .wal import WalRecovery, WalWriter, recover_wal

__all__ = [
    "Ack",
    "IngestService",
    "RecoveryReport",
    "INGEST_PAYLOAD_KIND",
]

logger = logging.getLogger("repro.ingest")

Event = Tuple[str, int, int]

#: ``kind`` tag on ingest-service checkpoint payloads.
INGEST_PAYLOAD_KIND = "ingest-service"

_STOP = object()     # pipeline sentinel


class Ack:
    """Durability receipt for one submitted event.

    Resolves once the event's WAL batch is fsynced. :meth:`wait` returns
    the assigned sequence number, or raises the pipeline error that
    prevented the append (the event was then *not* acknowledged).
    """

    __slots__ = ("_done", "seq", "error")

    def __init__(self) -> None:
        self._done = threading.Event()
        self.seq: Optional[int] = None
        self.error: Optional[BaseException] = None

    def _resolve(self, seq: int) -> None:
        self.seq = seq
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self.error = error
        self._done.set()

    @property
    def done(self) -> bool:
        """Whether the ack has resolved (successfully or not)."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> int:
        """Block until durable; returns the sequence number."""
        if not self._done.wait(timeout):
            raise TimeoutError("event not acknowledged in time")
        if self.error is not None:
            raise self.error
        assert self.seq is not None
        return self.seq


@dataclass
class RecoveryReport:
    """What :meth:`IngestService.open` found and did."""

    checkpoint_seq: int = 0            # pinned seq of the loaded snapshot
    checkpoint_path: Optional[str] = None
    skipped_checkpoints: List[str] = field(default_factory=list)
    replayed: int = 0                  # WAL records applied on top
    last_seq: int = 0                  # resume point: next event is +1
    wal: Optional[WalRecovery] = None

    def describe(self) -> str:
        """One human-readable line summarizing how recovery went."""
        parts = [
            f"checkpoint seq {self.checkpoint_seq}",
            f"replayed {self.replayed} WAL event(s)",
            f"resuming at seq {self.last_seq + 1}",
        ]
        if self.wal is not None and self.wal.truncated_bytes:
            parts.append(
                f"truncated {self.wal.truncated_bytes}B torn tail"
            )
        if self.skipped_checkpoints:
            parts.append(
                f"skipped {len(self.skipped_checkpoints)} bad checkpoint(s)"
            )
        return ", ".join(parts)


class IngestService:
    """Durable streaming ingestion in front of a dynamic summarizer.

    Parameters
    ----------
    summarizer:
        The (recovered) :class:`~repro.streaming.DynamicSummarizer`.
    wal_dir:
        Write-ahead-log directory. Run :func:`~repro.ingest.wal.recover_wal`
        (or use :meth:`open`, which does) before constructing.
    last_seq:
        Sequence number already durable+applied; numbering continues at
        ``last_seq + 1``.
    checkpoint_dir:
        Snapshot checkpoints (defaults to ``<wal_dir>/checkpoints``).
    snapshot_every:
        Applied events between automatic snapshots (0 = only explicit
        :meth:`snapshot_now` / final-stop snapshots).
    cluster:
        Optional :class:`~repro.serve.SummaryCluster` (or anything with
        ``rolling_swap``); each snapshot's compiled index is rolled
        across it with zero downtime.
    queue_max / batch_max:
        Backpressure bound on accepted-but-unlogged events, and the
        largest batch one fsync acknowledges.
    segment_max_bytes / fsync:
        Forwarded to :class:`~repro.ingest.wal.WalWriter`.
    on_ack:
        Callback ``(first_seq, last_seq)`` fired after each batch
        becomes durable — the hook external ack channels (the TCP
        source, the CLI ack log) attach to.
    registry:
        Metrics registry (a fresh one by default); also mirrored to the
        module-level :mod:`repro.obs.metrics` seam.
    """

    def __init__(
        self,
        summarizer: DynamicSummarizer,
        wal_dir: Union[str, "os.PathLike[str]"],
        *,
        last_seq: int = 0,
        checkpoint_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
        snapshot_every: int = 0,
        cluster: Optional[object] = None,
        queue_max: int = 4096,
        batch_max: int = 512,
        segment_max_bytes: int = 1 << 20,
        fsync: bool = True,
        keep_checkpoints: int = 3,
        on_ack: Optional[Callable[[int, int], None]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if snapshot_every < 0:
            raise ValueError("snapshot_every must be non-negative")
        if queue_max < 1 or batch_max < 1:
            raise ValueError("queue_max and batch_max must be positive")
        self.summarizer = summarizer
        self.wal_dir = os.fspath(wal_dir)
        self.checkpoint_dir = os.fspath(
            checkpoint_dir
            if checkpoint_dir is not None
            else os.path.join(self.wal_dir, "checkpoints")
        )
        self.snapshot_every = snapshot_every
        self.cluster = cluster
        self.batch_max = batch_max
        self.on_ack = on_ack
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.wal = WalWriter(
            self.wal_dir,
            last_seq=last_seq,
            segment_max_bytes=segment_max_bytes,
            fsync=fsync,
        )
        self.checkpoints = CheckpointManager(
            self.checkpoint_dir, keep=keep_checkpoints
        )
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=queue_max)
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._submitted = 0
        self._processed = 0            # acked-or-failed events
        self.applied_seq = last_seq    # highest seq applied to summarizer
        self._since_snapshot = 0
        self.last_snapshot_seq = last_seq
        self._accepting = False
        self._stopped = False
        self._error: Optional[BaseException] = None
        # While a re-shard migration is in flight the pipeline also
        # copies every applied event here (post-ack, post-apply), so the
        # migration coordinator can replay writes that landed after its
        # build snapshot onto the new generation before cutting over.
        self._migration_buffer: Optional[List[Tuple[int, str, int, int]]] = None
        self.swap_reports: List[object] = []
        # Touch every counter so scrapes expose the full metric set from
        # the first request on, not only after the first event of each
        # kind (Prometheus rate() needs the zero sample).
        for name in ("ingest_acked_total", "ingest_applied_total",
                     "ingest_replayed_total", "ingest_rejected_total",
                     "ingest_snapshots_total"):
            self._inc(name, 0)
        self._set_gauges()

    # ------------------------------------------------------------------
    # construction / recovery
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        wal_dir: Union[str, "os.PathLike[str]"],
        *,
        num_nodes: int,
        escape_prob: float = 0.3,
        sample_size: int = 120,
        seed: int = 0,
        checkpoint_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
        **kwargs: Any,
    ) -> Tuple["IngestService", RecoveryReport]:
        """Recover (or bootstrap) a service from its durable state.

        Load the newest good snapshot checkpoint, rebuild the summarizer
        bit-identically, replay the WAL from the pinned sequence number,
        and return the ready-to-start service plus a
        :class:`RecoveryReport`. With no checkpoint the replay starts
        from sequence 1; with no WAL either, this is a fresh bootstrap.
        """
        wal_dir = os.fspath(wal_dir)
        ckpt_dir = os.fspath(
            checkpoint_dir
            if checkpoint_dir is not None
            else os.path.join(wal_dir, "checkpoints")
        )
        report = RecoveryReport()
        with obs_trace.span("ingest.recover", key="recover") as span:
            manager = CheckpointManager(ckpt_dir)
            loaded = manager.load_latest()
            if loaded is not None:
                payload = loaded.payload
                if (
                    not isinstance(payload, dict)
                    or payload.get("kind") != INGEST_PAYLOAD_KIND
                ):
                    raise CheckpointError(
                        f"{loaded.path}: not an {INGEST_PAYLOAD_KIND!r} "
                        f"checkpoint payload"
                    )
                summarizer = DynamicSummarizer.from_state(
                    payload["summarizer"]
                )
                report.checkpoint_seq = int(payload["seq"])
                report.checkpoint_path = loaded.path
                report.skipped_checkpoints = loaded.skipped
            else:
                summarizer = DynamicSummarizer(
                    num_nodes=num_nodes,
                    escape_prob=escape_prob,
                    sample_size=sample_size,
                    seed=seed,
                )
            recovery = recover_wal(wal_dir, from_seq=report.checkpoint_seq + 1)
            for record in recovery.records:
                summarizer.apply([record.event()])
            obs_metrics.inc("ingest_replayed_total", len(recovery.records))
            report.replayed = len(recovery.records)
            report.wal = recovery
            report.last_seq = max(recovery.last_seq, report.checkpoint_seq)
            span.set_attribute("checkpoint_seq", report.checkpoint_seq)
            span.set_attribute("replayed", report.replayed)
            span.set_attribute("truncated_bytes", recovery.truncated_bytes)
        service = cls(
            summarizer,
            wal_dir,
            last_seq=report.last_seq,
            checkpoint_dir=ckpt_dir,
            **kwargs,
        )
        service._inc("ingest_replayed_total", report.replayed)
        service.metrics.set_gauge("ingest_last_seq", report.last_seq)
        if report.replayed or report.checkpoint_seq:
            logger.info("ingest recovery: %s", report.describe())
        return service, report

    # ------------------------------------------------------------------
    # metrics plumbing
    # ------------------------------------------------------------------
    def _inc(self, name: str, amount: float = 1) -> None:
        self.metrics.inc(name, amount)
        obs_metrics.inc(name, amount)

    def _set_gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)
        obs_metrics.set_gauge(name, value)

    def _set_gauges(self) -> None:
        self._set_gauge("ingest_lag_events", self._queue.qsize())
        self._set_gauge("wal_segments_active", self.wal.segment_count())
        self._set_gauge("ingest_last_seq", self.applied_seq)
        self._set_gauge(
            "ingest_migration_buffered", len(self._migration_buffer or ())
        )

    def prometheus(self) -> str:
        """This service's metrics in the Prometheus text format."""
        self._set_gauges()
        return self.metrics.to_prometheus(prefix="repro_")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "IngestService":
        """Start the pipeline thread; the service begins accepting."""
        if self._thread is not None:
            raise RuntimeError("ingest service already started")
        if self._stopped:
            raise RuntimeError("ingest service already stopped")
        self._accepting = True
        self._thread = threading.Thread(
            target=self._run, name="repro-ingest-pipeline", daemon=True
        )
        self._thread.start()
        return self

    def submit(
        self,
        op: str,
        u: int,
        v: int,
        *,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> Ack:
        """Enqueue one event; returns its :class:`Ack`.

        With ``block=False`` (or a ``timeout`` that elapses) a full
        queue raises :class:`~repro.errors.IngestOverloadError` — the
        backpressure contract: the event was never logged and is not
        acknowledged.
        """
        if op not in ("+", "-"):
            raise ValueError(f"unknown stream op {op!r}")
        if not self._accepting:
            raise RuntimeError("ingest service is not accepting events")
        if self._error is not None:
            raise RuntimeError(
                "ingest pipeline failed"
            ) from self._error
        ack = Ack()
        item = (op, int(u), int(v), ack)
        with self._lock:
            self._submitted += 1
        try:
            self._queue.put(item, block=block, timeout=timeout)
        except queue.Full:
            with self._lock:
                self._submitted -= 1
            self._inc("ingest_rejected_total")
            raise IngestOverloadError(
                f"ingest queue full ({self._queue.maxsize} events lagging); "
                f"backpressure: retry later or shed"
            ) from None
        self._set_gauge("ingest_lag_events", self._queue.qsize())
        return ack

    def submit_many(
        self, events: Iterable[Event], *, block: bool = True
    ) -> List[Ack]:
        """Submit a batch in order; returns the acks."""
        return [self.submit(op, u, v, block=block) for op, u, v in events]

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until everything submitted so far is acked and applied."""
        with self._drained:
            return self._drained.wait_for(
                lambda: self._processed >= self._submitted, timeout
            )

    def stop(
        self,
        drain: bool = True,
        snapshot: bool = True,
        timeout: float = 30.0,
    ) -> None:
        """Drain, stop the pipeline, take a final snapshot, seal the WAL.

        The drain/stop protocol: new submits are rejected immediately,
        queued events are still logged+applied (unless ``drain=False``),
        then the pipeline exits, a final snapshot checkpoint pins the
        last applied sequence number, and the active segment is sealed
        so the next recovery verifies the whole log.
        """
        self._accepting = False
        if self._thread is not None:
            if drain:
                self.drain(timeout=timeout)
            self._queue.put(_STOP)
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                raise RuntimeError("ingest pipeline did not stop in time")
            self._thread = None
        if not self._stopped:
            if snapshot and self._error is None \
                    and self.applied_seq > self.last_snapshot_seq:
                self._snapshot()
            self._stopped = True
            self.wal.close(seal=True)
            self._set_gauge("wal_segments_active", self.wal.segment_count())

    def __enter__(self) -> "IngestService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # pipeline
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            batch = [item]
            while len(batch) < self.batch_max:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    self._process(batch)
                    return
                batch.append(extra)
            self._process(batch)

    def _process(self, batch: List[object]) -> None:
        events = [(op, u, v) for op, u, v, _ in batch]   # type: ignore[misc]
        acks = [ack for _, _, _, ack in batch]           # type: ignore[misc]
        try:
            first, last = self.wal.append(events)
        except BaseException as exc:  # noqa: BLE001 - acks must resolve
            self._error = exc
            for ack in acks:
                ack._fail(exc)
            with self._drained:
                self._processed += len(acks)
                self._drained.notify_all()
            logger.exception("ingest WAL append failed; pipeline halted")
            return
        # --- acknowledgement point: the batch is durable ---
        for offset, ack in enumerate(acks):
            ack._resolve(first + offset)
        self._inc("ingest_acked_total", len(acks))
        if self.on_ack is not None:
            try:
                self.on_ack(first, last)
            except Exception:  # noqa: BLE001 - ack hooks must not kill ingest
                logger.exception("on_ack callback failed")
        for seq, (op, u, v) in enumerate(events, start=first):
            if op == "+":
                self.summarizer.insert(u, v)
            else:
                self.summarizer.delete(u, v)
            self.applied_seq = seq
        with self._lock:
            if self._migration_buffer is not None:
                self._migration_buffer.extend(
                    (seq, op, u, v)
                    for seq, (op, u, v) in enumerate(events, start=first)
                )
        self._inc("ingest_applied_total", len(events))
        self._since_snapshot += len(events)
        with self._drained:
            self._processed += len(acks)
            self._drained.notify_all()
        self._set_gauge("ingest_lag_events", self._queue.qsize())
        self._set_gauge("ingest_last_seq", self.applied_seq)
        if self.snapshot_every and self._since_snapshot >= self.snapshot_every:
            try:
                self._snapshot()
            except Exception:  # noqa: BLE001 - snapshots retry next cadence
                logger.exception("ingest snapshot failed; will retry")
                self._inc("ingest_snapshot_failures_total")

    # ------------------------------------------------------------------
    # migration capture (repro.shard.migrate)
    # ------------------------------------------------------------------
    def begin_migration(self) -> None:
        """Start capturing applied events for a re-shard catch-up.

        From this point every event the pipeline applies (strictly after
        its WAL ack) is *also* copied into a side buffer. Durability is
        untouched — the WAL remains the source of truth for acked events
        — the buffer only spares the migration coordinator a full WAL
        diff when it replays post-snapshot writes onto the staged
        generation. Idempotent: calling again keeps the current buffer.
        """
        with self._lock:
            if self._migration_buffer is None:
                self._migration_buffer = []
        self._set_gauge("ingest_migration_buffered", 0)

    def take_migration_events(self) -> List[Tuple[int, str, int, int]]:
        """Drain the capture buffer: ``(seq, op, u, v)`` in apply order.

        Each call returns only events captured since the previous call,
        so the coordinator can loop take → replay until a round comes
        back empty (the catch-up has converged).
        """
        with self._lock:
            if self._migration_buffer is None:
                return []
            taken, self._migration_buffer = self._migration_buffer, []
        self._set_gauge("ingest_migration_buffered", 0)
        return taken

    def end_migration(self) -> List[Tuple[int, str, int, int]]:
        """Stop capturing; returns whatever was still buffered.

        Called on both commit and rollback. Any events returned here
        were acked into the WAL but not replayed onto the new
        generation's artifacts — they are *not* lost; the next snapshot
        (or recovery replay) folds them in.
        """
        with self._lock:
            remaining = self._migration_buffer or []
            self._migration_buffer = None
        self._set_gauge("ingest_migration_buffered", 0)
        return remaining

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot_now(self) -> str:
        """Force a snapshot from the caller's thread.

        Only safe while the pipeline is not running (before
        :meth:`start` or after :meth:`stop`); a live service snapshots
        on its own cadence inside the pipeline thread.
        """
        if self._thread is not None:
            raise RuntimeError(
                "snapshot_now on a running service; use snapshot_every"
            )
        return self._snapshot()

    def _snapshot(self) -> str:
        seq = self.applied_seq
        with obs_trace.span("ingest.snapshot", key=seq, seq=seq):
            payload = {
                "kind": INGEST_PAYLOAD_KIND,
                "seq": seq,
                "summarizer": self.summarizer.state_dict(),
            }
            path = self.checkpoints.save(seq, payload)
            self._since_snapshot = 0
            self.last_snapshot_seq = seq
            self._inc("ingest_snapshots_total")
            # Prune only past the *oldest retained* checkpoint: if the
            # newest file rots, recovery falls back to an older one and
            # must still find its WAL suffix intact.
            entries = self.checkpoints.entries()
            if entries:
                self.wal.prune_through(entries[0].iteration)
            self._set_gauge("wal_segments_active", self.wal.segment_count())
            if self.cluster is not None:
                self._swap(seq)
        return path

    def _swap(self, seq: int) -> None:
        with obs_trace.span("ingest.swap", key=seq, seq=seq):
            index = self.summarizer.snapshot_compiled()
            report = self.cluster.rolling_swap(index)
            self.swap_reports.append(report)
            if getattr(report, "ok", False):
                self._inc("ingest_swaps_total")
            else:
                self._inc("ingest_swap_failures_total")
                logger.warning(
                    "ingest swap at seq %d failed: %s",
                    seq, getattr(report, "error", report),
                )

    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """Structured snapshot of the service's state."""
        return {
            "accepting": self._accepting,
            "stopped": self._stopped,
            "applied_seq": self.applied_seq,
            "wal_last_seq": self.wal.last_seq,
            "last_snapshot_seq": self.last_snapshot_seq,
            "queue_depth": self._queue.qsize(),
            "wal_segments": self.wal.segment_count(),
            "num_edges": self.summarizer.num_edges,
            "num_supernodes": self.summarizer.num_supernodes,
            "migration_capturing": self._migration_buffer is not None,
            "swaps": len(self.swap_reports),
            "error": str(self._error) if self._error else None,
        }
