"""Graph sampling utilities.

The related-work section contrasts group-based summarization with
*sampling* approaches (Leskovec & Faloutsos; Maiya & Berger-Wolf; Hübler et
al.): keep a representative subgraph instead of a lossless summary. These
samplers provide that comparison point — e.g. measuring how badly a sampled
subgraph distorts degree statistics where the summary preserves them — and
double as preprocessing tools for huge inputs.

All samplers return ``(subgraph, original_ids)`` with the subgraph
relabelled to dense ids in the order of ``original_ids``.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from .graph import Graph

__all__ = ["node_sample", "edge_sample", "random_walk_sample"]

SeedLike = Union[int, np.random.Generator, None]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def node_sample(
    graph: Graph, fraction: float, seed: SeedLike = None
) -> Tuple[Graph, np.ndarray]:
    """Induced subgraph on a uniform node sample."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    rng = _rng(seed)
    count = max(1, int(round(graph.num_nodes * fraction)))
    picks = np.sort(rng.choice(graph.num_nodes, size=count, replace=False))
    return graph.subgraph(picks), picks


def edge_sample(
    graph: Graph, fraction: float, seed: SeedLike = None
) -> Tuple[Graph, np.ndarray]:
    """Subgraph induced by a uniform edge sample (nodes = edge endpoints)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    rng = _rng(seed)
    src, dst = graph.edge_arrays()
    if src.size == 0:
        return Graph.from_edges(0, []), np.empty(0, dtype=np.int64)
    count = max(1, int(round(src.size * fraction)))
    picks = rng.choice(src.size, size=count, replace=False)
    nodes = np.unique(np.concatenate([src[picks], dst[picks]]))
    remap = {int(node): i for i, node in enumerate(nodes)}
    edges = [
        (remap[int(src[i])], remap[int(dst[i])]) for i in picks.tolist()
    ]
    return Graph.from_edges(nodes.size, edges), nodes


def random_walk_sample(
    graph: Graph,
    num_nodes: int,
    restart_prob: float = 0.15,
    seed: SeedLike = None,
    max_steps: int = 1_000_000,
) -> Tuple[Graph, np.ndarray]:
    """Random walk with restart until ``num_nodes`` distinct nodes visited.

    The standard topology-preserving sampler: walks stay inside dense
    regions, restarts (probability ``restart_prob``) avoid getting stuck.
    Falls back to a fresh random start when the walk strands on an
    isolated node; stops early after ``max_steps``.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if not 0.0 <= restart_prob < 1.0:
        raise ValueError("restart_prob must be in [0, 1)")
    if graph.num_nodes == 0:
        return Graph.from_edges(0, []), np.empty(0, dtype=np.int64)
    rng = _rng(seed)
    target = min(num_nodes, graph.num_nodes)
    start = int(rng.integers(graph.num_nodes))
    visited = {start}
    current = start
    steps = 0
    while len(visited) < target and steps < max_steps:
        steps += 1
        neighbors = graph.neighbors(current)
        if neighbors.size == 0 or rng.random() < restart_prob:
            current = int(rng.integers(graph.num_nodes))
        else:
            current = int(neighbors[int(rng.integers(neighbors.size))])
        visited.add(current)
    nodes = np.sort(np.fromiter(visited, dtype=np.int64, count=len(visited)))
    return graph.subgraph(nodes), nodes
