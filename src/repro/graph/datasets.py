"""Synthetic surrogates for the paper's Table 1 datasets.

The paper evaluates on eight web/social crawls from the Laboratory of Web
Algorithmics (cnr-2000 … arabic-2005, up to 1.1 billion edges). Those files
are not available offline and pure Python cannot run billion-edge inputs in
this environment, so each dataset is replaced by a *scaled surrogate* with
the same qualitative structure: heavy-tailed degrees and host-block locality
(see ``DESIGN.md`` §4). The registry keeps the paper's true node/edge counts
alongside each surrogate so reports can show both.

Surrogates are deterministic: ``load(name)`` always returns the same graph
for a given package version (fixed seeds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .generators import rmat, web_host_graph
from .graph import Graph

__all__ = ["DatasetSpec", "DATASETS", "load", "names", "table1_rows"]


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 1 plus its surrogate recipe."""

    name: str            # paper dataset name, e.g. "cnr-2000"
    abbrev: str          # paper abbreviation, e.g. "CN"
    paper_nodes: int     # node count reported in Table 1
    paper_edges: int     # symmetrized edge count reported in Table 1
    size_class: str      # "small" | "medium" | "large"
    factory: Callable[[], Graph]  # builds the surrogate

    def load(self) -> Graph:
        """Build (deterministically) the scaled surrogate graph."""
        return self.factory()


def _surrogate(scale: int, edge_factor: int, seed: int) -> Callable[[], Graph]:
    """R-MAT surrogate recipe: skewed web-like graph, 2**scale nodes."""

    def factory() -> Graph:
        return rmat(scale=scale, edge_factor=edge_factor, seed=seed)

    return factory


def _host_surrogate(
    num_hosts: int, host_size: int, links: int, seed: int
) -> Callable[[], Graph]:
    """Host/template surrogate recipe: strong locality and link-set
    redundancy (the structure group-based summarizers compress well)."""

    def factory() -> Graph:
        return web_host_graph(
            num_hosts=num_hosts,
            host_size=host_size,
            links_per_template=links,
            inter_edges_per_host=6,
            seed=seed,
        )

    return factory


def _community_surrogate(
    num_hosts: int, host_size: int, links: int, mutation: float, seed: int
) -> Callable[[], Graph]:
    """Dense-community surrogate (collaboration-network flavour): template
    copying with a higher mutation rate, so neighbourhoods are *near*
    duplicates rather than exact ones — the regime where the DOPH ``k``
    dial visibly trades group size for group count (Figure 4)."""

    def factory() -> Graph:
        return web_host_graph(
            num_hosts=num_hosts,
            host_size=host_size,
            links_per_template=links,
            mutation_prob=mutation,
            inter_edges_per_host=8,
            seed=seed,
        )

    return factory


# Scaled surrogates. Sizes grow in the same order as the paper's datasets so
# relative comparisons ("SWeG cannot finish the large ones") keep their shape.
_SPECS: List[DatasetSpec] = [
    DatasetSpec("cnr-2000", "CN", 325_557, 5_565_380, "small",
                _host_surrogate(num_hosts=40, host_size=30, links=8, seed=11)),
    DatasetSpec("in-2004", "IN", 1_382_908, 27_560_356, "medium",
                _surrogate(scale=11, edge_factor=8, seed=12)),
    DatasetSpec("eu-2005", "EU", 862_664, 32_778_363, "medium",
                _host_surrogate(num_hosts=60, host_size=40, links=10, seed=13)),
    DatasetSpec("hollywood-2009", "H1", 1_139_905, 113_891_327, "medium",
                _community_surrogate(num_hosts=80, host_size=50, links=14,
                                     mutation=0.05, seed=14)),
    DatasetSpec("hollywood-2011", "H2", 2_180_759, 228_985_632, "large",
                _community_surrogate(num_hosts=140, host_size=60, links=16,
                                     mutation=0.05, seed=15)),
    DatasetSpec("indochina-2004", "IC", 7_414_866, 304_472_122, "large",
                _host_surrogate(num_hosts=160, host_size=55, links=16, seed=16)),
    DatasetSpec("uk-2002", "UK", 18_520_486, 529_444_615, "large",
                _surrogate(scale=14, edge_factor=12, seed=17)),
    DatasetSpec("arabic-2005", "AR", 22_744_080, 1_116_651_935, "large",
                _surrogate(scale=14, edge_factor=18, seed=18)),
]

DATASETS: Dict[str, DatasetSpec] = {spec.abbrev: spec for spec in _SPECS}
# Allow lookup by full paper name, too.
DATASETS.update({spec.name: spec for spec in _SPECS})


def names() -> List[str]:
    """Canonical abbreviations in Table 1 order."""
    return [spec.abbrev for spec in _SPECS]


def load(name: str) -> Graph:
    """Load a surrogate by abbreviation ("CN") or paper name ("cnr-2000")."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(names())}"
        ) from None
    return spec.load()


def table1_rows() -> List[Tuple[str, str, int, int, int, int]]:
    """Rows of (name, abbrev, paper nodes, paper edges, surrogate nodes,
    surrogate edges) for Table 1 reporting."""
    rows = []
    for spec in _SPECS:
        graph = spec.load()
        rows.append(
            (spec.name, spec.abbrev, spec.paper_nodes, spec.paper_edges,
             graph.num_nodes, graph.num_edges)
        )
    return rows
