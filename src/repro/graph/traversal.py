"""Traversals, decompositions and orderings over CSR graphs.

Supporting algorithms the summarizers and baselines lean on:

* :func:`bfs_distances`, :func:`shortest_path` — plain traversal.
* :func:`k_core` / :func:`core_numbers` — degeneracy peeling; dense cores
  are prime summarization targets and VoG candidate material.
* :func:`clustering_coefficient` — local triangle density.
* :func:`slashburn` — the hub-removal ordering of Lim/Kang/Faloutsos that
  the original VoG uses to generate candidate subgraphs: repeatedly remove
  the top-``k`` hubs, spin off the small disconnected components ("spokes"),
  and recurse on the giant connected component.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from .graph import Graph

__all__ = [
    "bfs_distances",
    "shortest_path",
    "core_numbers",
    "k_core",
    "clustering_coefficient",
    "slashburn",
]


def bfs_distances(graph: Graph, source: int) -> Dict[int, int]:
    """Hop distance from ``source`` to every reachable node."""
    if not 0 <= source < graph.num_nodes:
        raise IndexError(f"source {source} out of range")
    distances = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v).tolist():
            if u not in distances:
                distances[u] = distances[v] + 1
                queue.append(u)
    return distances


def shortest_path(graph: Graph, source: int, target: int) -> Optional[List[int]]:
    """One shortest path from ``source`` to ``target`` (None if unreachable)."""
    if not (0 <= source < graph.num_nodes and 0 <= target < graph.num_nodes):
        raise IndexError("endpoint out of range")
    if source == target:
        return [source]
    parent = {source: source}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v).tolist():
            if u in parent:
                continue
            parent[u] = v
            if u == target:
                path = [u]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                return path[::-1]
            queue.append(u)
    return None


def core_numbers(graph: Graph) -> np.ndarray:
    """Core number of every node (lazy-heap degeneracy peeling).

    Nodes are removed in order of current degree; a node's core number is
    the highest minimum-degree threshold at which it survives.
    """
    import heapq

    n = graph.num_nodes
    current = graph.degrees().astype(np.int64)
    cores = np.zeros(n, dtype=np.int64)
    removed = np.zeros(n, dtype=bool)
    heap = [(int(current[v]), v) for v in range(n)]
    heapq.heapify(heap)
    level = 0
    while heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != current[v]:
            continue  # stale entry
        level = max(level, d)
        cores[v] = level
        removed[v] = True
        for u in graph.neighbors(v).tolist():
            if not removed[u]:
                current[u] -= 1
                heapq.heappush(heap, (int(current[u]), u))
    return cores


def k_core(graph: Graph, k: int) -> np.ndarray:
    """Node ids of the maximal subgraph with minimum degree >= ``k``."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return np.flatnonzero(core_numbers(graph) >= k)


def clustering_coefficient(graph: Graph, v: int) -> float:
    """Fraction of ``v``'s neighbour pairs that are themselves adjacent."""
    neighbors = graph.neighbors(v).tolist()
    d = len(neighbors)
    if d < 2:
        return 0.0
    nbr_set = set(neighbors)
    links = 0
    for u in neighbors:
        links += sum(1 for w in graph.neighbors(u).tolist()
                     if w in nbr_set and w > u)
    return 2.0 * links / (d * (d - 1))


def slashburn(
    graph: Graph, hub_count: int = 1, max_rounds: int = 10_000
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """SlashBurn hub-removal ordering.

    Repeatedly: remove the ``hub_count`` highest-degree remaining nodes
    ("slash"), collect the non-giant connected components that break off
    ("burn", the *spokes*), keep going on the giant component. Returns the
    hub ordering (hubs first, in removal order) and the list of spoke
    components (as arrays of node ids) — the original VoG's candidate pool.
    """
    if hub_count < 1:
        raise ValueError("hub_count must be >= 1")
    n = graph.num_nodes
    alive = np.ones(n, dtype=bool)
    degree = graph.degrees().astype(np.int64)
    hubs: List[int] = []
    spokes: List[np.ndarray] = []
    for _ in range(max_rounds):
        alive_ids = np.flatnonzero(alive)
        if alive_ids.size == 0:
            break
        # Slash: remove the current top hubs.
        order = alive_ids[np.argsort(degree[alive_ids])[::-1]]
        round_hubs = order[:hub_count].tolist()
        for hub in round_hubs:
            hubs.append(int(hub))
            alive[hub] = False
            for u in graph.neighbors(hub).tolist():
                if alive[u]:
                    degree[u] -= 1
        # Burn: find components among survivors; keep only the giant one.
        components = _alive_components(graph, alive)
        if not components:
            break
        components.sort(key=len, reverse=True)
        giant = components[0]
        for component in components[1:]:
            spokes.append(np.asarray(component, dtype=np.int64))
            for v in component:
                alive[v] = False
        if len(giant) <= hub_count:
            spokes.append(np.asarray(giant, dtype=np.int64))
            for v in giant:
                alive[v] = False
    return np.asarray(hubs, dtype=np.int64), spokes


def _alive_components(graph: Graph, alive: np.ndarray) -> List[List[int]]:
    """Connected components of the subgraph induced by ``alive`` nodes."""
    seen = np.zeros(graph.num_nodes, dtype=bool)
    components: List[List[int]] = []
    for start in np.flatnonzero(alive).tolist():
        if seen[start]:
            continue
        seen[start] = True
        component = [start]
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v).tolist():
                if alive[u] and not seen[u]:
                    seen[u] = True
                    component.append(u)
                    queue.append(u)
        components.append(component)
    return components
