"""Graph transformations: the preprocessing toolbox.

Real pipelines rarely summarize a graph exactly as ingested — they extract
the giant component, drop low-degree fringe, relabel to a dense id space,
or combine snapshots. These operations all return new immutable
:class:`~repro.graph.graph.Graph` objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from .graph import Graph
from .stats import connected_components

__all__ = [
    "largest_component",
    "filter_min_degree",
    "relabel",
    "compact",
    "union",
    "difference",
    "remove_edges",
    "add_edges",
]

Edge = Tuple[int, int]


def largest_component(graph: Graph) -> Tuple[Graph, np.ndarray]:
    """The induced subgraph on the largest connected component.

    Returns ``(subgraph, original_ids)`` where ``original_ids[i]`` is the
    input-graph id of the subgraph's node ``i``.
    """
    components = connected_components(graph)
    if not components:
        return Graph.from_edges(0, []), np.empty(0, dtype=np.int64)
    giant = max(components, key=len)
    giant = np.sort(giant)
    return graph.subgraph(giant), giant


def filter_min_degree(graph: Graph, min_degree: int) -> Tuple[Graph, np.ndarray]:
    """Iteratively remove nodes of degree < ``min_degree`` (k-core style).

    Unlike a one-shot filter, removal is repeated until stable, so the
    result's minimum degree really is ``min_degree`` (or the graph is
    empty). Returns ``(subgraph, original_ids)``.
    """
    if min_degree < 0:
        raise ValueError("min_degree must be non-negative")
    keep = np.ones(graph.num_nodes, dtype=bool)
    degree = graph.degrees().astype(np.int64)
    changed = True
    while changed:
        changed = False
        for v in np.flatnonzero(keep & (degree < min_degree)).tolist():
            keep[v] = False
            changed = True
            for u in graph.neighbors(v).tolist():
                if keep[u]:
                    degree[u] -= 1
    kept = np.flatnonzero(keep)
    return graph.subgraph(kept), kept


def relabel(graph: Graph, mapping: Dict[int, int]) -> Graph:
    """Apply an explicit bijective node relabelling."""
    if len(mapping) != graph.num_nodes:
        raise ValueError("mapping must cover every node")
    if sorted(mapping.values()) != list(range(graph.num_nodes)):
        raise ValueError("mapping must be a bijection onto 0..n-1")
    lookup = np.empty(graph.num_nodes, dtype=np.int64)
    for old, new in mapping.items():
        lookup[old] = new
    src, dst = graph.edge_arrays()
    return Graph.from_edge_arrays(graph.num_nodes, lookup[src], lookup[dst])


def compact(graph: Graph) -> Tuple[Graph, np.ndarray]:
    """Drop isolated nodes and relabel survivors densely.

    Returns ``(subgraph, original_ids)``.
    """
    kept = np.flatnonzero(graph.degrees() > 0)
    return graph.subgraph(kept), kept


def union(a: Graph, b: Graph) -> Graph:
    """Edge union of two graphs over the larger node universe."""
    n = max(a.num_nodes, b.num_nodes)
    src_a, dst_a = a.edge_arrays()
    src_b, dst_b = b.edge_arrays()
    return Graph.from_edge_arrays(
        n,
        np.concatenate([src_a, src_b]),
        np.concatenate([dst_a, dst_b]),
    )


def difference(a: Graph, b: Graph) -> Graph:
    """Edges of ``a`` not present in ``b`` (node universe of ``a``)."""
    b_edges = set(b.edges())
    keep = [(u, v) for u, v in a.edges() if (u, v) not in b_edges]
    return Graph.from_edges(a.num_nodes, keep)


def remove_edges(graph: Graph, edges: Iterable[Edge]) -> Graph:
    """A copy of ``graph`` without the given edges (absent edges ignored)."""
    drop = {(min(u, v), max(u, v)) for u, v in edges}
    keep = [e for e in graph.edges() if e not in drop]
    return Graph.from_edges(graph.num_nodes, keep)


def add_edges(graph: Graph, edges: Iterable[Edge]) -> Graph:
    """A copy of ``graph`` with the given edges added (dedup applies)."""
    src, dst = graph.edge_arrays()
    extra: List[Edge] = [(int(u), int(v)) for u, v in edges]
    if not extra:
        return graph
    extra_src = np.asarray([u for u, _ in extra], dtype=np.int64)
    extra_dst = np.asarray([v for _, v in extra], dtype=np.int64)
    n = max(graph.num_nodes, int(max(extra_src.max(), extra_dst.max())) + 1)
    return Graph.from_edge_arrays(
        n,
        np.concatenate([src, extra_src]),
        np.concatenate([dst, extra_dst]),
    )
