"""Immutable undirected graph stored in Compressed Sparse Row (CSR) form.

Every algorithm in this package operates on :class:`Graph`. Nodes are dense
integers ``0 .. num_nodes - 1``; edges are unordered pairs of distinct nodes
(self loops are rejected, parallel edges collapse). The structure is
append-free by design — summarization never mutates the input graph — which
lets us share one CSR across baselines, benchmarks and property tests.

The CSR layout stores each undirected edge twice (once per endpoint), with
each adjacency row sorted ascending. ``num_edges`` counts *undirected* edges,
matching the ``|E|`` of the paper's objective and compression metric.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

__all__ = ["Graph"]


class Graph:
    """A simple undirected graph over nodes ``0 .. n-1`` in CSR form.

    Parameters
    ----------
    indptr:
        int64 array of length ``n + 1``; row ``v`` occupies
        ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        int64 array of neighbour ids, sorted ascending within each row.
        Each undirected edge appears in both endpoint rows.

    Use :meth:`from_edges` (or :class:`repro.graph.builder.GraphBuilder`)
    rather than the raw constructor unless you already hold a valid CSR.
    """

    __slots__ = ("_indptr", "_indices", "_num_edges")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if indptr.size == 0:
            raise ValueError("indptr must have length num_nodes + 1 (>= 1)")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indices.size and (indices.min() < 0 or indices.max() >= indptr.size - 1):
            raise ValueError("indices contain out-of-range node ids")
        self._indptr = indptr
        self._indices = indices
        self._indptr.setflags(write=False)
        self._indices.setflags(write=False)
        self._num_edges = int(indices.size) // 2

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        Edges are symmetrized and de-duplicated; self loops are dropped
        (the paper's input graphs are simple). ``num_nodes`` may exceed the
        largest endpoint to allow isolated nodes.
        """
        edge_list = list(edges)
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        if not edge_list:
            indptr = np.zeros(num_nodes + 1, dtype=np.int64)
            return cls(indptr, np.empty(0, dtype=np.int64))
        arr = np.asarray(edge_list, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be (u, v) pairs")
        return cls.from_edge_arrays(num_nodes, arr[:, 0], arr[:, 1])

    @classmethod
    def from_edge_arrays(
        cls,
        num_nodes: int,
        src: np.ndarray,
        dst: np.ndarray,
    ) -> "Graph":
        """Build a graph from parallel endpoint arrays (vectorized path)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have equal length")
        if src.size and (min(src.min(), dst.min()) < 0
                         or max(src.max(), dst.max()) >= num_nodes):
            raise ValueError("edge endpoints out of range")
        keep = src != dst  # drop self loops
        src, dst = src[keep], dst[keep]
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        if lo.size:
            # De-duplicate on the canonical (lo, hi) key.
            key = lo * np.int64(num_nodes) + hi
            _, first = np.unique(key, return_index=True)
            lo, hi = lo[first], hi[first]
        heads = np.concatenate([lo, hi])
        tails = np.concatenate([hi, lo])
        counts = np.bincount(heads, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.lexsort((tails, heads))
        return cls(indptr, tails[order])

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes (including isolated ones)."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    @property
    def indptr(self) -> np.ndarray:
        """Read-only CSR row pointer array."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Read-only CSR column index array."""
        return self._indices

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour ids of ``v`` (a zero-copy CSR slice)."""
        return self._indices[self._indptr[v]:self._indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Degree of node ``v``."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def degrees(self) -> np.ndarray:
        """Degree of every node as an int64 array."""
        return np.diff(self._indptr)

    def has_edge(self, u: int, v: int) -> bool:
        """``True`` iff ``{u, v}`` is an edge (binary search on the row)."""
        if u == v:
            return False
        row = self.neighbors(u)
        pos = int(np.searchsorted(row, v))
        return pos < row.size and int(row[pos]) == v

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield each undirected edge once, as ``(u, v)`` with ``u < v``."""
        src, dst = self.edge_arrays()
        for u, v in zip(src.tolist(), dst.tolist()):
            yield u, v

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Endpoint arrays ``(src, dst)`` with ``src < dst``, each edge once.

        This is the vectorized workhorse behind the sort-based encoder
        (Algorithm 5): it exposes the edge list without Python-level loops.
        """
        heads = np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), np.diff(self._indptr)
        )
        mask = heads < self._indices
        return heads[mask], self._indices[mask]

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_nodes))

    def __len__(self) -> int:
        return self.num_nodes

    # ------------------------------------------------------------------
    # comparison / misc
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash((self.num_nodes, self.num_edges,
                     self._indices[:64].tobytes()))

    def __repr__(self) -> str:
        return f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"

    def subgraph(self, nodes: Sequence[int]) -> "Graph":
        """Induced subgraph on ``nodes``, relabelled to ``0 .. len(nodes)-1``.

        The relabelling follows the order of ``nodes``.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size != np.unique(nodes).size:
            raise ValueError("subgraph nodes must be distinct")
        remap = np.full(self.num_nodes, -1, dtype=np.int64)
        remap[nodes] = np.arange(nodes.size, dtype=np.int64)
        src, dst = self.edge_arrays()
        keep = (remap[src] >= 0) & (remap[dst] >= 0)
        return Graph.from_edge_arrays(
            int(nodes.size), remap[src[keep]], remap[dst[keep]]
        )

    def neighbor_sets(self) -> list:
        """Adjacency as a list of Python ``set`` objects.

        Convenience for baselines (MoSSo, VoG) whose inner loops are
        membership-heavy; the CSR remains the source of truth.
        """
        return [set(self.neighbors(v).tolist()) for v in range(self.num_nodes)]
