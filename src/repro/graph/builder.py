"""Incremental construction of :class:`~repro.graph.graph.Graph` objects.

``GraphBuilder`` buffers edges (with optional arbitrary node labels) and
produces an immutable CSR graph. It is the ingestion point for file loaders,
generators and the dynamic-stream example: callers never hand-assemble CSR
arrays themselves.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from .graph import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates edges and builds a simple undirected :class:`Graph`.

    Parameters
    ----------
    num_nodes:
        If given, node ids must be ints in ``0 .. num_nodes - 1`` and the
        built graph has exactly that many nodes. If ``None``, arbitrary
        hashable labels are accepted and compacted to dense ids in first-seen
        order; :attr:`labels` then maps dense id back to the original label.
    """

    def __init__(self, num_nodes: Optional[int] = None) -> None:
        if num_nodes is not None and num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self._fixed_n = num_nodes
        self._src: List[int] = []
        self._dst: List[int] = []
        self._label_to_id: Dict[Hashable, int] = {}
        self._labels: List[Hashable] = []
        self._self_loops_dropped = 0

    # ------------------------------------------------------------------
    def _resolve(self, label: Hashable) -> int:
        if self._fixed_n is not None:
            node = int(label)
            if not 0 <= node < self._fixed_n:
                raise ValueError(
                    f"node {node} out of range for fixed num_nodes="
                    f"{self._fixed_n}"
                )
            return node
        node = self._label_to_id.get(label)
        if node is None:
            node = len(self._labels)
            self._label_to_id[label] = node
            self._labels.append(label)
        return node

    def add_node(self, label: Hashable) -> int:
        """Register a (possibly isolated) node; returns its dense id."""
        return self._resolve(label)

    def add_edge(self, u: Hashable, v: Hashable) -> "GraphBuilder":
        """Buffer the undirected edge ``{u, v}``. Self loops are dropped."""
        ui, vi = self._resolve(u), self._resolve(v)
        if ui == vi:
            self._self_loops_dropped += 1
            return self
        self._src.append(ui)
        self._dst.append(vi)
        return self

    def add_edges(self, edges: Iterable[Tuple[Hashable, Hashable]]) -> "GraphBuilder":
        """Buffer many edges; chains for fluent use."""
        for u, v in edges:
            self.add_edge(u, v)
        return self

    # ------------------------------------------------------------------
    @property
    def num_buffered_edges(self) -> int:
        """Edges buffered so far (before de-duplication)."""
        return len(self._src)

    @property
    def self_loops_dropped(self) -> int:
        """Count of self loops silently discarded."""
        return self._self_loops_dropped

    @property
    def labels(self) -> List[Hashable]:
        """Dense-id → original-label mapping (label mode only)."""
        if self._fixed_n is not None:
            raise ValueError("labels are only tracked when num_nodes is None")
        return list(self._labels)

    def build(self) -> Graph:
        """Produce the immutable graph (symmetrized, de-duplicated)."""
        n = self._fixed_n if self._fixed_n is not None else len(self._labels)
        src = np.asarray(self._src, dtype=np.int64)
        dst = np.asarray(self._dst, dtype=np.int64)
        return Graph.from_edge_arrays(n, src, dst)
