"""Graph and summary serialization.

Three plain-text graph formats (edge list, adjacency list, and the
whitespace-separated "LAW-style" format used by the paper's datasets after
conversion) plus a line-oriented format for summarization outputs so that a
summary computed once can be stored, shipped and queried later without the
original graph.
"""

from __future__ import annotations

import gzip
import io
import os
from typing import IO, List, Tuple, Union

import numpy as np

from ..errors import CorruptSummaryError
from ..ioutil import atomic_write
from .builder import GraphBuilder
from .graph import Graph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_adjacency",
    "write_adjacency",
    "read_graph_binary",
    "write_graph_binary",
    "load_graph",
    "save_graph",
    "write_summary",
    "read_summary",
    "write_partition",
    "read_partition",
]

PathLike = Union[str, "os.PathLike[str]"]


def _open_text(path: PathLike, mode: str) -> IO[str]:
    """Open ``path`` as text, transparently handling ``.gz`` suffixes."""
    path = os.fspath(path)
    if path.endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, mode + "b"))  # type: ignore[arg-type]
    return open(path, mode, encoding="utf-8")


def _atomic_text(path: PathLike):
    """Atomic-write counterpart of ``_open_text(path, "w")``.

    Every text writer in this module goes through here so an interrupted
    write (crash, SIGKILL, full disk) never clobbers a previous good file
    — the temp file is simply abandoned and unlinked.
    """
    path = os.fspath(path)
    if path.endswith(".gz"):
        return atomic_write(
            path,
            open_fn=lambda tmp: io.TextIOWrapper(gzip.open(tmp, "wb")),
        )
    return atomic_write(path, "w", encoding="utf-8")


# ----------------------------------------------------------------------
# edge list format: one "u v" pair per line; '#' or '%' comments allowed
# ----------------------------------------------------------------------
def read_edge_list(path: PathLike, num_nodes: int = None) -> Graph:
    """Read a whitespace-separated edge list file.

    Node ids must be non-negative integers. Lines starting with ``#`` or
    ``%`` and blank lines are skipped. Directed inputs are symmetrized
    (matching the paper's preprocessing).
    """
    src: List[int] = []
    dst: List[int] = []
    max_node = -1
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            u, v = int(parts[0]), int(parts[1])
            if u < 0 or v < 0:
                raise ValueError(f"{path}:{lineno}: negative node id")
            src.append(u)
            dst.append(v)
            max_node = max(max_node, u, v)
    n = max_node + 1 if num_nodes is None else num_nodes
    return Graph.from_edge_arrays(
        n, np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)
    )


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write each undirected edge once as ``u v`` (with ``u < v``)."""
    src, dst = graph.edge_arrays()
    with _atomic_text(path) as fh:
        fh.write(f"# nodes {graph.num_nodes} edges {graph.num_edges}\n")
        for u, v in zip(src.tolist(), dst.tolist()):
            fh.write(f"{u} {v}\n")


# ----------------------------------------------------------------------
# adjacency list format: "v: n1 n2 n3" per line
# ----------------------------------------------------------------------
def read_adjacency(path: PathLike) -> Graph:
    """Read an adjacency list file of the form ``v: n1 n2 ...``."""
    builder = GraphBuilder()
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            if ":" not in line:
                raise ValueError(f"{path}:{lineno}: missing ':' separator")
            head, _, tail = line.partition(":")
            v = int(head)
            builder.add_node(v)
            for token in tail.split():
                builder.add_edge(v, int(token))
    # Labels are ints here; compact while preserving numeric identity where
    # the file enumerates every node id.
    labels = builder.labels
    graph = builder.build()
    if labels == sorted(labels) and labels == list(range(len(labels))):
        return graph
    # Remap back onto the original integer id space.
    n = max(labels) + 1
    src, dst = graph.edge_arrays()
    label_arr = np.asarray(labels, dtype=np.int64)
    return Graph.from_edge_arrays(n, label_arr[src], label_arr[dst])


def write_adjacency(graph: Graph, path: PathLike) -> None:
    """Write each node's full adjacency row, one node per line."""
    with _atomic_text(path) as fh:
        for v in range(graph.num_nodes):
            row = " ".join(str(u) for u in graph.neighbors(v).tolist())
            fh.write(f"{v}: {row}\n")


# ----------------------------------------------------------------------
# binary CSR format (.npz): zero-parse loading for large graphs
# ----------------------------------------------------------------------
def write_graph_binary(graph: Graph, path: PathLike) -> None:
    """Store the CSR arrays directly (compressed ``.npz``), atomically."""
    with atomic_write(os.fspath(path), "wb") as fh:
        np.savez_compressed(fh, indptr=graph.indptr, indices=graph.indices)


def read_graph_binary(path: PathLike) -> Graph:
    """Load a graph written by :func:`write_graph_binary`."""
    with np.load(os.fspath(path)) as data:
        if "indptr" not in data or "indices" not in data:
            raise ValueError(f"{path}: not a CSR graph archive")
        return Graph(data["indptr"], data["indices"])


def load_graph(path: PathLike) -> Graph:
    """Load a graph, dispatching on extension.

    ``.adj``/``.adj.gz`` → adjacency list, ``.npz`` → binary CSR,
    anything else → edge list.
    """
    name = os.fspath(path)
    if name.endswith(".adj") or name.endswith(".adj.gz"):
        return read_adjacency(path)
    if name.endswith(".npz"):
        return read_graph_binary(path)
    return read_edge_list(path)


def save_graph(graph: Graph, path: PathLike) -> None:
    """Save a graph, dispatching on extension (see :func:`load_graph`)."""
    name = os.fspath(path)
    if name.endswith(".adj") or name.endswith(".adj.gz"):
        write_adjacency(graph, path)
    elif name.endswith(".npz"):
        write_graph_binary(graph, path)
    else:
        write_edge_list(graph, path)


# ----------------------------------------------------------------------
# partition checkpoint format: "sid m1 m2 ..." per supernode
# ----------------------------------------------------------------------
def write_partition(partition, path: PathLike) -> None:
    """Checkpoint a :class:`~repro.core.partition.SupernodePartition`.

    Pairs with the ``initial_partition`` warm-start argument of
    :meth:`repro.core.base.BaseSummarizer.summarize`: a long run can be
    checkpointed and resumed in another process.
    """
    with _atomic_text(path) as fh:
        fh.write(f"#ldme-partition num_nodes={partition.num_nodes}\n")
        for sid in sorted(partition.supernode_ids()):
            members = " ".join(map(str, sorted(partition.members(sid))))
            fh.write(f"{sid} {members}\n")


def read_partition(path: PathLike):
    """Load a partition written by :func:`write_partition`."""
    from ..core.partition import SupernodePartition

    num_nodes = None
    members = {}
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#ldme-partition"):
                for token in line.split():
                    if token.startswith("num_nodes="):
                        num_nodes = int(token.split("=", 1)[1])
                continue
            parts = [int(tok) for tok in line.split()]
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: expected 'sid members...'")
            members[parts[0]] = parts[1:]
    if num_nodes is None:
        raise ValueError(f"{path}: missing '#ldme-partition' header")
    return SupernodePartition.from_members(num_nodes, members)


# ----------------------------------------------------------------------
# summary output format
# ----------------------------------------------------------------------
def write_summary(summarization, path: PathLike) -> None:
    """Serialize a :class:`~repro.core.summary.Summarization` to text.

    Sections are introduced by header lines: ``S`` (one supernode per line:
    id then members), ``P`` (superedges), ``C+`` and ``C-`` (correction
    edges). The original node count is recorded so the graph can be rebuilt
    without external information.
    """
    with _atomic_text(path) as fh:
        fh.write(f"#ldme-summary num_nodes={summarization.num_nodes}\n")
        fh.write("S\n")
        for sid in summarization.supernode_ids():
            members = " ".join(map(str, summarization.members(sid)))
            fh.write(f"{sid} {members}\n")
        fh.write("P\n")
        for a, b in summarization.superedges:
            fh.write(f"{a} {b}\n")
        fh.write("C+\n")
        for u, v in summarization.corrections.additions:
            fh.write(f"{u} {v}\n")
        fh.write("C-\n")
        for u, v in summarization.corrections.deletions:
            fh.write(f"{u} {v}\n")


def read_summary(path: PathLike):
    """Deserialize a summary written by :func:`write_summary`.

    Malformed files raise :class:`~repro.errors.CorruptSummaryError` (a
    :class:`ValueError` subclass) naming the offending line, instead of
    crashing deep inside parsing or returning a half-read summary.
    """
    from ..core.summary import CorrectionSet, Summarization

    num_nodes = None
    section = None
    members = {}
    superedges: List[Tuple[int, int]] = []
    additions: List[Tuple[int, int]] = []
    deletions: List[Tuple[int, int]] = []
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#ldme-summary"):
                for token in line.split():
                    if token.startswith("num_nodes="):
                        num_nodes = int(token.split("=", 1)[1])
                continue
            if line in ("S", "P", "C+", "C-"):
                section = line
                continue
            try:
                parts = [int(tok) for tok in line.split()]
            except ValueError:
                raise CorruptSummaryError(
                    str(path), f"line {lineno}: non-integer token in {line!r}"
                ) from None
            if section != "S" and len(parts) != 2:
                raise CorruptSummaryError(
                    str(path),
                    f"line {lineno}: expected an edge pair, got {line!r}",
                )
            if section == "S":
                members[parts[0]] = parts[1:]
            elif section == "P":
                superedges.append((parts[0], parts[1]))
            elif section == "C+":
                additions.append((parts[0], parts[1]))
            elif section == "C-":
                deletions.append((parts[0], parts[1]))
            else:
                raise CorruptSummaryError(
                    str(path), f"line {lineno}: data before section header"
                )
    if num_nodes is None:
        raise CorruptSummaryError(
            str(path), "missing '#ldme-summary' header"
        )
    try:
        return Summarization.from_members(
            num_nodes=num_nodes,
            members=members,
            superedges=superedges,
            corrections=CorrectionSet(additions=additions,
                                      deletions=deletions),
        )
    except ValueError as exc:
        raise CorruptSummaryError(
            str(path), f"invalid summary structure: {exc}"
        ) from exc
