"""Synthetic graph generators.

These are the workload substrate for every experiment: the paper's LAW web
crawls are unavailable offline (and billion-edge inputs are out of reach for
pure Python), so the dataset registry in :mod:`repro.graph.datasets` builds
scaled surrogates from the generators here. Each generator takes an explicit
seed / :class:`numpy.random.Generator` so experiments are reproducible.

Provided models
---------------
* :func:`erdos_renyi` — G(n, p) baseline randomness.
* :func:`barabasi_albert` — preferential attachment (heavy-tailed degrees).
* :func:`rmat` — Recursive MATrix model; the standard stand-in for skewed
  web/social graphs (Graph500 uses it for the same reason).
* :func:`powerlaw_cluster` — Holme–Kim style BA with triad closure, giving
  the local clustering web crawls exhibit.
* :func:`stochastic_block_model` — the generator the paper itself uses for
  Figure 5(c).
* :func:`web_host_graph` — two-level "host" structure: dense intra-host
  cliques/stars plus sparse inter-host links, mimicking crawl locality.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from .graph import Graph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "rmat",
    "powerlaw_cluster",
    "stochastic_block_model",
    "web_host_graph",
    "forest_fire",
]

SeedLike = Union[int, np.random.Generator, None]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
def erdos_renyi(num_nodes: int, p: float, seed: SeedLike = None) -> Graph:
    """G(n, p): each of the ``n(n-1)/2`` pairs is an edge with prob. ``p``.

    Sampled by drawing a binomial edge count and rejection-free pair
    sampling, so it stays fast for small ``p``.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    if num_nodes < 0:
        raise ValueError("num_nodes must be non-negative")
    rng = _rng(seed)
    total_pairs = num_nodes * (num_nodes - 1) // 2
    if total_pairs == 0 or p == 0.0:
        return Graph.from_edges(num_nodes, [])
    m = int(rng.binomial(total_pairs, p))
    # Sample pair indices without replacement, then invert the triangular
    # indexing to recover (u, v).
    picks = rng.choice(total_pairs, size=min(m, total_pairs), replace=False)
    u = (
        num_nodes
        - 2
        - np.floor(
            np.sqrt(-8.0 * picks + 4.0 * num_nodes * (num_nodes - 1) - 7.0) / 2.0
            - 0.5
        )
    ).astype(np.int64)
    v = (
        picks
        + u
        + 1
        - num_nodes * (num_nodes - 1) // 2
        + (num_nodes - u) * ((num_nodes - u) - 1) // 2
    ).astype(np.int64)
    return Graph.from_edge_arrays(num_nodes, u, v)


def barabasi_albert(num_nodes: int, m: int, seed: SeedLike = None) -> Graph:
    """Preferential attachment: each new node attaches to ``m`` targets.

    Uses the repeated-nodes trick (attach to a uniform sample of the edge
    endpoint multiset) for linear-time generation.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if num_nodes < m + 1:
        raise ValueError("num_nodes must exceed m")
    rng = _rng(seed)
    src: List[int] = []
    dst: List[int] = []
    # endpoint multiset; seeded with a star over the first m+1 nodes
    repeated: List[int] = []
    for v in range(m):
        src.append(v)
        dst.append(m)
        repeated.extend((v, m))
    for v in range(m + 1, num_nodes):
        targets = set()
        while len(targets) < m:
            pick = repeated[int(rng.integers(len(repeated)))]
            targets.add(pick)
        for t in targets:
            src.append(v)
            dst.append(t)
            repeated.extend((v, t))
    return Graph.from_edge_arrays(
        num_nodes,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
    )


def rmat(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: SeedLike = None,
) -> Graph:
    """R-MAT graph with ``2**scale`` nodes and ``edge_factor * n`` edge draws.

    The default (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) is the Graph500
    parameterization, whose skew resembles web crawls. Duplicate draws and
    self loops are removed, so the realized edge count is a little lower
    than ``edge_factor * n``.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be non-negative")
    rng = _rng(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        # quadrant choice per edge per level
        right = r >= a + c  # dst bit set when falling into b or d
        down = ((r >= a) & (r < a + c)) | (r >= a + b + c)  # src bit set (c or d)
        src |= down.astype(np.int64) << level
        dst |= right.astype(np.int64) << level
    return Graph.from_edge_arrays(n, src, dst)


def powerlaw_cluster(
    num_nodes: int,
    m: int,
    triangle_prob: float = 0.5,
    seed: SeedLike = None,
) -> Graph:
    """Holme–Kim powerlaw-cluster graph (BA + triad closure).

    With probability ``triangle_prob`` each attachment step closes a
    triangle with a neighbour of the previous target, giving clustering on
    top of a heavy-tailed degree distribution.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if num_nodes < m + 1:
        raise ValueError("num_nodes must exceed m")
    if not 0.0 <= triangle_prob <= 1.0:
        raise ValueError("triangle_prob must be in [0, 1]")
    rng = _rng(seed)
    adjacency: List[set] = [set() for _ in range(num_nodes)]
    repeated: List[int] = []

    def connect(u: int, v: int) -> None:
        adjacency[u].add(v)
        adjacency[v].add(u)
        repeated.extend((u, v))

    for v in range(m):
        connect(v, m)
    for v in range(m + 1, num_nodes):
        count = 0
        last_target: Optional[int] = None
        while count < m:
            if (
                last_target is not None
                and rng.random() < triangle_prob
                and adjacency[last_target]
            ):
                candidates = [
                    u for u in adjacency[last_target] if u != v and u not in adjacency[v]
                ]
                if candidates:
                    target = candidates[int(rng.integers(len(candidates)))]
                    connect(v, target)
                    count += 1
                    continue
            target = repeated[int(rng.integers(len(repeated)))]
            if target != v and target not in adjacency[v]:
                connect(v, target)
                last_target = target
                count += 1
    edges = [(u, w) for u in range(num_nodes) for w in adjacency[u] if u < w]
    return Graph.from_edges(num_nodes, edges)


def stochastic_block_model(
    block_sizes: Sequence[int],
    block_matrix: Sequence[Sequence[float]],
    seed: SeedLike = None,
) -> Graph:
    """Stochastic block model, the generator of the paper's Figure 5(c).

    ``block_matrix[i][j]`` is the probability of an edge between a node of
    community ``i`` and one of community ``j`` (symmetric).
    """
    sizes = [int(s) for s in block_sizes]
    if any(s < 0 for s in sizes):
        raise ValueError("block sizes must be non-negative")
    k = len(sizes)
    probs = np.asarray(block_matrix, dtype=np.float64)
    if probs.shape != (k, k):
        raise ValueError("block_matrix must be square and match block_sizes")
    if not np.allclose(probs, probs.T):
        raise ValueError("block_matrix must be symmetric")
    if probs.size and (probs.min() < 0.0 or probs.max() > 1.0):
        raise ValueError("block probabilities must be in [0, 1]")
    rng = _rng(seed)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    n = int(offsets[-1])
    src_parts: List[np.ndarray] = []
    dst_parts: List[np.ndarray] = []
    for i in range(k):
        for j in range(i, k):
            p = float(probs[i, j])
            if p == 0.0:
                continue
            if i == j:
                block = erdos_renyi(sizes[i], p, rng)
                s, t = block.edge_arrays()
                src_parts.append(s + offsets[i])
                dst_parts.append(t + offsets[i])
            else:
                total = sizes[i] * sizes[j]
                if total == 0:
                    continue
                m = int(rng.binomial(total, p))
                picks = rng.choice(total, size=min(m, total), replace=False)
                src_parts.append(picks // sizes[j] + offsets[i])
                dst_parts.append(picks % sizes[j] + offsets[j])
    if src_parts:
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
    else:
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
    return Graph.from_edge_arrays(n, src, dst)


def forest_fire(
    num_nodes: int,
    forward_prob: float = 0.35,
    seed: SeedLike = None,
) -> Graph:
    """Forest Fire model (Leskovec et al.): burn-based attachment.

    Each new node picks a random ambassador and "burns" through the graph:
    it links to the ambassador, then recursively to a geometrically
    distributed number of each burned node's neighbours. Produces the
    shrinking-diameter, densifying graphs typical of real networks —
    another summarization workload with strong local redundancy.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if not 0.0 <= forward_prob < 1.0:
        raise ValueError("forward_prob must be in [0, 1)")
    rng = _rng(seed)
    adjacency: List[set] = [set() for _ in range(num_nodes)]

    def connect(u: int, v: int) -> None:
        adjacency[u].add(v)
        adjacency[v].add(u)

    for v in range(1, num_nodes):
        ambassador = int(rng.integers(v))
        burned = {ambassador}
        frontier = [ambassador]
        connect(v, ambassador)
        while frontier:
            w = frontier.pop()
            # Geometric(1 - p) number of neighbours catch fire.
            budget = int(rng.geometric(1.0 - forward_prob)) - 1
            if budget <= 0:
                continue
            candidates = [u for u in adjacency[w] if u not in burned and u != v]
            rng.shuffle(candidates)
            for u in candidates[:budget]:
                burned.add(u)
                connect(v, u)
                frontier.append(u)
    edges = [(u, w) for u in range(num_nodes) for w in adjacency[u] if u < w]
    return Graph.from_edges(num_nodes, edges)


def web_host_graph(
    num_hosts: int,
    host_size: int,
    templates_per_host: int = 3,
    links_per_template: int = 6,
    mutation_prob: float = 0.1,
    inter_edges_per_host: int = 4,
    seed: SeedLike = None,
) -> Graph:
    """Template-copying web-crawl surrogate with host locality.

    Real web graphs are dominated by groups of pages with *identical or
    near-identical* link sets (pages stamped from the same template inside
    a host) — precisely the redundancy that group-based summarizers, and
    LDME's full-signature LSH grouping in particular, exploit. The model:

    * each host has ``templates_per_host`` templates, each a random set of
      ``links_per_template`` target pages within the host;
    * every page copies one template's link set, independently rewiring
      each link with probability ``mutation_prob`` (the classic "copying
      model" for the web);
    * ``inter_edges_per_host`` random pages per host additionally link to
      random hub pages of other hosts (the first page of each host acts as
      its hub).
    """
    if num_hosts < 1 or host_size < 2:
        raise ValueError("need at least one host of size >= 2")
    if templates_per_host < 1:
        raise ValueError("templates_per_host must be >= 1")
    if not 0.0 <= mutation_prob <= 1.0:
        raise ValueError("mutation_prob must be in [0, 1]")
    rng = _rng(seed)
    n = num_hosts * host_size
    links = max(1, min(links_per_template, host_size - 1))
    src: List[int] = []
    dst: List[int] = []
    hub_ids = np.arange(num_hosts, dtype=np.int64) * host_size
    for h in range(num_hosts):
        base = h * host_size
        templates = [
            rng.choice(host_size, size=links, replace=False)
            for _ in range(templates_per_host)
        ]
        for page in range(host_size):
            template = templates[int(rng.integers(templates_per_host))]
            for target in template.tolist():
                if rng.random() < mutation_prob:
                    target = int(rng.integers(host_size))
                if target != page:
                    src.append(base + page)
                    dst.append(base + target)
        locals_ = rng.integers(0, host_size, size=inter_edges_per_host)
        remotes = hub_ids[rng.integers(0, num_hosts, size=inter_edges_per_host)]
        for page, hub in zip(locals_.tolist(), remotes.tolist()):
            if base + page != hub:
                src.append(base + page)
                dst.append(int(hub))
    return Graph.from_edge_arrays(
        n,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
    )
