"""Descriptive graph statistics used for dataset reporting (Table 1) and
sanity checks on generated surrogates."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .graph import Graph

__all__ = [
    "GraphStats",
    "graph_stats",
    "degree_histogram",
    "connected_components",
    "powerlaw_exponent_mle",
    "degree_assortativity",
]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph (one row of a Table-1 style report)."""

    num_nodes: int
    num_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    median_degree: float
    density: float
    num_isolated: int
    num_components: int

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for tabular reporting."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "min_deg": self.min_degree,
            "max_deg": self.max_degree,
            "mean_deg": round(self.mean_degree, 3),
            "median_deg": self.median_degree,
            "density": self.density,
            "isolated": self.num_isolated,
            "components": self.num_components,
        }


def graph_stats(graph: Graph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    n = graph.num_nodes
    degs = graph.degrees()
    if n == 0:
        return GraphStats(0, 0, 0, 0, 0.0, 0.0, 0.0, 0, 0)
    pairs = n * (n - 1) / 2
    return GraphStats(
        num_nodes=n,
        num_edges=graph.num_edges,
        min_degree=int(degs.min()),
        max_degree=int(degs.max()),
        mean_degree=float(degs.mean()),
        median_degree=float(np.median(degs)),
        density=float(graph.num_edges / pairs) if pairs else 0.0,
        num_isolated=int(np.count_nonzero(degs == 0)),
        num_components=len(connected_components(graph)),
    )


def degree_histogram(graph: Graph) -> np.ndarray:
    """``hist[d]`` = number of nodes with degree ``d``."""
    degs = graph.degrees()
    if degs.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degs)


def powerlaw_exponent_mle(graph: Graph, xmin: int = 1) -> float:
    """Maximum-likelihood power-law exponent of the degree distribution.

    The discrete Hill/Clauset estimator
    ``alpha = 1 + n / Σ ln(d_i / (xmin - 0.5))`` over degrees ``>= xmin``.
    Web crawls and social graphs typically land in ``alpha ∈ [1.5, 3.5]``;
    the dataset surrogates are validated against that band (DESIGN.md §4).
    """
    if xmin < 1:
        raise ValueError("xmin must be >= 1")
    degs = graph.degrees()
    tail = degs[degs >= xmin].astype(np.float64)
    if tail.size == 0:
        raise ValueError("no degrees at or above xmin")
    log_sum = float(np.log(tail / (xmin - 0.5)).sum())
    if log_sum == 0.0:
        return float("inf")  # degenerate: all degrees equal xmin
    return 1.0 + tail.size / log_sum


def degree_assortativity(graph: Graph) -> float:
    """Pearson correlation of endpoint degrees over all edges.

    Negative for hub-and-spoke graphs (web crawls), positive for social
    collaboration networks — a cheap structural fingerprint used to sanity
    check the surrogates. Returns 0 for degenerate graphs.
    """
    src, dst = graph.edge_arrays()
    if src.size < 2:
        return 0.0
    degs = graph.degrees().astype(np.float64)
    x = np.concatenate([degs[src], degs[dst]])
    y = np.concatenate([degs[dst], degs[src]])
    sx = x.std()
    sy = y.std()
    if sx == 0 or sy == 0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))


def connected_components(graph: Graph) -> List[np.ndarray]:
    """Connected components as arrays of node ids (iterative BFS)."""
    n = graph.num_nodes
    label = np.full(n, -1, dtype=np.int64)
    components: List[np.ndarray] = []
    for start in range(n):
        if label[start] >= 0:
            continue
        comp_id = len(components)
        frontier = [start]
        label[start] = comp_id
        members = [start]
        while frontier:
            next_frontier: List[int] = []
            for v in frontier:
                for u in graph.neighbors(v).tolist():
                    if label[u] < 0:
                        label[u] = comp_id
                        members.append(u)
                        next_frontier.append(u)
            frontier = next_frontier
        components.append(np.asarray(members, dtype=np.int64))
    return components
