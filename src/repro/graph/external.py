"""Out-of-core edge-list ingestion.

The paper's datasets run to a billion edges; even at reproduction scale a
production library should not require the raw text file to fit in memory
alongside Python object overhead. This module builds a CSR graph from an
edge-list file in bounded memory:

1. stream the file in chunks, canonicalizing each edge to ``(min, max)``
   and spilling sorted numpy runs to a temp directory;
2. k-way merge the runs (heap over memory-mapped arrays) while deduping;
3. two counting passes build the CSR directly.

For files that do fit in memory, :func:`repro.graph.io.read_edge_list`
is simpler and faster; this path trades speed for bounded residency.
"""

from __future__ import annotations

import heapq
import os
import tempfile
from typing import Iterator, List, Tuple, Union

import numpy as np

from .graph import Graph

__all__ = ["iter_edge_file", "read_edge_list_chunked"]

PathLike = Union[str, "os.PathLike[str]"]


def iter_edge_file(path: PathLike) -> Iterator[Tuple[int, int]]:
    """Stream ``(u, v)`` pairs from an edge-list file (constant memory)."""
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: expected 'u v'")
            u, v = int(parts[0]), int(parts[1])
            if u < 0 or v < 0:
                raise ValueError(f"{path}:{lineno}: negative node id")
            yield u, v


def _spill_run(chunk: List[int], run_dir: str, run_id: int) -> str:
    """Sort one chunk of packed edge keys and write it to disk."""
    arr = np.asarray(chunk, dtype=np.int64)
    arr.sort()
    run_path = os.path.join(run_dir, f"run-{run_id}.npy")
    np.save(run_path, arr)
    return run_path


def _merge_runs(run_paths: List[str]) -> Iterator[int]:
    """K-way merge of sorted runs with duplicate suppression."""
    arrays = [np.load(path, mmap_mode="r") for path in run_paths]
    streams = [iter(arr) for arr in arrays]
    previous = None
    for key in heapq.merge(*streams):
        key = int(key)
        if key != previous:
            previous = key
            yield key


def read_edge_list_chunked(
    path: PathLike,
    num_nodes: int = None,
    chunk_edges: int = 1_000_000,
) -> Graph:
    """Build a graph from an edge-list file in bounded memory.

    ``chunk_edges`` bounds the in-memory buffer; sorted runs spill to a
    temporary directory and are k-way merged. Self loops are dropped and
    direction/duplicates collapse, exactly like the in-memory loader.
    """
    if chunk_edges < 1:
        raise ValueError("chunk_edges must be >= 1")
    # Pass 1: find the node-id bound if not supplied (cheap streaming scan).
    max_node = -1
    if num_nodes is None:
        for u, v in iter_edge_file(path):
            if u > max_node:
                max_node = u
            if v > max_node:
                max_node = v
        num_nodes = max_node + 1
    n = int(num_nodes)
    if n == 0:
        return Graph.from_edges(0, [])
    with tempfile.TemporaryDirectory(prefix="ldme-extsort-") as run_dir:
        # Pass 2: canonicalize, pack to a single int key, spill sorted runs.
        run_paths: List[str] = []
        chunk: List[int] = []
        for u, v in iter_edge_file(path):
            if u == v:
                continue
            if u >= n or v >= n:
                raise ValueError(f"edge ({u}, {v}) exceeds num_nodes={n}")
            lo, hi = (u, v) if u < v else (v, u)
            chunk.append(lo * n + hi)
            if len(chunk) >= chunk_edges:
                run_paths.append(_spill_run(chunk, run_dir, len(run_paths)))
                chunk = []
        if chunk:
            run_paths.append(_spill_run(chunk, run_dir, len(run_paths)))
        if not run_paths:
            return Graph.from_edges(n, [])
        # Pass 3a: count degrees from the merged, deduped stream.
        degrees = np.zeros(n, dtype=np.int64)
        unique_edges = 0
        for key in _merge_runs(run_paths):
            degrees[key // n] += 1
            degrees[key % n] += 1
            unique_edges += 1
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(2 * unique_edges, dtype=np.int64)
        cursor = indptr[:-1].copy()
        # Pass 3b: fill adjacency rows (second merge of the same runs).
        for key in _merge_runs(run_paths):
            lo, hi = key // n, key % n
            indices[cursor[lo]] = hi
            cursor[lo] += 1
            indices[cursor[hi]] = lo
            cursor[hi] += 1
    # Rows were filled in (lo, hi) merge order: each row's entries arrive
    # ascending for the 'hi' halves but interleaved for 'lo' halves —
    # normalize by sorting every row (cheap, contiguous slices).
    for v in range(n):
        start, end = indptr[v], indptr[v + 1]
        indices[start:end].sort()
    return Graph(indptr, indices)
