"""Reconstruction: rebuild ``Ĝ`` from a summary + correction sets.

Follows the problem definition exactly: expand every superedge ``(A, B)``
into all member pairs, add ``C+``, remove ``C-``. For a lossless
summarization ``Ĝ == G``; :func:`verify_lossless` asserts that end to end
(this is the invariant every algorithm's tests lean on).
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..graph.graph import Graph
from .summary import Summarization

__all__ = ["reconstruct", "verify_lossless", "reconstruction_error"]

Edge = Tuple[int, int]


def reconstruct(summarization: Summarization) -> Graph:
    """Build the reconstructed graph ``Ĝ = (V, Ê)``."""
    edges: Set[Edge] = set()
    partition = summarization.partition
    # Step 1: expand superedges into member pairs.
    for a, b in summarization.superedges:
        mem_a = partition.members(a)
        if a == b:
            for i, u in enumerate(mem_a):
                for v in mem_a[i + 1:]:
                    edges.add((u, v) if u < v else (v, u))
            continue
        mem_b = partition.members(b)
        for u in mem_a:
            for v in mem_b:
                edges.add((u, v) if u < v else (v, u))
    # Step 2: add C+.
    for u, v in summarization.corrections.additions:
        edges.add((u, v) if u < v else (v, u))
    # Step 3: remove C-.
    for u, v in summarization.corrections.deletions:
        edges.discard((u, v) if u < v else (v, u))
    return Graph.from_edges(summarization.num_nodes, sorted(edges))


def verify_lossless(graph: Graph, summarization: Summarization) -> None:
    """Raise ``AssertionError`` unless the summarization reproduces ``graph``."""
    rebuilt = reconstruct(summarization)
    if rebuilt != graph:
        missing, spurious = reconstruction_error(graph, summarization)
        raise AssertionError(
            f"reconstruction mismatch: {len(missing)} missing edges, "
            f"{len(spurious)} spurious edges (e.g. missing={missing[:5]}, "
            f"spurious={spurious[:5]})"
        )


def reconstruction_error(
    graph: Graph, summarization: Summarization
) -> Tuple[List[Edge], List[Edge]]:
    """Edges lost and edges invented by the reconstruction.

    Returns ``(missing, spurious)``; both empty iff lossless. Used to
    validate the lossy dropping step against the Eq. 2 error bound.
    """
    original = set(graph.edges())
    rebuilt = set(reconstruct(summarization).edges())
    missing = sorted(original - rebuilt)
    spurious = sorted(rebuilt - original)
    return missing, spurious
