"""The objective's cost model.

The graph summarization objective is ``|P| + |C+| + |C-|`` (Eq. 1), with
superloops free ("self loops can be encoded using a single bit"). The
encoding rule (Section 2) fixes, for every supernode pair with at least one
edge between them, the cheaper of two options:

* no superedge  → pay ``|E_AB|`` insertions in ``C+``;
* a superedge   → pay ``1 + |F_AB| - |E_AB|`` (the superedge plus deletions),
  or just ``|F_AA| - |E_AA|`` for a superloop, which itself costs nothing.

Two cost models are provided:

* ``"exact"`` (default) — the true pairwise minimum above; Saving computed with
  it equals the true change in the objective (tests verify this).
* ``"paper"`` — the formula printed in Algorithm 4 of the paper,
  ``min(|A|·(|C|-1)/2, W_A[C])``, kept for faithfulness experiments.

See DESIGN.md §4 for why both exist.
"""

from __future__ import annotations

from typing import Callable

__all__ = [
    "pair_cost_exact",
    "loop_cost_exact",
    "pair_cost_paper",
    "loop_cost_paper",
    "get_cost_model",
    "COST_MODELS",
]


def pair_cost_exact(size_a: int, size_c: int, edges: int) -> int:
    """Objective cost of the pair (A, C), A != C, with ``edges`` = |E_AC|.

    ``min(|E_AC|, 1 + |A||C| - |E_AC|)`` — C+ insertions versus a superedge
    plus C- deletions.
    """
    return min(edges, 1 + size_a * size_c - edges)


def loop_cost_exact(size_a: int, internal_edges: int) -> int:
    """Objective cost of supernode A's internal edges (superloop case).

    Superloops are free, so the choice is ``|E_AA|`` insertions versus
    ``|F_AA| - |E_AA|`` deletions with ``|F_AA| = |A|(|A|-1)/2``.
    """
    pairs = size_a * (size_a - 1) // 2
    return min(internal_edges, pairs - internal_edges)


def pair_cost_paper(size_a: int, size_c: int, edges: int) -> float:
    """Pair cost as printed in Algorithm 4: ``min(|A|(|C|-1)/2, W_A[C])``."""
    return min(size_a * (size_c - 1) / 2.0, float(edges))


def loop_cost_paper(size_a: int, internal_edges: int) -> float:
    """Superloop cost under the paper-literal model.

    Algorithm 4 as printed does not treat internal edges specially; applying
    its formula with C = A gives ``min(|A|(|A|-1)/2, E_AA)``.
    """
    return min(size_a * (size_a - 1) / 2.0, float(internal_edges))


COST_MODELS = {
    "exact": (pair_cost_exact, loop_cost_exact),
    "paper": (pair_cost_paper, loop_cost_paper),
}


def get_cost_model(name: str) -> Callable:
    """Resolve a cost model name to its ``(pair_cost, loop_cost)`` pair."""
    try:
        return COST_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown cost model {name!r}; choose from {sorted(COST_MODELS)}"
        ) from None
