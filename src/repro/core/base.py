"""Shared driver scaffolding for all correction-set summarizers.

Every algorithm in this package (LDME, SWeG, RANDOMIZED, SAGS) follows the
same outer loop: initialize singleton supernodes, run ``T`` divide+merge
rounds, encode once, optionally drop for the lossy case. ``BaseSummarizer``
owns that loop plus the phase timing instrumentation the paper's figures
need; subclasses provide the divide and merge policies.
"""

from __future__ import annotations

import dataclasses
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..graph.graph import Graph
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .divide import DivideStats
from .drop import drop_edges
from .encode import encode_per_supernode, encode_sorted
from .merge import MergeStats, merge_threshold
from .partition import SupernodePartition
from .summary import IterationStats, RunStats, Summarization

__all__ = ["BaseSummarizer", "ResumeState"]


@dataclass
class ResumeState:
    """Everything needed to restart the driver loop at an iteration boundary.

    ``partition``, ``rng_state`` and ``stalled`` capture the loop state
    *after* iteration :attr:`iteration` completed; feeding this back via
    ``summarize(..., resume_state=...)`` continues the run bit-identically
    to one that was never interrupted (same seed, same remaining
    iterations, same merges).

    Instances handed to an ``iteration_hook`` reference the driver's
    *live* partition and stats — hooks must treat them as read-only and
    serialize synchronously (see :mod:`repro.resilience.checkpoint`).
    """

    iteration: int                       # completed iterations so far
    partition: SupernodePartition
    rng_state: Optional[dict] = None     # np bit-generator state dict
    stalled: int = 0                     # consecutive zero-merge rounds
    stats: Optional[RunStats] = None


#: Called after every completed iteration with the live loop state.
IterationHook = Callable[[ResumeState], None]


class BaseSummarizer(ABC):
    """Template for divide/merge/encode summarizers.

    Subclasses implement :meth:`divide` and :meth:`merge_one_group` and set
    :attr:`name`; everything else (loop, timing, encoding, dropping,
    result assembly) is shared so timing comparisons across algorithms are
    apples to apples.
    """

    #: Human-readable algorithm name recorded on results.
    name: str = "base"

    def __init__(
        self,
        iterations: int = 20,
        epsilon: float = 0.0,
        seed: int = 0,
        encoder: str = "sorted",
        cost_model: str = "exact",
        early_stop_rounds: int = 0,
        track_compression: bool = False,
        kernels: str = "numpy",
        encode_partitions: int = 0,
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if encoder not in ("sorted", "per-supernode"):
            raise ValueError("encoder must be 'sorted' or 'per-supernode'")
        if early_stop_rounds < 0:
            raise ValueError("early_stop_rounds must be non-negative")
        if kernels not in ("python", "numpy"):
            raise ValueError("kernels must be 'python' or 'numpy'")
        if encode_partitions < 0:
            raise ValueError("encode_partitions must be non-negative")
        self.iterations = iterations
        self.epsilon = epsilon
        self.seed = seed
        self.encoder = encoder
        self.cost_model = cost_model
        # Hot-path backend for W construction, bulk DOPH and the sorted
        # encode; "python" keeps the differential-testing reference.
        self.kernels = kernels
        # Partitioned-lexsort bucket count for the numpy sorted encode
        # (0 = one global sort; output-identical for every value).
        self.encode_partitions = encode_partitions
        # Extension beyond the paper: stop once this many consecutive
        # iterations produced zero merges (0 disables the check).
        self.early_stop_rounds = early_stop_rounds
        # Encode after every iteration and record the objective on the
        # IterationStats (one run yields the whole per-T curve of Fig. 2).
        self.track_compression = track_compression

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def divide(
        self,
        graph: Graph,
        partition: SupernodePartition,
        rng: np.random.Generator,
    ) -> Tuple[List[List[int]], DivideStats]:
        """Split supernodes into merge groups for this iteration."""

    @abstractmethod
    def merge_one_group(
        self,
        graph: Graph,
        partition: SupernodePartition,
        group: List[int],
        threshold: float,
        rng: np.random.Generator,
    ) -> MergeStats:
        """Run the merge loop on one group (mutating ``partition``)."""

    # ------------------------------------------------------------------
    # shared driver
    # ------------------------------------------------------------------
    def _merge_phase(
        self,
        graph: Graph,
        partition: SupernodePartition,
        groups: List[List[int]],
        threshold: float,
        rng: np.random.Generator,
        iteration: int,
        run_stats: RunStats,
    ) -> MergeStats:
        """Execute one iteration's merge phase (mutating ``partition``).

        The default is the serial group loop; parallel subclasses
        (:class:`repro.distributed.MultiprocessLDME`) override this to fan
        groups out to workers, recording supervision counters on
        ``run_stats``.
        """
        merge_stats = MergeStats()
        # One batch span for the whole serial pass keeps the span tree
        # shape-compatible with the multiprocess driver (which emits one
        # group_batch per worker batch).
        with obs_trace.span(
            "group_batch", key=0, groups=len(groups)
        ) as batch_span:
            for group in groups:
                merge_stats += self.merge_one_group(
                    graph, partition, group, threshold, rng
                )
            batch_span.set_attribute("merges", merge_stats.merges)
            batch_span.set_attribute(
                "candidates_scored", merge_stats.candidates_scored
            )
        return merge_stats

    def summarize(
        self,
        graph: Graph,
        initial_partition: SupernodePartition = None,
        *,
        resume_state: Optional[ResumeState] = None,
        iteration_hook: Optional[IterationHook] = None,
    ) -> Summarization:
        """Run the full pipeline on ``graph`` and return the summarization.

        ``initial_partition`` warm-starts from an existing supernode
        assignment (e.g. a previous run's partition); the default is the
        paper's all-singleton initialization. The provided partition is
        not mutated.

        ``resume_state`` restarts an interrupted run at an iteration
        boundary (partition + RNG state + counters); the remainder of the
        run is bit-identical to the uninterrupted one. ``iteration_hook``
        is called after every completed iteration with the live loop state
        — the checkpointing seam used by
        :func:`repro.resilience.run_resumable`.
        """
        rng = np.random.default_rng(self.seed)
        stats = RunStats()
        stalled = 0
        start_iteration = 1
        if resume_state is not None:
            if initial_partition is not None:
                raise ValueError(
                    "pass either initial_partition or resume_state, not both"
                )
            if resume_state.partition.num_nodes != graph.num_nodes:
                raise ValueError(
                    "resume_state covers a different node universe"
                )
            partition = resume_state.partition.copy()
            if resume_state.rng_state is not None:
                rng.bit_generator.state = resume_state.rng_state
            if resume_state.stats is not None:
                stats = dataclasses.replace(
                    resume_state.stats,
                    iterations=list(resume_state.stats.iterations),
                )
            stalled = resume_state.stalled
            start_iteration = resume_state.iteration + 1
            if self.early_stop_rounds and stalled >= self.early_stop_rounds:
                # The interrupted run had already early-stopped; resume
                # must go straight to the encode, not iterate further.
                start_iteration = self.iterations + 1
        elif initial_partition is None:
            partition = SupernodePartition(graph.num_nodes)
        else:
            if initial_partition.num_nodes != graph.num_nodes:
                raise ValueError(
                    "initial_partition covers a different node universe"
                )
            partition = initial_partition.copy()
        # Span ids derive from (seed, algorithm) and structural keys, so
        # a resumed run re-creates the run span (same id) and emits
        # exactly the post-checkpoint spans the uninterrupted run would
        # have — the property pinned by tests/obs/test_golden_trace.py.
        # The attributes here are deliberately resume-invariant.
        with obs_trace.span(
            "run",
            key=f"{self.name}/{self.seed}",
            algorithm=self.name,
            seed=self.seed,
            kernels=self.kernels,
            iterations=self.iterations,
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
        ) as run_span:
            for t in range(start_iteration, self.iterations + 1):
                with obs_trace.span("iteration", key=t) as iter_span:
                    with obs_trace.span(
                        "divide", key=t, backend=self.kernels
                    ) as divide_span:
                        tic = time.perf_counter()
                        groups, divide_stats = self.divide(
                            graph, partition, rng
                        )
                        divide_seconds = time.perf_counter() - tic
                        divide_span.set_attribute(
                            "num_groups", divide_stats.num_groups
                        )
                        divide_span.set_attribute(
                            "num_mergeable", divide_stats.num_mergeable
                        )
                        divide_span.set_attribute(
                            "max_group_size", divide_stats.max_group_size
                        )

                    with obs_trace.span("merge", key=t) as merge_span:
                        tic = time.perf_counter()
                        threshold = merge_threshold(t)
                        merge_stats = self._merge_phase(
                            graph, partition, groups, threshold, rng, t,
                            stats,
                        )
                        merge_seconds = time.perf_counter() - tic
                        merge_span.set_attribute(
                            "merges", merge_stats.merges
                        )
                        merge_span.set_attribute(
                            "candidates_scored",
                            merge_stats.candidates_scored,
                        )

                    obs_metrics.inc(
                        "ldme_merges_accepted_total", merge_stats.merges
                    )
                    obs_metrics.inc(
                        "ldme_merge_candidates_scored_total",
                        merge_stats.candidates_scored,
                    )
                    obs_metrics.observe(
                        "ldme_divide_seconds", divide_seconds,
                        labels={"backend": self.kernels},
                    )
                    obs_metrics.observe(
                        "ldme_merge_seconds", merge_seconds,
                        labels={"backend": self.kernels},
                    )

                    stats.divide_seconds += divide_seconds
                    stats.merge_seconds += merge_seconds
                    record = IterationStats(
                        iteration=t,
                        divide_seconds=divide_seconds,
                        merge_seconds=merge_seconds,
                        num_groups=divide_stats.num_groups,
                        max_group_size=divide_stats.max_group_size,
                        num_supernodes=partition.num_supernodes,
                        merges=merge_stats.merges,
                    )
                    if self.track_compression:
                        with obs_trace.span("encode", key=t):
                            tic = time.perf_counter()
                            snapshot = (
                                encode_sorted(
                                    graph, partition, backend=self.kernels,
                                    partitions=self.encode_partitions,
                                )
                                if self.encoder == "sorted"
                                else encode_per_supernode(graph, partition)
                            )
                            record.encode_seconds = (
                                time.perf_counter() - tic
                            )
                        tracked = Summarization(
                            num_nodes=graph.num_nodes,
                            num_edges=graph.num_edges,
                            partition=partition,
                            superedges=snapshot.superedges,
                            corrections=snapshot.corrections,
                        )
                        record.objective = tracked.objective
                        record.compression = tracked.compression
                    stats.iterations.append(record)
                    iter_span.set_attribute(
                        "num_supernodes", partition.num_supernodes
                    )
                    iter_span.set_attribute("merges", merge_stats.merges)
                    if self.early_stop_rounds:
                        stalled = 0 if merge_stats.merges else stalled + 1
                    if iteration_hook is not None:
                        iteration_hook(
                            ResumeState(
                                iteration=t,
                                partition=partition,
                                rng_state=rng.bit_generator.state,
                                stalled=stalled,
                                stats=stats,
                            )
                        )
                if self.early_stop_rounds and stalled >= self.early_stop_rounds:
                    break
            with obs_trace.span(
                "encode", key="final", backend=self.kernels,
                encoder=self.encoder,
            ) as encode_span:
                tic = time.perf_counter()
                if self.encoder == "sorted":
                    encoded = encode_sorted(
                        graph, partition, backend=self.kernels,
                        partitions=self.encode_partitions,
                    )
                else:
                    encoded = encode_per_supernode(graph, partition)
                stats.encode_seconds = time.perf_counter() - tic
                encode_span.set_attribute(
                    "superedges", len(encoded.superedges)
                )
                encode_span.set_attribute(
                    "additions", len(encoded.corrections.additions)
                )
                encode_span.set_attribute(
                    "deletions", len(encoded.corrections.deletions)
                )
            obs_metrics.inc(
                "ldme_superedges_total", len(encoded.superedges)
            )
            obs_metrics.inc(
                "ldme_correction_additions_total",
                len(encoded.corrections.additions),
            )
            obs_metrics.inc(
                "ldme_correction_deletions_total",
                len(encoded.corrections.deletions),
            )
            obs_metrics.observe(
                "ldme_encode_seconds", stats.encode_seconds,
                labels={"backend": self.kernels},
            )

            result = Summarization(
                num_nodes=graph.num_nodes,
                num_edges=graph.num_edges,
                partition=partition,
                superedges=encoded.superedges,
                corrections=encoded.corrections,
                stats=stats,
                algorithm=self.name,
            )
            if self.epsilon > 0:
                with obs_trace.span("drop", epsilon=self.epsilon):
                    tic = time.perf_counter()
                    result = drop_edges(graph, result, self.epsilon)
                    result.stats.drop_seconds = time.perf_counter() - tic
            run_span.set_attribute(
                "num_supernodes", result.num_supernodes
            )
            run_span.set_attribute("objective", result.objective)
        return result
