"""Configuration objects for summarizers."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LDMEConfig"]


@dataclass(frozen=True)
class LDMEConfig:
    """Tuning knobs for :class:`repro.core.ldme.LDME`.

    Attributes
    ----------
    k:
        DOPH signature length — the paper's compression/speed dial. The
        paper's two named settings are ``k=5`` (LDME5, high compression)
        and ``k=20`` (LDME20, high speed).
    iterations:
        Number of divide+merge rounds ``T`` (the paper sweeps 10..60).
    epsilon:
        Error bound for the optional lossy dropping step; ``0`` = lossless.
    cost_model:
        ``"exact"`` (true objective deltas; default) or ``"paper"``
        (Algorithm 4 as printed). See :mod:`repro.core.cost`.
    seed:
        Seed for all randomness (permutations, direction bits, merge order).
    encoder:
        ``"sorted"`` (Algorithm 5, default) or ``"per-supernode"``
        (SWeG-style baseline encoder) — exposed for ablations.
    kernels:
        Hot-path backend: ``"numpy"`` (default — vectorized kernels from
        :mod:`repro.kernels` for W construction, bulk DOPH and the sorted
        encode) or ``"python"`` (the pure-Python reference the kernels are
        differential-tested against). Results are bit-identical; the knob
        exists for testing and for perf regression baselines.
    shared_memory:
        Zero-copy worker transport for the multiprocess driver:
        ``"auto"`` (default — shared-memory arenas when the platform
        supports them, pickle batches otherwise), ``"on"`` (require
        arenas; setup failure still degrades to pickle but is counted),
        ``"off"`` (always pickle). Serial drivers ignore it. Results are
        bit-identical across all three settings.
    doph_chunk_rows:
        Entries per cache-blocked chunk in the bulk-DOPH scatter kernel
        (``0`` = auto-sized). Any value produces bit-identical
        signatures; the knob trades temporary-array footprint against
        loop overhead.
    encode_partitions:
        Bucket count for the partitioned encode lexsort (``0``/``1`` =
        one global sort). Any value produces identical output ordering.
    """

    k: int = 5
    iterations: int = 20
    epsilon: float = 0.0
    cost_model: str = "exact"
    seed: int = 0
    encoder: str = "sorted"
    kernels: str = "numpy"
    shared_memory: str = "auto"
    doph_chunk_rows: int = 0
    encode_partitions: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if self.cost_model not in ("exact", "paper"):
            raise ValueError("cost_model must be 'exact' or 'paper'")
        if self.encoder not in ("sorted", "per-supernode"):
            raise ValueError("encoder must be 'sorted' or 'per-supernode'")
        if self.kernels not in ("python", "numpy"):
            raise ValueError("kernels must be 'python' or 'numpy'")
        if self.shared_memory not in ("auto", "on", "off"):
            raise ValueError("shared_memory must be 'auto', 'on' or 'off'")
        if self.doph_chunk_rows < 0:
            raise ValueError("doph_chunk_rows must be non-negative")
        if self.encode_partitions < 0:
            raise ValueError("encode_partitions must be non-negative")
