"""Core contribution: LDME and the divide/merge/encode machinery."""

from .base import BaseSummarizer
from .config import LDMEConfig
from .cost import (
    COST_MODELS,
    get_cost_model,
    loop_cost_exact,
    loop_cost_paper,
    pair_cost_exact,
    pair_cost_paper,
)
from .divide import DivideStats, lsh_divide, shingle_divide
from .drop import drop_edges, verify_error_bound
from .encode import EncodeResult, encode_per_supernode, encode_sorted
from .ldme import LDME, ldme5, ldme20, summarize
from .merge import (
    MergeStats,
    merge_group_exact,
    merge_group_superjaccard,
    merge_threshold,
    super_jaccard,
)
from .partition import SupernodePartition
from .reconstruct import reconstruct, reconstruction_error, verify_lossless
from .resummarize import affected_nodes, resummarize
from .saving import GroupAdjacency, saving_of_pair, supernode_cost
from .validate import (
    SummaryValidationError,
    check_summary,
    partition_coverage_problems,
    validate_summary,
)
from .summary import CorrectionSet, IterationStats, RunStats, Summarization

__all__ = [
    "BaseSummarizer",
    "LDMEConfig",
    "COST_MODELS",
    "get_cost_model",
    "pair_cost_exact",
    "loop_cost_exact",
    "pair_cost_paper",
    "loop_cost_paper",
    "DivideStats",
    "lsh_divide",
    "shingle_divide",
    "drop_edges",
    "verify_error_bound",
    "EncodeResult",
    "encode_sorted",
    "encode_per_supernode",
    "LDME",
    "ldme5",
    "ldme20",
    "summarize",
    "MergeStats",
    "merge_threshold",
    "merge_group_exact",
    "merge_group_superjaccard",
    "super_jaccard",
    "SupernodePartition",
    "reconstruct",
    "reconstruction_error",
    "verify_lossless",
    "resummarize",
    "affected_nodes",
    "GroupAdjacency",
    "saving_of_pair",
    "supernode_cost",
    "check_summary",
    "partition_coverage_problems",
    "validate_summary",
    "SummaryValidationError",
    "CorrectionSet",
    "IterationStats",
    "RunStats",
    "Summarization",
]
