"""Divide step: split the supernodes into merge groups.

Two strategies, matching the paper:

* :func:`lsh_divide` — LDME's weighted-LSH divide (Algorithm 3). Each
  supernode's binarized supervector (= its neighbour set ``N_A``) is hashed
  with DOPH; supernodes sharing the length-``k`` signature form a group.
  Larger ``k`` → more, smaller groups → faster merging, slightly weaker
  compression (the tuning knob of Figure 4).
* :func:`shingle_divide` — SWeG's divide: one random shingle per supernode.

Both return only groups with at least two members (singletons cannot merge)
plus divide statistics for Figure 4 style reporting. Isolated supernodes
(empty neighbourhood) are never grouped: their signature is the all-EMPTY
sentinel and merging them cannot change the objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

import numpy as np

from ..graph.graph import Graph
from ..lsh.doph import doph_signatures_bulk
from ..lsh.permutation import random_permutation
from ..lsh.shingle import node_shingles
from ..obs import trace as obs_trace
from .partition import SupernodePartition

__all__ = ["DivideStats", "lsh_divide", "shingle_divide"]

SeedLike = Union[int, np.random.Generator, None]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass(frozen=True)
class DivideStats:
    """Shape of one divide: the quantities plotted in Figure 4.

    ``num_groups`` counts every bucket the divide produces (the paper's
    count — its combinatorial argument enumerates possible signatures, so a
    singleton bucket is still a group); ``num_mergeable`` counts only the
    buckets with at least two supernodes, which are the ones the merge
    phase visits.
    """

    num_groups: int          # all signature buckets (the paper's count)
    num_mergeable: int       # buckets with >= 2 supernodes
    max_group_size: int      # size of the largest bucket
    num_singletons: int      # supernodes alone in their bucket
    num_isolated: int        # supernodes with empty neighbourhoods


def lsh_divide(
    graph: Graph,
    partition: SupernodePartition,
    k: int,
    seed: SeedLike = None,
    weights: str = "binary",
    weight_cap: int = 4,
    kernels: str = "numpy",
    chunk_rows: int = 0,
    signature_fn=None,
) -> Tuple[List[List[int]], DivideStats]:
    """Weighted-LSH divide (Algorithm 3), fully vectorized.

    Every supernode's binarized supervector is the multiset of its members'
    neighbours, which the CSR exposes directly: one scatter-minimum computes
    all DOPH signatures at once (see
    :func:`repro.lsh.doph.doph_signatures_bulk`). Returns ``(groups,
    stats)`` where each group is a list of supernode ids sharing a
    signature; size-one buckets are counted as singletons.

    ``weights`` selects the vector the LSH sees: ``"binary"`` (the paper's
    binarized supervector) or ``"expanded"`` (the Shrivastava 2016
    weight-expansion — true ``w(A, ·)`` weights up to ``weight_cap``; see
    :mod:`repro.lsh.weighted_doph`).

    ``kernels`` picks the signature backend on the binary path:
    ``"numpy"`` (the bulk scatter kernel) or ``"python"`` (the per-node
    scalar reference loop). The groups are identical either way; the
    expanded-weights path is always bulk. ``chunk_rows`` bounds the numpy
    kernel's cache-blocked scatter chunks (0 = auto; bit-identical for
    any value). ``signature_fn``, when given, replaces the in-process
    bulk call on the binary path — the seam the multiprocess driver uses
    to fan the scatter out across shared-memory workers; it receives
    ``(rows, items, num_rows, perm, k, directions)`` and must return the
    same ``(num_rows, k)`` signature matrix.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if weights not in ("binary", "expanded"):
        raise ValueError("weights must be 'binary' or 'expanded'")
    rng = _rng(seed)
    n = graph.num_nodes
    directions = rng.integers(0, 2, size=k).astype(np.int64)
    heads = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    head_supers = partition.node2super[heads]
    sids, rows = np.unique(head_supers, return_inverse=True)
    with obs_trace.span(
        "signatures", key="sig", backend=kernels, weights=weights,
    ) as sig_span:
        if weights == "binary":
            perm = random_permutation(max(1, n), rng)
            if signature_fn is not None:
                signatures = signature_fn(
                    rows, graph.indices, int(sids.size), perm, k, directions
                )
            else:
                signatures = doph_signatures_bulk(
                    rows, graph.indices, sids.size, perm, k, directions,
                    backend=kernels, chunk_rows=chunk_rows,
                )
        else:
            from ..lsh.weighted_doph import weighted_doph_signatures_bulk

            # Aggregate duplicate (supernode, neighbour) pairs into weights.
            key = rows * np.int64(max(1, n)) + graph.indices
            unique_key, counts = np.unique(key, return_counts=True)
            agg_rows = unique_key // max(1, n)
            agg_items = unique_key % max(1, n)
            perm = random_permutation(max(1, n) * weight_cap, rng)
            signatures = weighted_doph_signatures_bulk(
                agg_rows, agg_items, counts, sids.size,
                max(1, n), k, weight_cap, perm, directions,
            )
        sig_span.set_attribute("rows", int(sids.size))
        sig_span.set_attribute("nnz", int(graph.indices.size))
    isolated = partition.num_supernodes - int(sids.size)
    _, bucket_of = np.unique(signatures, axis=0, return_inverse=True)
    buckets: Dict[int, List[int]] = {}
    for sid, bucket in zip(sids.tolist(), bucket_of.tolist()):
        buckets.setdefault(bucket, []).append(sid)
    groups = [bucket for bucket in buckets.values() if len(bucket) >= 2]
    singletons = sum(1 for bucket in buckets.values() if len(bucket) == 1)
    stats = DivideStats(
        num_groups=len(buckets),
        num_mergeable=len(groups),
        max_group_size=max((len(g) for g in groups), default=0),
        num_singletons=singletons,
        num_isolated=isolated,
    )
    return groups, stats


def shingle_divide(
    graph: Graph,
    partition: SupernodePartition,
    seed: SeedLike = None,
    max_group_size: int = 0,
) -> Tuple[List[List[int]], DivideStats]:
    """SWeG's single-shingle divide.

    ``F(A) = min over members v of min over closed neighbourhood of h(u)``
    for one random bijection ``h``. Supernodes with equal shingle form a
    group. When ``max_group_size > 0``, oversized groups are recursively
    re-split with fresh shingles (SWeG's practical refinement); the paper's
    experiments attribute SWeG's slowness to groups staying large, so the
    default (0) performs no re-splitting.
    """
    rng = _rng(seed)
    perm = random_permutation(graph.num_nodes, rng)
    shingles = node_shingles(graph, perm)
    buckets: Dict[int, List[int]] = {}
    isolated = 0
    for sid in partition.supernode_ids():
        mem = partition.members(sid)
        # Isolated supernodes shingle to their own h(v); exclude them from
        # merge groups only when the whole supernode has no neighbours.
        if all(graph.degree(v) == 0 for v in mem):
            isolated += 1
            continue
        key = int(min(shingles[v] for v in mem))
        buckets.setdefault(key, []).append(sid)
    groups = [bucket for bucket in buckets.values() if len(bucket) >= 2]
    if max_group_size > 0:
        groups = _resplit(graph, partition, groups, max_group_size, rng)
    singletons = sum(1 for bucket in buckets.values() if len(bucket) == 1)
    stats = DivideStats(
        num_groups=singletons + len(groups),
        num_mergeable=len(groups),
        max_group_size=max((len(g) for g in groups), default=0),
        num_singletons=singletons,
        num_isolated=isolated,
    )
    return groups, stats


def _resplit(
    graph: Graph,
    partition: SupernodePartition,
    groups: List[List[int]],
    max_group_size: int,
    rng: np.random.Generator,
    depth: int = 8,
) -> List[List[int]]:
    """Recursively re-shingle oversized groups (bounded depth)."""
    result: List[List[int]] = []
    pending = [(g, depth) for g in groups]
    while pending:
        group, budget = pending.pop()
        if len(group) <= max_group_size or budget == 0:
            result.append(group)
            continue
        perm = random_permutation(graph.num_nodes, rng)
        shingles = node_shingles(graph, perm)
        sub: Dict[int, List[int]] = {}
        for sid in group:
            key = int(min(shingles[v] for v in partition.members(sid)))
            sub.setdefault(key, []).append(sid)
        if len(sub) == 1:
            # Shingling cannot separate these supernodes; keep as is.
            result.append(group)
            continue
        for bucket in sub.values():
            if len(bucket) >= 2:
                pending.append((bucket, budget - 1))
    return result
