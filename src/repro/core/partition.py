"""Supernode partition: the mutable state every summarizer iterates on.

A :class:`SupernodePartition` maps each original node to its current
supernode and tracks member lists. Supernode ids are stable integers drawn
from the node id space (initially supernode ``v`` = {v}); a merge keeps the
id of the *larger* side and folds the smaller member list in, matching the
paper's ``W``-update rule which iterates the smaller hashtable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

import numpy as np

from ..graph.graph import Graph

__all__ = ["SupernodePartition"]


class SupernodePartition:
    """Partition of ``0..n-1`` into supernodes.

    Parameters
    ----------
    num_nodes:
        Size of the node universe; the initial partition is all-singletons
        (line 1 of Algorithm 1).
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self._node2super = np.arange(num_nodes, dtype=np.int64)
        self._members: Dict[int, List[int]] = {
            v: [v] for v in range(num_nodes)
        }

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_members(
        cls, num_nodes: int, members: Mapping[int, Iterable[int]]
    ) -> "SupernodePartition":
        """Build a partition from an explicit supernode → members mapping.

        The mapping must cover every node exactly once; supernode ids must
        be node ids of one of their members (any member works).
        """
        part = cls.__new__(cls)
        part._node2super = np.full(num_nodes, -1, dtype=np.int64)
        part._members = {}
        for sid, mem in members.items():
            mem_list = [int(v) for v in mem]
            if not mem_list:
                raise ValueError(f"supernode {sid} has no members")
            for v in mem_list:
                if not 0 <= v < num_nodes:
                    raise ValueError(f"member {v} out of range")
                if part._node2super[v] != -1:
                    raise ValueError(f"node {v} assigned to two supernodes")
                part._node2super[v] = sid
            part._members[int(sid)] = mem_list
        if np.any(part._node2super < 0):
            missing = int(np.flatnonzero(part._node2super < 0)[0])
            raise ValueError(f"node {missing} not covered by any supernode")
        return part

    @classmethod
    def from_labels(cls, labels) -> "SupernodePartition":
        """Build a partition from a node → cluster-label array.

        Labels are arbitrary hashables; each cluster's supernode id is its
        lowest member node id (so ids stay within the node space, matching
        the merge invariant). Interop helper for evaluation workflows.
        """
        label_list = list(labels)
        groups: Dict[object, List[int]] = {}
        for node, label in enumerate(label_list):
            groups.setdefault(label, []).append(node)
        members = {min(mem): mem for mem in groups.values()}
        return cls.from_members(len(label_list), members)

    def copy(self) -> "SupernodePartition":
        """Deep copy (used by experiments that fork a warm partition)."""
        dup = SupernodePartition.__new__(SupernodePartition)
        dup._node2super = self._node2super.copy()
        dup._members = {sid: list(mem) for sid, mem in self._members.items()}
        return dup

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Size of the underlying node universe."""
        return int(self._node2super.size)

    @property
    def num_supernodes(self) -> int:
        """Current number of supernodes ``|S|``."""
        return len(self._members)

    @property
    def node2super(self) -> np.ndarray:
        """The node → supernode id array (do not mutate)."""
        return self._node2super

    def supernode_of(self, v: int) -> int:
        """Supernode id currently containing node ``v``."""
        return int(self._node2super[v])

    def members(self, sid: int) -> List[int]:
        """Member node ids of supernode ``sid`` (a copy-safe list view)."""
        return self._members[sid]

    def size(self, sid: int) -> int:
        """``|A|`` — member count of supernode ``sid``."""
        return len(self._members[sid])

    def supernode_ids(self) -> Iterator[int]:
        """Iterate over current supernode ids."""
        return iter(self._members.keys())

    def __contains__(self, sid: int) -> bool:
        return sid in self._members

    def __len__(self) -> int:
        return self.num_supernodes

    def members_map(self) -> Dict[int, List[int]]:
        """Snapshot dict of supernode id → member list (copied)."""
        return {sid: list(mem) for sid, mem in self._members.items()}

    # ------------------------------------------------------------------
    # neighbourhood views
    # ------------------------------------------------------------------
    def neighborhood(self, graph: Graph, sid: int) -> np.ndarray:
        """``N_A``: sorted unique node ids adjacent to any member of ``sid``.

        This is exactly the support of the binarized supervector that the
        DOPH divide hashes.
        """
        rows = [graph.neighbors(v) for v in self._members[sid]]
        if not rows:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(rows))

    def supervector(self, graph: Graph, sid: int) -> Dict[int, int]:
        """``w(A, ·)``: node id → number of members of ``A`` adjacent to it.

        The weighted vector whose weighted-Jaccard similarity equals
        SuperJaccard (Section 3 of the paper).
        """
        weights: Dict[int, int] = {}
        for v in self._members[sid]:
            for u in graph.neighbors(v).tolist():
                weights[u] = weights.get(u, 0) + 1
        return weights

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def merge(self, a: int, b: int) -> Tuple[int, int]:
        """Merge supernodes ``a`` and ``b``.

        Returns ``(survivor, absorbed)``: the larger side's id survives
        (ties keep ``a``), and the absorbed side's members are relabelled.
        """
        if a == b:
            raise ValueError("cannot merge a supernode with itself")
        mem_a = self._members[a]
        mem_b = self._members[b]
        if len(mem_b) > len(mem_a):
            survivor, absorbed = b, a
            mem_s, mem_x = mem_b, mem_a
        else:
            survivor, absorbed = a, b
            mem_s, mem_x = mem_a, mem_b
        for v in mem_x:
            self._node2super[v] = survivor
        mem_s.extend(mem_x)
        del self._members[absorbed]
        return survivor, absorbed

    def extract(self, v: int) -> int:
        """Split node ``v`` out of its supernode into a fresh singleton.

        Returns the singleton's supernode id (always ``v`` itself; if the
        old supernode was labelled ``v``, the remainder is relabelled to one
        of its other members). Used by incremental summarizers (MoSSo).
        """
        sid = int(self._node2super[v])
        mem = self._members[sid]
        if len(mem) == 1:
            return sid
        mem.remove(v)
        if sid == v:
            # The departing node owned the label; hand it to a survivor.
            new_sid = mem[0]
            for u in mem:
                self._node2super[u] = new_sid
            self._members[new_sid] = mem
            del self._members[v]
        self._members[v] = [v]
        self._node2super[v] = v
        return v

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise if internal invariants are violated (used by tests)."""
        seen = np.zeros(self.num_nodes, dtype=bool)
        for sid, mem in self._members.items():
            if not mem:
                raise AssertionError(f"supernode {sid} is empty")
            for v in mem:
                if seen[v]:
                    raise AssertionError(f"node {v} appears twice")
                seen[v] = True
                if self._node2super[v] != sid:
                    raise AssertionError(
                        f"node2super[{v}] = {self._node2super[v]} != {sid}"
                    )
        if not seen.all():
            missing = int(np.flatnonzero(~seen)[0])
            raise AssertionError(f"node {missing} not in any supernode")
