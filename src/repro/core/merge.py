"""Merge phase: per-group randomized supernode merging.

For each group produced by the divide step, the merge loop (Section 2 of
the paper) repeatedly removes a random supernode ``A`` from the working set,
finds its best partner ``B``, and merges when the Saving clears the
iteration-dependent threshold ``θ(t) = 1/(1+t)``. LDME scores candidates by
*exact* Saving through the group's ``W`` structure (Algorithm 4); SWeG
scores by SuperJaccard and checks Saving only once — both policies are
implemented here so the baselines share one audited merge loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from ..graph.graph import Graph
from ..lsh.weighted import weighted_jaccard
from .partition import SupernodePartition
from .saving import GroupAdjacency

__all__ = [
    "merge_threshold",
    "MergeStats",
    "merge_group_exact",
    "merge_group_superjaccard",
    "super_jaccard",
]

SeedLike = Union[int, np.random.Generator, None]


def merge_threshold(t: int) -> float:
    """``θ(t) = 1 / (1 + t)``: looser in later iterations (t is 1-based)."""
    if t < 1:
        raise ValueError("iteration number t must be >= 1")
    return 1.0 / (1.0 + t)


@dataclass
class MergeStats:
    """Bookkeeping for one merge phase (summed across groups)."""

    merges: int = 0
    candidates_scored: int = 0

    def __iadd__(self, other: "MergeStats") -> "MergeStats":
        self.merges += other.merges
        self.candidates_scored += other.candidates_scored
        return self


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def merge_group_exact(
    graph: Graph,
    partition: SupernodePartition,
    group: List[int],
    threshold: float,
    seed: SeedLike = None,
    cost_model: str = "exact",
    kernels: str = "python",
) -> MergeStats:
    """LDME merge loop: candidates scored by exact Saving via ``W``.

    Mutates ``partition`` in place and returns merge statistics.
    ``kernels`` picks the ``W``-construction backend (see
    :class:`~repro.core.saving.GroupAdjacency`); the merge decisions are
    identical under either backend.
    """
    rng = _rng(seed)
    stats = MergeStats()
    if len(group) < 2:
        return stats
    adjacency = GroupAdjacency(
        graph, partition, group, cost_model=cost_model, kernels=kernels
    )
    temp = list(group)
    while temp:
        pick = int(rng.integers(len(temp)))
        temp[pick], temp[-1] = temp[-1], temp[pick]
        a = temp.pop()
        if not temp:
            break
        best, best_saving = adjacency.best_candidate(a, temp)
        stats.candidates_scored += len(temp)
        if best is not None and best_saving >= threshold:
            survivor, absorbed = partition.merge(a, best)
            adjacency.apply_merge(survivor, absorbed)
            # "Replace B in temp with the merged result."
            temp[temp.index(best)] = survivor
            stats.merges += 1
    return stats


def super_jaccard(
    vec_a: Dict[int, int], vec_b: Dict[int, int]
) -> float:
    """SuperJaccard similarity (Eq. 3) of two supervectors.

    Identical to weighted Jaccard on the ``w(A, ·)`` vectors — the identity
    LDME's divide step is built on.
    """
    return weighted_jaccard(vec_a, vec_b)


def merge_group_superjaccard(
    graph: Graph,
    partition: SupernodePartition,
    group: List[int],
    threshold: float,
    seed: SeedLike = None,
    cost_model: str = "exact",
    kernels: str = "python",
) -> MergeStats:
    """SWeG merge loop: candidates ranked by SuperJaccard, Saving checked once.

    This is the baseline policy the paper attributes SWeG's merge cost to:
    every candidate comparison walks node-level supervectors (O(|N_A| +
    |N_B|)), and the selected pair still needs one Saving evaluation.
    """
    rng = _rng(seed)
    stats = MergeStats()
    if len(group) < 2:
        return stats
    adjacency = GroupAdjacency(
        graph, partition, group, cost_model=cost_model, kernels=kernels
    )
    vectors: Dict[int, Dict[int, int]] = {
        sid: partition.supervector(graph, sid) for sid in group
    }
    temp = list(group)
    while temp:
        pick = int(rng.integers(len(temp)))
        temp[pick], temp[-1] = temp[-1], temp[pick]
        a = temp.pop()
        if not temp:
            break
        best: Optional[int] = None
        best_sim = -1.0
        for b in temp:
            sim = super_jaccard(vectors[a], vectors[b])
            if sim > best_sim:
                best, best_sim = b, sim
        stats.candidates_scored += len(temp)
        if best is None:
            continue
        if adjacency.saving(a, best) >= threshold:
            survivor, absorbed = partition.merge(a, best)
            adjacency.apply_merge(survivor, absorbed)
            merged_vec = vectors.pop(absorbed)
            base_vec = vectors.pop(survivor)
            for key, weight in merged_vec.items():
                base_vec[key] = base_vec.get(key, 0) + weight
            vectors[survivor] = base_vec
            temp[temp.index(best)] = survivor
            stats.merges += 1
    return stats
