"""Structural validation of summarization outputs.

Deserialized or hand-built summaries can be malformed in ways losslessness
checks alone won't localize (dangling supernode ids, out-of-range nodes,
duplicate correction edges, additions that expanded superedges already
cover). :func:`validate_summary` raises a precise error for each failure
mode; :func:`check_summary` returns the problems as a list for tooling.
"""

from __future__ import annotations

from typing import List, Optional

from ..graph.graph import Graph
from .reconstruct import reconstruction_error
from .summary import Summarization

__all__ = [
    "validate_summary",
    "check_summary",
    "partition_coverage_problems",
    "SummaryValidationError",
]


class SummaryValidationError(ValueError):
    """A summarization violates a structural invariant."""


def partition_coverage_problems(
    partition, declared_num_nodes: int
) -> List[str]:
    """Problems with a partition's coverage of the node universe.

    The one check both the standalone validator and the shard stitcher
    need: the partition's own invariants hold (every node in exactly one
    supernode, labels consistent) and it covers exactly the declared
    universe. Returns problem strings; empty list = clean.
    """
    problems: List[str] = []
    try:
        partition.validate()
    except AssertionError as exc:
        problems.append(f"partition invalid: {exc}")
    if partition.num_nodes != declared_num_nodes:
        problems.append(
            f"partition covers {partition.num_nodes} nodes but summary "
            f"declares {declared_num_nodes}"
        )
    return problems


def check_summary(
    summary: Summarization, graph: Optional[Graph] = None
) -> List[str]:
    """Collect structural problems (empty list = clean).

    With ``graph`` provided, also verifies exact losslessness.
    """
    partition = summary.partition

    # Partition covers the node universe consistently.
    problems = partition_coverage_problems(partition, summary.num_nodes)

    # Superedges must reference live supernodes.
    live = set(partition.supernode_ids())
    for a, b in summary.superedges:
        if a not in live or b not in live:
            problems.append(f"superedge ({a}, {b}) references a dead supernode")
    seen_superedges = set()
    for pair in summary.superedges:
        key = (min(pair), max(pair))
        if key in seen_superedges:
            problems.append(f"duplicate superedge {key}")
        seen_superedges.add(key)

    # Correction edges: in range, canonical, unique, and no overlap
    # between C+ and C-.
    additions = summary.corrections.additions
    deletions = summary.corrections.deletions
    for label, edges in (("C+", additions), ("C-", deletions)):
        seen = set()
        for u, v in edges:
            if not (0 <= u < summary.num_nodes and 0 <= v < summary.num_nodes):
                problems.append(f"{label} edge ({u}, {v}) out of node range")
            if (u, v) in seen:
                problems.append(f"duplicate {label} edge ({u}, {v})")
            seen.add((u, v))
    overlap = set(additions) & set(deletions)
    for edge in sorted(overlap):
        problems.append(f"edge {edge} appears in both C+ and C-")

    # C- edges only make sense inside an encoded superedge block; C+ edges
    # must not duplicate pairs a superedge already produces.
    node2super = partition.node2super
    superedge_pairs = {
        (min(a, b), max(a, b)) for a, b in summary.superedges
    }

    def in_range(u, v):
        return 0 <= u < summary.num_nodes and 0 <= v < summary.num_nodes

    for u, v in deletions:
        if not in_range(u, v):
            continue  # already reported above
        pair = _pair_of(node2super, u, v)
        if pair not in superedge_pairs:
            problems.append(
                f"C- edge ({u}, {v}) targets pair {pair} with no superedge"
            )
    for u, v in additions:
        if not in_range(u, v):
            continue
        pair = _pair_of(node2super, u, v)
        if pair in superedge_pairs:
            problems.append(
                f"C+ edge ({u}, {v}) duplicates covered pair {pair}"
            )

    if graph is not None and not problems:
        missing, spurious = reconstruction_error(graph, summary)
        if missing or spurious:
            problems.append(
                f"reconstruction mismatch: {len(missing)} missing / "
                f"{len(spurious)} spurious edges"
            )
    return problems


def _pair_of(node2super, u: int, v: int):
    a, b = int(node2super[u]), int(node2super[v])
    return (a, b) if a < b else (b, a)


def validate_summary(
    summary: Summarization, graph: Optional[Graph] = None
) -> None:
    """Raise :class:`SummaryValidationError` on the first set of problems."""
    problems = check_summary(summary, graph)
    if problems:
        raise SummaryValidationError("; ".join(problems[:10]))
