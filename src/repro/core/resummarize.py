"""Incremental re-summarization after graph updates.

Static summarizers start from singletons every time; MoSSo handles streams
edge by edge. This extension covers the middle ground the paper's dynamic
comparison motivates: a graph receives a *batch* of updates and the old
summary is mostly still right. :func:`resummarize` warm-starts from the
previous partition, first extracting every node whose neighbourhood the
update batch touched (their old grouping is suspect), then runs a few LDME
iterations to regroup.

Cost scales with the update size plus the usual per-iteration cost — for
small batches this is far cheaper than a cold run at equal quality.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from ..graph.graph import Graph
from .ldme import LDME
from .partition import SupernodePartition
from .summary import Summarization

__all__ = ["affected_nodes", "resummarize"]

Edge = Tuple[int, int]


def affected_nodes(updates: Iterable[Edge]) -> Set[int]:
    """Endpoints touched by an update batch (insertions or deletions)."""
    touched: Set[int] = set()
    for u, v in updates:
        touched.add(int(u))
        touched.add(int(v))
    return touched


def resummarize(
    new_graph: Graph,
    previous_partition: SupernodePartition,
    updates: Iterable[Edge],
    k: int = 5,
    iterations: int = 5,
    seed: int = 0,
    **ldme_kwargs,
) -> Summarization:
    """Summarize ``new_graph`` reusing the previous partition.

    Parameters
    ----------
    new_graph:
        The updated graph (after applying the batch).
    previous_partition:
        The partition from the previous summarization (not mutated).
    updates:
        The edges inserted and/or deleted since that summarization; their
        endpoints are re-seeded as singletons before merging resumes.
    k / iterations / seed / ldme_kwargs:
        LDME settings for the refresh rounds.
    """
    if previous_partition.num_nodes != new_graph.num_nodes:
        raise ValueError(
            "previous partition covers a different node universe; "
            "re-run from scratch when nodes are added or removed"
        )
    warm = previous_partition.copy()
    for node in affected_nodes(updates):
        if not 0 <= node < new_graph.num_nodes:
            raise ValueError(f"update endpoint {node} out of range")
        warm.extract(node)
    algo = LDME(k=k, iterations=iterations, seed=seed, **ldme_kwargs)
    summary = algo.summarize(new_graph, initial_partition=warm)
    summary.algorithm = f"{summary.algorithm}-incremental"
    return summary
