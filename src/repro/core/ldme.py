"""LDME — the paper's algorithm (Algorithm 1).

Weighted-LSH divide (DOPH, Algorithm 3) + exact-Saving merge (Algorithm 4)
+ sort-based encode (Algorithm 5). ``k`` trades compression for speed:
the paper's named settings are LDME5 (``k=5``) and LDME20 (``k=20``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..graph.graph import Graph
from .base import BaseSummarizer
from .config import LDMEConfig
from .divide import DivideStats, lsh_divide
from .merge import MergeStats, merge_group_exact, merge_group_superjaccard
from .partition import SupernodePartition
from .summary import Summarization

__all__ = ["LDME", "ldme5", "ldme20", "summarize"]


class LDME(BaseSummarizer):
    """Locality-sensitive-hashing Divide, Merge and Encode.

    Parameters mirror :class:`repro.core.config.LDMEConfig`; either pass a
    config or individual keyword arguments.

    Examples
    --------
    >>> from repro.graph.generators import web_host_graph
    >>> g = web_host_graph(num_hosts=4, host_size=10, seed=1)
    >>> result = LDME(k=5, iterations=10, seed=7).summarize(g)
    >>> 0.0 <= result.compression <= 1.0
    True
    """

    name = "LDME"

    def __init__(
        self,
        k: int = 5,
        iterations: int = 20,
        epsilon: float = 0.0,
        seed: int = 0,
        cost_model: str = "exact",
        encoder: str = "sorted",
        merge_policy: str = "exact",
        early_stop_rounds: int = 0,
        divide_weights: str = "binary",
        track_compression: bool = False,
        kernels: str = "numpy",
        shared_memory: str = "auto",
        doph_chunk_rows: int = 0,
        encode_partitions: int = 0,
        config: Optional[LDMEConfig] = None,
    ) -> None:
        if config is not None:
            k = config.k
            iterations = config.iterations
            epsilon = config.epsilon
            seed = config.seed
            cost_model = config.cost_model
            encoder = config.encoder
            kernels = config.kernels
            shared_memory = config.shared_memory
            doph_chunk_rows = config.doph_chunk_rows
            encode_partitions = config.encode_partitions
        super().__init__(
            iterations=iterations,
            epsilon=epsilon,
            seed=seed,
            encoder=encoder,
            cost_model=cost_model,
            early_stop_rounds=early_stop_rounds,
            track_compression=track_compression,
            kernels=kernels,
            encode_partitions=encode_partitions,
        )
        if k < 1:
            raise ValueError("k must be >= 1")
        if merge_policy not in ("exact", "superjaccard"):
            raise ValueError("merge_policy must be 'exact' or 'superjaccard'")
        if divide_weights not in ("binary", "expanded"):
            raise ValueError("divide_weights must be 'binary' or 'expanded'")
        if shared_memory not in ("auto", "on", "off"):
            raise ValueError("shared_memory must be 'auto', 'on' or 'off'")
        if doph_chunk_rows < 0:
            raise ValueError("doph_chunk_rows must be non-negative")
        self.k = k
        self.merge_policy = merge_policy
        self.divide_weights = divide_weights
        # Worker transport policy; consumed by the multiprocess subclass
        # (serial LDME carries it so configs round-trip unchanged).
        self.shared_memory = shared_memory
        # Cache-blocking chunk size for the bulk-DOPH scatter (0 = auto).
        self.doph_chunk_rows = doph_chunk_rows
        self.name = f"LDME{k}"

    # ------------------------------------------------------------------
    def divide(
        self,
        graph: Graph,
        partition: SupernodePartition,
        rng: np.random.Generator,
    ) -> Tuple[List[List[int]], DivideStats]:
        """Weighted-LSH divide with a fresh DOPH hasher per iteration."""
        return lsh_divide(
            graph, partition, self.k, rng, weights=self.divide_weights,
            kernels=self.kernels, chunk_rows=self.doph_chunk_rows,
        )

    def merge_one_group(
        self,
        graph: Graph,
        partition: SupernodePartition,
        group: List[int],
        threshold: float,
        rng: np.random.Generator,
    ) -> MergeStats:
        """Merge loop over the group.

        The default policy computes exact Saving through the group's ``W``
        structure (the paper's contribution #2); ``merge_policy=
        "superjaccard"`` swaps in SWeG's approximation for ablations.
        """
        merge_fn = (
            merge_group_exact
            if self.merge_policy == "exact"
            else merge_group_superjaccard
        )
        return merge_fn(
            graph, partition, group, threshold, rng,
            cost_model=self.cost_model, kernels=self.kernels,
        )


def ldme5(iterations: int = 20, seed: int = 0, **kwargs) -> LDME:
    """The paper's high-compression setting (``k = 5``)."""
    return LDME(k=5, iterations=iterations, seed=seed, **kwargs)


def ldme20(iterations: int = 20, seed: int = 0, **kwargs) -> LDME:
    """The paper's high-speed setting (``k = 20``)."""
    return LDME(k=20, iterations=iterations, seed=seed, **kwargs)


def summarize(
    graph: Graph,
    k: int = 5,
    iterations: int = 20,
    epsilon: float = 0.0,
    seed: int = 0,
) -> Summarization:
    """One-call convenience API: summarize ``graph`` with LDME."""
    return LDME(
        k=k, iterations=iterations, epsilon=epsilon, seed=seed
    ).summarize(graph)
