"""Output representation: summary graph + correction sets.

A :class:`Summarization` bundles everything the problem statement outputs:
the supernode set ``S`` (via the partition), superedges ``P``, correction
sets ``C+``/``C-``, and run statistics. The objective (Eq. 1) and the
compression metric of Section 4 are computed here so every algorithm and
benchmark reports them identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .partition import SupernodePartition

__all__ = ["CorrectionSet", "RunStats", "IterationStats", "Summarization"]

Edge = Tuple[int, int]


@dataclass
class CorrectionSet:
    """``C+`` (edges to insert) and ``C-`` (edges to delete) as node pairs."""

    additions: List[Edge] = field(default_factory=list)
    deletions: List[Edge] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.additions = [_canonical(e) for e in self.additions]
        self.deletions = [_canonical(e) for e in self.deletions]

    @property
    def size(self) -> int:
        """``|C+| + |C-|``."""
        return len(self.additions) + len(self.deletions)


def _canonical(edge: Edge) -> Edge:
    u, v = int(edge[0]), int(edge[1])
    if u == v:
        raise ValueError(f"correction edges must join distinct nodes: {edge}")
    return (u, v) if u < v else (v, u)


@dataclass
class IterationStats:
    """Per-iteration timing/shape record (the series behind Figure 2/4).

    ``objective``/``compression``/``encode_seconds`` are filled only when
    the driver runs with ``track_compression=True`` (an encode pass after
    every iteration — how the paper's per-T curves are produced).
    """

    iteration: int
    divide_seconds: float
    merge_seconds: float
    num_groups: int
    max_group_size: int
    num_supernodes: int
    merges: int
    objective: Optional[int] = None
    compression: Optional[float] = None
    encode_seconds: float = 0.0


@dataclass
class RunStats:
    """Phase timings for one summarization run.

    The last four counters are populated by the supervised parallel merge
    (:class:`repro.distributed.MultiprocessLDME`): how many worker batches
    failed or timed out, how many were retried on a fresh pool, and how
    many fell back to in-process serial planning.
    """

    divide_seconds: float = 0.0
    merge_seconds: float = 0.0
    encode_seconds: float = 0.0
    drop_seconds: float = 0.0
    iterations: List[IterationStats] = field(default_factory=list)
    worker_failures: int = 0       # worker batches that crashed or errored
    batch_timeouts: int = 0        # worker batches that exceeded the deadline
    batch_retries: int = 0         # batches re-submitted to a fresh pool
    serial_fallbacks: int = 0      # batches planned serially in-process
    shm_fallbacks: int = 0         # shared-memory setups degraded to pickle

    @property
    def total_seconds(self) -> float:
        """End-to-end algorithm time (divide + merge + encode + drop)."""
        return (
            self.divide_seconds
            + self.merge_seconds
            + self.encode_seconds
            + self.drop_seconds
        )

    @property
    def divide_merge_seconds(self) -> float:
        """Combined divide+merge time (the paper reports them together)."""
        return self.divide_seconds + self.merge_seconds


@dataclass
class Summarization:
    """Complete output of a correction-set graph summarization run."""

    num_nodes: int
    num_edges: int
    partition: SupernodePartition
    superedges: List[Edge]               # includes superloops (A, A)
    corrections: CorrectionSet
    stats: RunStats = field(default_factory=RunStats)
    algorithm: str = ""

    # ------------------------------------------------------------------
    @classmethod
    def from_members(
        cls,
        num_nodes: int,
        members: Mapping[int, Iterable[int]],
        superedges: Iterable[Edge],
        corrections: CorrectionSet,
        num_edges: Optional[int] = None,
        algorithm: str = "",
    ) -> "Summarization":
        """Rebuild a summarization from serialized pieces (see graph.io)."""
        partition = SupernodePartition.from_members(num_nodes, members)
        se = [(int(a), int(b)) for a, b in superedges]
        return cls(
            num_nodes=num_nodes,
            num_edges=num_edges if num_edges is not None else 0,
            partition=partition,
            superedges=se,
            corrections=corrections,
            algorithm=algorithm,
        )

    # ------------------------------------------------------------------
    # structure accessors
    # ------------------------------------------------------------------
    def supernode_ids(self) -> List[int]:
        """Current supernode ids, sorted for deterministic output."""
        return sorted(self.partition.supernode_ids())

    def members(self, sid: int) -> List[int]:
        """Members of one supernode."""
        return self.partition.members(sid)

    @property
    def num_supernodes(self) -> int:
        """``|S|``."""
        return self.partition.num_supernodes

    @property
    def num_superedges(self) -> int:
        """Non-loop superedge count (superloops are free per the paper)."""
        return sum(1 for a, b in self.superedges if a != b)

    @property
    def num_superloops(self) -> int:
        """Superloop count (encoded with one bit each; not in Eq. 1)."""
        return sum(1 for a, b in self.superedges if a == b)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def objective(self) -> int:
        """Eq. 1: ``|P| + |C+| + |C-|`` (non-loop superedges only)."""
        return self.num_superedges + self.corrections.size

    @property
    def compression(self) -> float:
        """Section 4 metric: ``1 - (|P| + |C+| + |C-|) / |E|``."""
        if self.num_edges == 0:
            return 0.0
        return 1.0 - self.objective / self.num_edges

    def describe(self) -> Dict[str, float]:
        """Flat metric dict for harness/reporting code."""
        return {
            "algorithm": self.algorithm,
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "supernodes": self.num_supernodes,
            "superedges": self.num_superedges,
            "superloops": self.num_superloops,
            "additions": len(self.corrections.additions),
            "deletions": len(self.corrections.deletions),
            "objective": self.objective,
            "compression": self.compression,
            "total_seconds": self.stats.total_seconds,
        }

    def __repr__(self) -> str:
        return (
            f"Summarization(algorithm={self.algorithm!r}, "
            f"supernodes={self.num_supernodes}, objective={self.objective}, "
            f"compression={self.compression:.4f})"
        )
