"""Encoding step: original edges → superedges + correction sets.

Two encoders share the same decision rule (Section 2):

* For ``A != B`` with ``E_AB`` edges between them: encode a superedge iff
  ``|E_AB| > |A||B| / 2``; otherwise put ``E_AB`` in ``C+``. A superedge
  adds ``F_AB \\ E_AB`` to ``C-``.
* For ``A == B``: encode a superloop iff ``|E_AA| > |A|(|A|-1)/4``.

:func:`encode_sorted` is LDME's Algorithm 5 — tag every edge with its
candidate superedge, lexicographically sort, and linearly scan group runs.
Work is ``O(|E| log |E|)`` regardless of ``|S|``.

:func:`encode_per_supernode` is the "more careful implementation" of SWeG's
encoder the paper describes: iterate supernodes, build a per-supernode
lookup of incident edges bucketed by partner supernode, then encode. The
per-supernode hashtable churn is the overhead that makes it slow on summary
graphs with many supernodes — kept faithfully for the Figure 2 encode-time
comparison.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..graph.graph import Graph
from .partition import SupernodePartition
from .summary import CorrectionSet

__all__ = [
    "EncodeResult",
    "encode_sorted",
    "encode_per_supernode",
    "encode_all_pairs",
]

Edge = Tuple[int, int]


class EncodeResult:
    """Superedges plus correction sets produced by an encoder."""

    __slots__ = ("superedges", "corrections")

    def __init__(
        self,
        superedges: List[Edge],
        corrections: CorrectionSet,
    ) -> None:
        self.superedges = superedges
        self.corrections = corrections


def _encode_pair(
    a: int,
    b: int,
    edges: List[Edge],
    partition: SupernodePartition,
    superedges: List[Edge],
    additions: List[Edge],
    deletions: List[Edge],
) -> None:
    """Apply the decision rule to one supernode pair's edge bundle."""
    size_a = partition.size(a)
    size_b = partition.size(b)
    if a != b:
        if len(edges) * 2 <= size_a * size_b:
            additions.extend(edges)
            return
        superedges.append((a, b) if a < b else (b, a))
        if len(edges) == size_a * size_b:
            return  # complete bipartite block: no deletions
        present = {(u, v) if u < v else (v, u) for u, v in edges}
        for u in partition.members(a):
            for v in partition.members(b):
                key = (u, v) if u < v else (v, u)
                if key not in present:
                    deletions.append(key)
        return
    # Superloop case: F_AA = |A|(|A|-1)/2 and the threshold is F_AA / 2.
    pairs = size_a * (size_a - 1) // 2
    if len(edges) * 4 <= size_a * (size_a - 1):
        additions.extend(edges)
        return
    superedges.append((a, a))
    if len(edges) == pairs:
        return
    present = {(u, v) if u < v else (v, u) for u, v in edges}
    members = partition.members(a)
    for i, u in enumerate(members):
        for v in members[i + 1:]:
            key = (u, v) if u < v else (v, u)
            if key not in present:
                deletions.append(key)


def encode_sorted(
    graph: Graph,
    partition: SupernodePartition,
    backend: str = "python",
    partitions: int = 0,
) -> EncodeResult:
    """LDME's sort-based encoder (Algorithm 5).

    Builds the candidate-superedge key for every original edge with two
    vectorized gathers, lexsorts, and scans runs — no per-supernode
    adjacency materialization. ``backend="numpy"`` swaps in the
    array-native kernel (:func:`repro.kernels.encode.encode_sorted_numpy`),
    which produces element- and order-identical output without per-edge
    Python tuples; ``"python"`` (default) runs the reference scan below.
    ``partitions`` selects the numpy kernel's partitioned-lexsort bucket
    count (0/1 = one global sort; any value is output-identical); the
    python reference ignores it.
    """
    if backend == "numpy":
        from ..kernels.encode import encode_sorted_numpy

        return encode_sorted_numpy(graph, partition, partitions=partitions)
    if backend != "python":
        raise ValueError("backend must be 'python' or 'numpy'")
    superedges: List[Edge] = []
    additions: List[Edge] = []
    deletions: List[Edge] = []
    src, dst = graph.edge_arrays()
    if src.size == 0:
        return EncodeResult(superedges, CorrectionSet(additions, deletions))
    node2super = partition.node2super
    sa = node2super[src]
    sb = node2super[dst]
    lo = np.minimum(sa, sb)
    hi = np.maximum(sa, sb)
    order = np.lexsort((hi, lo))
    lo, hi, src, dst = lo[order], hi[order], src[order], dst[order]
    # Run boundaries: positions where the candidate superedge changes.
    change = np.flatnonzero((lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])) + 1
    starts = np.concatenate([[0], change])
    ends = np.concatenate([change, [lo.size]])
    src_list = src.tolist()
    dst_list = dst.tolist()
    for start, end in zip(starts.tolist(), ends.tolist()):
        a = int(lo[start])
        b = int(hi[start])
        bundle = list(zip(src_list[start:end], dst_list[start:end]))
        _encode_pair(a, b, bundle, partition, superedges, additions, deletions)
    return EncodeResult(superedges, CorrectionSet(additions, deletions))


def encode_per_supernode(
    graph: Graph, partition: SupernodePartition
) -> EncodeResult:
    """SWeG-style per-supernode encoder (baseline contrast).

    For each supernode A (in id order), gathers all incident edges whose
    *lower* endpoint supernode is A into a per-partner hashtable, then
    encodes each bundle. Equivalent output to :func:`encode_sorted`; higher
    constant overhead that grows with the number of supernodes.
    """
    superedges: List[Edge] = []
    additions: List[Edge] = []
    deletions: List[Edge] = []
    node2super = partition.node2super
    for a in sorted(partition.supernode_ids()):
        # Preprocessing pass per the paper: record incident edges bucketed by
        # partner supernode, visiting each undirected edge from its
        # smaller-supernode endpoint only.
        buckets: Dict[int, List[Edge]] = {}
        for u in partition.members(a):
            for v in graph.neighbors(u).tolist():
                b = int(node2super[v])
                if b < a:
                    continue
                if b == a and v < u:
                    continue  # count internal edges once
                buckets.setdefault(b, []).append((u, v))
        for b in sorted(buckets):
            _encode_pair(
                a, b, buckets[b], partition, superedges, additions, deletions
            )
    return EncodeResult(superedges, CorrectionSet(additions, deletions))


def encode_all_pairs(graph: Graph, partition: SupernodePartition) -> EncodeResult:
    """The paper's "simple implementation": check **every** supernode pair.

    Quadratic in ``|S|`` — the encode-step behaviour that made SWeG unable
    to finish the largest graphs. Provided purely for the encode-scaling
    ablation benchmark; do not use it for real workloads.
    """
    superedges: List[Edge] = []
    additions: List[Edge] = []
    deletions: List[Edge] = []
    ids = sorted(partition.supernode_ids())
    neighbor_sets = {
        a: {v: set(graph.neighbors(v).tolist()) for v in partition.members(a)}
        for a in ids
    }
    for i, a in enumerate(ids):
        for b in ids[i:]:
            edges: List[Edge] = []
            for u, nbrs in neighbor_sets[a].items():
                for v in partition.members(b):
                    if v in nbrs:
                        if a == b and v <= u:
                            continue
                        edges.append((u, v))
            if edges:
                _encode_pair(
                    a, b, edges, partition, superedges, additions, deletions
                )
    return EncodeResult(superedges, CorrectionSet(additions, deletions))
