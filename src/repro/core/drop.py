"""Lossy dropping step (ε > 0).

Post-processes a lossless summarization by greedily discarding output
entries while keeping every node inside the Eq. 2 error bound
``|N_v \\ N̂_v| + |N̂_v \\ N_v| <= ε |N_v|``. Candidates, in increasing
error-per-saved-entry order:

* a ``C+`` edge — saves 1, errs 1 at each endpoint (a real edge is lost);
* a ``C-`` edge — saves 1, errs 1 at each endpoint (a spurious edge stays);
* a superedge (A, B) — saves ``1 + |C-_AB|`` (its deletion edges become
  moot and are dropped too) but loses every real edge in ``E_AB``.

The paper treats this step as orthogonal (and its cost negligible); we
implement the Navlakha-style greedy with per-node error budgets so the
lossy API of the framework is complete and testable.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..graph.graph import Graph
from .summary import CorrectionSet, Summarization

__all__ = ["drop_edges", "verify_error_bound"]

Edge = Tuple[int, int]


def drop_edges(
    graph: Graph, summarization: Summarization, epsilon: float
) -> Summarization:
    """Return a lossy summarization within the ε error bound.

    The input summarization is not modified. With ``epsilon == 0`` the
    output is an identical (but fresh) summarization.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    budget = np.floor(epsilon * graph.degrees()).astype(np.int64)
    error = np.zeros(graph.num_nodes, dtype=np.int64)

    additions = list(summarization.corrections.additions)
    deletions = list(summarization.corrections.deletions)
    superedges = list(summarization.superedges)

    kept_additions: List[Edge] = []
    if epsilon == 0:
        kept_additions = additions
        kept_deletions = deletions
        kept_superedges = superedges
    else:
        # Pass 1: cheap single-edge drops (C+ then C-; unit benefit each).
        for u, v in additions:
            if error[u] < budget[u] and error[v] < budget[v]:
                error[u] += 1
                error[v] += 1
            else:
                kept_additions.append((u, v))
        kept_deletions = []
        for u, v in deletions:
            if error[u] < budget[u] and error[v] < budget[v]:
                error[u] += 1
                error[v] += 1
            else:
                kept_deletions.append((u, v))
        # Pass 2: superedges, cheapest real-edge loss first.
        kept_superedges = []
        deletion_index = _index_deletions(summarization, kept_deletions)
        scored = []
        for se in superedges:
            real_edges = _real_edges_of_superedge(graph, summarization, se)
            scored.append((len(real_edges), se, real_edges))
        scored.sort(key=lambda item: item[0])
        dropped_pairs = set()
        for _, se, real_edges in scored:
            counts = _endpoint_error_counts(real_edges)
            feasible = all(
                error[v] + delta <= budget[v] for v, delta in counts.items()
            )
            if feasible and counts:
                for v, delta in counts.items():
                    error[v] += delta
                dropped_pairs.add(se)
            else:
                kept_superedges.append(se)
        if dropped_pairs:
            kept_deletions = [
                edge
                for edge in kept_deletions
                if deletion_index.get(edge) not in dropped_pairs
            ]
    result = Summarization(
        num_nodes=summarization.num_nodes,
        num_edges=summarization.num_edges,
        partition=summarization.partition,
        superedges=kept_superedges,
        corrections=CorrectionSet(kept_additions, kept_deletions),
        stats=summarization.stats,
        algorithm=summarization.algorithm,
    )
    return result


def _real_edges_of_superedge(
    graph: Graph, summarization: Summarization, superedge: Edge
) -> List[Edge]:
    """Original edges that the superedge is responsible for reconstructing."""
    a, b = superedge
    part = summarization.partition
    edges: List[Edge] = []
    mem_b = set(part.members(b))
    for u in part.members(a):
        for v in graph.neighbors(u).tolist():
            if v in mem_b:
                if a == b and v <= u:
                    continue
                edges.append((u, v) if u < v else (v, u))
    if a != b:
        # Each edge seen once (from the A side); dedupe just in case of
        # overlapping member scans.
        edges = sorted(set(edges))
    return edges


def _endpoint_error_counts(edges: List[Edge]) -> Dict[int, int]:
    """Per-node count of lost edges if all ``edges`` disappear."""
    counts: Dict[int, int] = {}
    for u, v in edges:
        counts[u] = counts.get(u, 0) + 1
        counts[v] = counts.get(v, 0) + 1
    return counts


def _index_deletions(
    summarization: Summarization, deletions: List[Edge]
) -> Dict[Edge, Edge]:
    """Map each C- edge to the superedge pair that induced it."""
    node2super = summarization.partition.node2super
    index: Dict[Edge, Edge] = {}
    for u, v in deletions:
        a, b = int(node2super[u]), int(node2super[v])
        index[(u, v)] = (a, b) if a < b else (b, a)
    return index


def verify_error_bound(
    graph: Graph, summarization: Summarization, epsilon: float
) -> None:
    """Raise ``AssertionError`` if any node violates Eq. 2."""
    from .reconstruct import reconstruct

    rebuilt = reconstruct(summarization)
    for v in range(graph.num_nodes):
        original = set(graph.neighbors(v).tolist())
        restored = (
            set(rebuilt.neighbors(v).tolist()) if v < rebuilt.num_nodes else set()
        )
        err = len(original - restored) + len(restored - original)
        if err > epsilon * len(original):
            raise AssertionError(
                f"node {v}: error {err} exceeds ε·|N_v| = "
                f"{epsilon * len(original):.2f}"
            )
