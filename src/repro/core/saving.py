"""Exact Saving computation — Algorithm 4 and the ``W`` structure.

LDME's merge phase replaces SWeG's SuperJaccard approximation with the true
``Saving(A, B, S)``: the relative drop in objective cost from merging A and
B. The enabler is a hashtable-of-hashtables ``W`` built per merge group:
``W[A][C]`` is the number of original edges between supernodes A and C, so
every pairwise edge count is an O(1) lookup and ``Saving`` costs only
``O(|W_A| + |W_B|)`` — supernode-level work, independent of |V|.

``GroupAdjacency`` owns ``W`` for one group, computes Saving/Cost under a
pluggable cost model, and applies the paper's post-merge update rules
(fold the smaller side's table into the larger, fix reverse entries).
Internal edges ``E_AA`` are stored under the self key ``W[A][A]``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..graph.graph import Graph
from .cost import get_cost_model
from .partition import SupernodePartition

__all__ = ["GroupAdjacency", "saving_of_pair", "supernode_cost"]


class GroupAdjacency:
    """The ``W`` hashtable-of-hashtables for one merge group.

    Parameters
    ----------
    graph:
        The original graph (edge counts are always against ``E``).
    partition:
        Current supernode partition; sizes are read live from it.
    group_ids:
        Supernode ids forming this merge group; only these get first-level
        entries, but second-level keys may reference any adjacent supernode.
    cost_model:
        ``"exact"`` or ``"paper"`` (see :mod:`repro.core.cost`).
    kernels:
        ``"python"`` builds ``W`` with the reference dict loop; ``"numpy"``
        uses the vectorized kernel (:func:`repro.kernels.wtable.
        build_group_w`). The tables are equal either way — the differential
        suite under ``tests/kernels/`` machine-checks it.
    """

    def __init__(
        self,
        graph: Graph,
        partition: SupernodePartition,
        group_ids: Iterable[int],
        cost_model: str = "exact",
        kernels: str = "python",
    ) -> None:
        self._partition = partition
        self._pair_cost, self._loop_cost = get_cost_model(cost_model)
        self._cost_cache: Dict[int, float] = {}
        if kernels == "numpy":
            from ..kernels.wtable import build_group_w

            self.w = build_group_w(graph, partition, group_ids)
            return
        if kernels != "python":
            raise ValueError("kernels must be 'python' or 'numpy'")
        self.w: Dict[int, Dict[int, int]] = {}
        node2super = partition.node2super
        for sid in group_ids:
            counts: Dict[int, int] = {}
            for v in partition.members(sid):
                # One gather per member row; no per-neighbour id round-trips.
                for c in node2super[graph.neighbors(v)].tolist():
                    counts[c] = counts.get(c, 0) + 1
            internal = counts.pop(sid, 0)
            if internal:
                # Each internal undirected edge was seen from both endpoints.
                counts[sid] = internal // 2
            self.w[sid] = counts

    # ------------------------------------------------------------------
    def edge_count(self, a: int, c: int) -> int:
        """|E_AC| (or |E_AA| internal count when ``a == c``)."""
        return self.w[a].get(c, 0)

    def cost(self, sid: int) -> float:
        """``Cost(A, S)``: A's contribution to the objective.

        Cached between merges — a merge only invalidates the entries of the
        supernodes whose pair terms it touched (see :meth:`apply_merge`).
        """
        cached = self._cost_cache.get(sid)
        if cached is not None:
            return cached
        size_a = self._partition.size(sid)
        total = 0.0
        for c, edges in self.w[sid].items():
            if c == sid:
                total += self._loop_cost(size_a, edges)
            else:
                total += self._pair_cost(size_a, self._partition.size(c), edges)
        self._cost_cache[sid] = total
        return total

    def merged_cost(self, a: int, b: int) -> float:
        """``Cost(A ∪ B, ...)``: cost of the hypothetical merged supernode."""
        part = self._partition
        size_ab = part.size(a) + part.size(b)
        w_a, w_b = self.w[a], self.w[b]
        internal = w_a.get(a, 0) + w_b.get(b, 0) + w_a.get(b, 0)
        total = self._loop_cost(size_ab, internal) if internal else 0.0
        for c, edges in w_a.items():
            if c in (a, b):
                continue
            if c in w_b:
                edges = edges + w_b[c]
            total += self._pair_cost(size_ab, part.size(c), edges)
        for c, edges in w_b.items():
            if c in (a, b) or c in w_a:
                continue
            total += self._pair_cost(size_ab, part.size(c), edges)
        return total

    def saving(self, a: int, b: int) -> float:
        """``Saving(A, B, S)`` — Algorithm 4 under the chosen cost model.

        Defined as 0 when both supernodes are cost-free (isolated), since
        merging them can neither help nor hurt the objective.
        """
        separate = self.cost(a) + self.cost(b)
        if separate == 0:
            return 0.0
        return 1.0 - self.merged_cost(a, b) / separate

    def best_candidate(
        self, a: int, candidates: Iterable[int]
    ) -> Tuple[Optional[int], float]:
        """The candidate with maximal Saving against ``a`` (ties: first)."""
        best: Optional[int] = None
        best_saving = float("-inf")
        for b in candidates:
            if b == a:
                continue
            s = self.saving(a, b)
            if s > best_saving:
                best, best_saving = b, s
        if best is None:
            return None, 0.0
        return best, best_saving

    # ------------------------------------------------------------------
    def apply_merge(self, survivor: int, absorbed: int) -> None:
        """Update ``W`` after ``absorbed`` was merged into ``survivor``.

        Implements the paper's two update rules: fold the absorbed table
        into the survivor's, then rewrite reverse entries ``W_C[absorbed]``
        for every in-group neighbour C. Must be called *after*
        :meth:`SupernodePartition.merge` relabelled the members.
        """
        w_s = self.w[survivor]
        w_x = self.w.pop(absorbed)
        # Invalidate cached costs touched by this merge: the survivor, the
        # absorbed supernode, and everything adjacent to either (their pair
        # terms reference the merged sizes/counts).
        self._cost_cache.pop(survivor, None)
        self._cost_cache.pop(absorbed, None)
        for c in set(w_x) | set(w_s):
            self._cost_cache.pop(c, None)
        internal = (
            w_s.get(survivor, 0) + w_x.get(absorbed, 0) + w_s.pop(absorbed, 0)
        )
        w_x.pop(absorbed, None)
        w_x.pop(survivor, None)
        if internal:
            w_s[survivor] = internal
        for c, edges in w_x.items():
            w_s[c] = w_s.get(c, 0) + edges
        # Rule (2): fix reverse entries of in-group neighbours of either side.
        for c in set(w_x) | set(w_s):
            if c in (survivor, absorbed):
                continue
            w_c = self.w.get(c)
            if w_c is None:
                continue  # neighbour outside this group: no first-level entry
            moved = w_c.pop(absorbed, None)
            if moved is not None:
                w_c[survivor] = w_c.get(survivor, 0) + moved

    def validate_symmetry(self) -> None:
        """Check in-group symmetry ``W_A[B] == W_B[A]`` (test hook)."""
        for a, row in self.w.items():
            for c, edges in row.items():
                if c == a or c not in self.w:
                    continue
                if self.w[c].get(a, 0) != edges:
                    raise AssertionError(
                        f"W[{a}][{c}] = {edges} but W[{c}][{a}] = "
                        f"{self.w[c].get(a, 0)}"
                    )


def supernode_cost(
    graph: Graph,
    partition: SupernodePartition,
    sid: int,
    cost_model: str = "exact",
) -> float:
    """Standalone ``Cost(A, S)`` without building a group structure.

    Used by baselines (RANDOMIZED) and by tests as an independent oracle.
    """
    adjacency = GroupAdjacency(graph, partition, [sid], cost_model=cost_model)
    return adjacency.cost(sid)


def saving_of_pair(
    graph: Graph,
    partition: SupernodePartition,
    a: int,
    b: int,
    cost_model: str = "exact",
) -> float:
    """Standalone ``Saving(A, B, S)`` for a single pair (oracle/baselines)."""
    adjacency = GroupAdjacency(graph, partition, [a, b], cost_model=cost_model)
    return adjacency.saving(a, b)
