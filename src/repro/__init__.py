"""LDME — correction-set graph summarization with weighted LSH.

Reproduction of "Efficient Graph Summarization using Weighted LSH at
Billion-Scale" (SIGMOD 2021). The package provides:

* :class:`~repro.core.ldme.LDME` — the paper's algorithm (weighted-LSH
  divide, exact-Saving merge, sort-based encode) with the ``k`` tuning dial;
* the baselines it is evaluated against (:class:`~repro.baselines.SWeG`,
  :class:`~repro.baselines.MoSSo`, :class:`~repro.baselines.VoG`,
  :class:`~repro.baselines.Randomized`, :class:`~repro.baselines.SAGS`);
* the graph substrate (CSR graphs, generators, dataset surrogates, I/O);
* lossless reconstruction, lossy dropping, summary-resident queries, a
  simulated distributed runtime, and harnesses for every table/figure.

Quickstart
----------
>>> import repro
>>> g = repro.web_host_graph(num_hosts=5, host_size=12, seed=1)
>>> result = repro.summarize(g, k=5, iterations=10)
>>> repro.reconstruct(result) == g       # lossless by construction
True
"""

from .baselines import SAGS, MoSSo, Randomized, SWeG, VoG
from .core import (
    LDME,
    CorrectionSet,
    LDMEConfig,
    RunStats,
    Summarization,
    SupernodePartition,
    drop_edges,
    ldme5,
    ldme20,
    reconstruct,
    summarize,
    verify_error_bound,
    verify_lossless,
)
from .distributed import (
    ClusterSpec,
    DistributedResult,
    MultiprocessLDME,
    run_distributed,
)
from .evaluation import (
    PartitionAgreement,
    adjusted_rand_index,
    compare_partitions,
    normalized_mutual_information,
    purity,
)
from .metrics import SizeReport, size_report
from .binaryio import read_summary_binary, write_summary_binary
from .errors import (
    CheckpointError,
    CorruptCheckpointError,
    CorruptSummaryError,
    CorruptWALError,
    IngestOverloadError,
)
from .ingest import IngestService, WalWriter, recover_wal
from .ioutil import atomic_write
from .resilience import (
    CheckpointManager,
    FaultInjector,
    WorkerFault,
    run_resumable,
)
from .streaming import DynamicSummarizer, read_stream, write_stream
from .graph import (
    Graph,
    GraphBuilder,
    barabasi_albert,
    erdos_renyi,
    forest_fire,
    graph_stats,
    load_graph,
    powerlaw_cluster,
    read_summary,
    rmat,
    save_graph,
    stochastic_block_model,
    web_host_graph,
    write_summary,
)
from .queries import CompiledSummaryIndex, SummaryIndex
from .serve import ServerConfig, SummaryClient, SummaryServer

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "LDME",
    "LDMEConfig",
    "ldme5",
    "ldme20",
    "summarize",
    "Summarization",
    "CorrectionSet",
    "RunStats",
    "SupernodePartition",
    "reconstruct",
    "verify_lossless",
    "verify_error_bound",
    "drop_edges",
    # baselines
    "SWeG",
    "MoSSo",
    "VoG",
    "Randomized",
    "SAGS",
    # graph substrate
    "Graph",
    "GraphBuilder",
    "graph_stats",
    "load_graph",
    "save_graph",
    "read_summary",
    "write_summary",
    "erdos_renyi",
    "barabasi_albert",
    "rmat",
    "powerlaw_cluster",
    "stochastic_block_model",
    "web_host_graph",
    "forest_fire",
    # applications / runtime
    "SummaryIndex",
    "CompiledSummaryIndex",
    "SummaryServer",
    "SummaryClient",
    "ServerConfig",
    "ClusterSpec",
    "DistributedResult",
    "run_distributed",
    "MultiprocessLDME",
    "SizeReport",
    "size_report",
    "read_summary_binary",
    "PartitionAgreement",
    "compare_partitions",
    "purity",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "write_summary_binary",
    "DynamicSummarizer",
    "read_stream",
    "write_stream",
    # resilience
    "CheckpointManager",
    "run_resumable",
    "FaultInjector",
    "WorkerFault",
    "atomic_write",
    "CorruptSummaryError",
    "CheckpointError",
    "CorruptCheckpointError",
    # ingest
    "IngestService",
    "WalWriter",
    "recover_wal",
    "CorruptWALError",
    "IngestOverloadError",
]
