"""Real shared-memory parallel LDME (the paper's parallel implementation).

The paper notes every phase of LDME parallelizes: signatures per supernode,
merge per group, encode per supernode. :class:`MultiprocessLDME` runs the
merge phase on a process pool for real: each worker receives a batch of
groups plus a frozen snapshot of the iteration-start partition, *plans* the
merges for its groups (groups are disjoint, so plans never conflict), and
the parent applies all plans. Out-of-group supernode sizes are read from
the snapshot — the same staleness semantics as the paper's Spark version,
where each executor works against the broadcast partition state.

Uses the ``fork`` start method so the graph's CSR arrays are inherited
copy-on-write instead of pickled per task; on platforms without ``fork``
(or with ``num_workers=1``) it degrades to the serial loop.

On the scaled surrogate graphs in this repo the process-pool overhead often
exceeds the merge work — this class exists for API completeness and for
larger inputs, and its tests assert *correctness* (lossless output,
valid partitions), not speedups.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.encode import encode_sorted
from ..core.ldme import LDME
from ..core.merge import MergeStats, merge_group_exact, merge_threshold
from ..core.partition import SupernodePartition
from ..core.summary import IterationStats, RunStats, Summarization
from ..graph.graph import Graph

__all__ = ["MultiprocessLDME", "plan_group_merges"]

# Shared state inherited by forked workers (set immediately before the pool
# is created; read-only in children).
_SHARED: dict = {}


class _SnapshotPartition:
    """Partition view a worker plans merges against.

    Group members are local and mutable (in-group merges update them);
    everything else reads the frozen iteration-start snapshot. The merge
    log records (a, b) pairs in order so the parent can replay them on the
    real partition with identical survivor decisions.
    """

    def __init__(
        self,
        node2super: np.ndarray,
        sizes: np.ndarray,
        group_members: Dict[int, List[int]],
    ) -> None:
        self._node2super = node2super
        self._sizes = sizes
        self._members = {sid: list(mem) for sid, mem in group_members.items()}
        self.merge_log: List[Tuple[int, int]] = []

    @property
    def node2super(self) -> np.ndarray:
        return self._node2super

    def members(self, sid: int) -> List[int]:
        return self._members[sid]

    def size(self, sid: int) -> int:
        local = self._members.get(sid)
        if local is not None:
            return len(local)
        return int(self._sizes[sid])

    def merge(self, a: int, b: int) -> Tuple[int, int]:
        if a == b:
            raise ValueError("cannot merge a supernode with itself")
        self.merge_log.append((a, b))
        mem_a, mem_b = self._members[a], self._members[b]
        if len(mem_b) > len(mem_a):
            survivor, absorbed = b, a
            mem_s, mem_x = mem_b, mem_a
        else:
            survivor, absorbed = a, b
            mem_s, mem_x = mem_a, mem_b
        mem_s.extend(mem_x)
        del self._members[absorbed]
        return survivor, absorbed


def plan_group_merges(
    graph: Graph,
    node2super: np.ndarray,
    sizes: np.ndarray,
    group_members: Dict[int, List[int]],
    threshold: float,
    seed: int,
    cost_model: str = "exact",
) -> Tuple[List[Tuple[int, int]], int]:
    """Plan the merges for one group against a partition snapshot.

    Returns the ordered (a, b) merge pairs plus the candidate-scoring count.
    Pure function of its inputs — usable directly (tests) or from workers.
    """
    snapshot = _SnapshotPartition(node2super, sizes, group_members)
    stats = merge_group_exact(
        graph,
        snapshot,
        list(group_members),
        threshold,
        seed=np.random.default_rng(seed),
        cost_model=cost_model,
    )
    return snapshot.merge_log, stats.candidates_scored


def _worker(task) -> Tuple[List[Tuple[int, int]], int]:
    """Pool worker: plan merges for one batch of groups."""
    batches, threshold, seed, cost_model = task
    graph = _SHARED["graph"]
    node2super = _SHARED["node2super"]
    sizes = _SHARED["sizes"]
    log: List[Tuple[int, int]] = []
    scored = 0
    for offset, group_members in enumerate(batches):
        merges, count = plan_group_merges(
            graph, node2super, sizes, group_members,
            threshold, seed + offset, cost_model,
        )
        log.extend(merges)
        scored += count
    return log, scored


class MultiprocessLDME(LDME):
    """LDME with a process-parallel merge phase.

    Parameters are those of :class:`~repro.core.ldme.LDME` plus
    ``num_workers`` (defaults to the CPU count, capped at 8).
    """

    def __init__(self, num_workers: Optional[int] = None, **kwargs) -> None:
        super().__init__(**kwargs)
        if num_workers is not None and num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers or min(8, multiprocessing.cpu_count())
        self.name = f"{self.name}-mp{self.num_workers}"

    # ------------------------------------------------------------------
    def summarize(self, graph: Graph) -> Summarization:
        if self.num_workers == 1 or not _fork_available():
            return super().summarize(graph)
        rng = np.random.default_rng(self.seed)
        partition = SupernodePartition(graph.num_nodes)
        stats = RunStats()
        for t in range(1, self.iterations + 1):
            tic = time.perf_counter()
            groups, divide_stats = self.divide(graph, partition, rng)
            divide_seconds = time.perf_counter() - tic

            tic = time.perf_counter()
            threshold = merge_threshold(t)
            merge_stats = MergeStats()
            plans = self._plan_parallel(graph, partition, groups, threshold, t)
            for log, scored in plans:
                merge_stats.candidates_scored += scored
                for a, b in log:
                    partition.merge(a, b)
                    merge_stats.merges += 1
            merge_seconds = time.perf_counter() - tic

            stats.divide_seconds += divide_seconds
            stats.merge_seconds += merge_seconds
            stats.iterations.append(
                IterationStats(
                    iteration=t,
                    divide_seconds=divide_seconds,
                    merge_seconds=merge_seconds,
                    num_groups=divide_stats.num_groups,
                    max_group_size=divide_stats.max_group_size,
                    num_supernodes=partition.num_supernodes,
                    merges=merge_stats.merges,
                )
            )
        tic = time.perf_counter()
        encoded = encode_sorted(graph, partition)
        stats.encode_seconds = time.perf_counter() - tic
        return Summarization(
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            partition=partition,
            superedges=encoded.superedges,
            corrections=encoded.corrections,
            stats=stats,
            algorithm=self.name,
        )

    # ------------------------------------------------------------------
    def _plan_parallel(
        self,
        graph: Graph,
        partition: SupernodePartition,
        groups: Sequence[List[int]],
        threshold: float,
        iteration: int,
    ):
        """Fan the groups out over a fork pool and collect merge plans."""
        if not groups:
            return []
        node2super = partition.node2super.copy()
        sizes = np.bincount(node2super, minlength=graph.num_nodes).astype(
            np.int64
        )
        batches: List[List[Dict[int, List[int]]]] = [
            [] for _ in range(self.num_workers)
        ]
        for i, group in enumerate(groups):
            batches[i % self.num_workers].append(
                {sid: list(partition.members(sid)) for sid in group}
            )
        base_seed = self.seed * 100_003 + iteration
        tasks = [
            (batch, threshold, base_seed + 10_000 * w, self.cost_model)
            for w, batch in enumerate(batches)
            if batch
        ]
        _SHARED["graph"] = graph
        _SHARED["node2super"] = node2super
        _SHARED["sizes"] = sizes
        try:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(processes=min(self.num_workers, len(tasks))) as pool:
                return pool.map(_worker, tasks)
        finally:
            _SHARED.clear()


def _fork_available() -> bool:
    """True when the 'fork' start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()
