"""Real shared-memory parallel LDME (the paper's parallel implementation).

The paper notes every phase of LDME parallelizes: signatures per supernode,
merge per group, encode per supernode. :class:`MultiprocessLDME` runs the
merge phase on a process pool for real: each worker receives a batch of
groups plus a frozen snapshot of the iteration-start partition, *plans* the
merges for its groups (groups are disjoint, so plans never conflict), and
the parent applies all plans. Out-of-group supernode sizes are read from
the snapshot — the same staleness semantics as the paper's Spark version,
where each executor works against the broadcast partition state.

Uses the ``fork`` start method so the graph's CSR arrays are inherited
copy-on-write instead of pickled per task; on platforms without ``fork``
(or with ``num_workers=1``) it degrades to the serial loop.

The pool runs under a :class:`~repro.resilience.supervisor.BatchSupervisor`:
a crashed or hung worker batch is detected via a per-batch deadline,
retried on a fresh pool with the *same* derived seed (planning is a pure
function, so the retry's plan is identical), and after ``max_batch_retries``
rounds the remaining batches are planned serially in the parent. A dying
pool therefore costs throughput, never correctness. Supervision counters
land on :class:`~repro.core.summary.RunStats`.

Only :meth:`~repro.core.base.BaseSummarizer._merge_phase` is overridden, so
the class inherits the shared driver — including checkpoint/resume via
:func:`repro.resilience.run_resumable`, early stopping, compression
tracking, and lossy dropping.

Transport: by default (``shared_memory="auto"``) the CSR adjacency, the
partition snapshot and every batch's group membership live in
:class:`repro.kernels.shm.SharedGraphArena` segments — workers receive a
few-hundred-byte ``(arena descriptors, group range)`` task, attach
zero-copy, and write their merge plans into a preallocated shared pairs
slab. The legacy transport (``shared_memory="off"``) pickles each batch's
member lists per task; any arena setup or integrity failure degrades to it
automatically (``RunStats.shm_fallbacks`` counts the degradations). Plans
are bit-identical across both transports: member lists cross the boundary
in exactly the parent partition's order and per-group seeds are derived
identically, so the golden summaries pin both.

When shared memory is active the DOPH signature scatter of the divide
phase also fans out: workers compute partial bin minima over contiguous
entry ranges into a shared slab and the parent ``np.minimum``-reduces
them — exact because minimum is associative and commutative — then
densifies. Gated by :attr:`MultiprocessLDME.signature_fanout_min_nnz`
so small graphs never pay the pool round-trip.

On the scaled surrogate graphs in this repo the process-pool overhead often
exceeds the merge work — this class exists for API completeness and for
larger inputs, and its tests assert *correctness* (lossless output,
valid partitions), not speedups.
"""

from __future__ import annotations

import logging
import multiprocessing
from itertools import chain
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.divide import lsh_divide
from ..core.ldme import LDME
from ..core.merge import MergeStats, merge_group_exact
from ..core.partition import SupernodePartition
from ..core.summary import RunStats
from ..graph.graph import Graph
from ..kernels.doph import SCATTER_EMPTY, doph_densify, doph_scatter_min
from ..kernels.shm import (
    ArenaDescriptor,
    ArenaError,
    SharedGraphArena,
    shared_memory_available,
)
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.trace import Tracer
from ..resilience.faults import FaultInjector
from ..resilience.supervisor import BatchSupervisor, SupervisionPolicy

__all__ = ["MultiprocessLDME", "plan_group_merges"]

logger = logging.getLogger(__name__)

# Shared state inherited by forked workers (set immediately before the pool
# is created; read-only in children).
_SHARED: dict = {}

# Worker-side attach caches, keyed by arena id. A worker process serves at
# most one iteration's pool, so the caches stay tiny; they exist to make a
# worker that handles several batches attach (and CRC-validate) each arena
# once. Parent processes never populate them, so forked children start
# empty.
_ARENAS: Dict[str, SharedGraphArena] = {}
_GRAPHS: Dict[str, Graph] = {}


def _attach_cached(descriptor: ArenaDescriptor) -> Tuple[SharedGraphArena, int]:
    """Attach an arena (validated) or reuse this process's attachment.

    Returns ``(arena, attaches)`` where ``attaches`` is 1 on a fresh
    attach and 0 on a cache hit — summed by the parent into the
    ``shm_arena_attach_total`` metric (worker metric registries do not
    propagate back).
    """
    arena = _ARENAS.get(descriptor.arena_id)
    if arena is not None:
        return arena, 0
    arena = SharedGraphArena.attach(descriptor)
    _ARENAS[descriptor.arena_id] = arena
    return arena, 1


def _attached_graph(descriptor: ArenaDescriptor) -> Tuple[Graph, int]:
    """The CSR graph backed by a graph arena (zero-copy, cached)."""
    cached = _GRAPHS.get(descriptor.arena_id)
    if cached is not None:
        return cached, 0
    arena, attaches = _attach_cached(descriptor)
    graph = Graph(arena.array("indptr"), arena.array("indices"))
    _GRAPHS[descriptor.arena_id] = graph
    return graph, attaches


class _SnapshotPartition:
    """Partition view a worker plans merges against.

    Group members are local and mutable (in-group merges update them);
    everything else reads the frozen iteration-start snapshot. The merge
    log records (a, b) pairs in order so the parent can replay them on the
    real partition with identical survivor decisions.
    """

    def __init__(
        self,
        node2super: np.ndarray,
        sizes: np.ndarray,
        group_members: Dict[int, List[int]],
    ) -> None:
        self._node2super = node2super
        self._sizes = sizes
        self._members = {sid: list(mem) for sid, mem in group_members.items()}
        self.merge_log: List[Tuple[int, int]] = []

    @property
    def node2super(self) -> np.ndarray:
        return self._node2super

    def members(self, sid: int) -> List[int]:
        return self._members[sid]

    def size(self, sid: int) -> int:
        local = self._members.get(sid)
        if local is not None:
            return len(local)
        return int(self._sizes[sid])

    def merge(self, a: int, b: int) -> Tuple[int, int]:
        if a == b:
            raise ValueError("cannot merge a supernode with itself")
        self.merge_log.append((a, b))
        mem_a, mem_b = self._members[a], self._members[b]
        if len(mem_b) > len(mem_a):
            survivor, absorbed = b, a
            mem_s, mem_x = mem_b, mem_a
        else:
            survivor, absorbed = a, b
            mem_s, mem_x = mem_a, mem_b
        mem_s.extend(mem_x)
        del self._members[absorbed]
        return survivor, absorbed


def plan_group_merges(
    graph: Graph,
    node2super: np.ndarray,
    sizes: np.ndarray,
    group_members: Dict[int, List[int]],
    threshold: float,
    seed: int,
    cost_model: str = "exact",
    kernels: str = "python",
) -> Tuple[List[Tuple[int, int]], int]:
    """Plan the merges for one group against a partition snapshot.

    Returns the ordered (a, b) merge pairs plus the candidate-scoring count.
    Pure function of its inputs — usable directly (tests), from workers,
    and as the serial fallback when the pool dies (a retried or
    fallen-back batch reproduces the exact plan a healthy worker would
    have returned).
    """
    snapshot = _SnapshotPartition(node2super, sizes, group_members)
    stats = merge_group_exact(
        graph,
        snapshot,
        list(group_members),
        threshold,
        seed=np.random.default_rng(seed),
        cost_model=cost_model,
        kernels=kernels,
    )
    return snapshot.merge_log, stats.candidates_scored


def _plan_batch(
    graph: Graph,
    node2super: np.ndarray,
    sizes: np.ndarray,
    batch: Sequence[Dict[int, List[int]]],
    threshold: float,
    seed: int,
    cost_model: str,
    kernels: str = "python",
) -> Tuple[List[Tuple[int, int]], int]:
    """Plan one batch of groups (seeded ``seed + offset`` per group)."""
    log: List[Tuple[int, int]] = []
    scored = 0
    for offset, group_members in enumerate(batch):
        merges, count = plan_group_merges(
            graph, node2super, sizes, group_members,
            threshold, seed + offset, cost_model, kernels,
        )
        log.extend(merges)
        scored += count
    return log, scored


def _worker(task) -> Tuple[List[Tuple[int, int]], int, List[dict]]:
    """Pool worker: plan merges for one batch of groups.

    The fault hook fires before any planning so an injected crash models
    a worker dying mid-iteration with no partial results delivered.

    When the parent propagates a trace context, the worker rebuilds a
    child tracer from it, wraps its planning in a ``group_batch`` span
    parented at the parent's ``merge`` span, and ships the serialized
    span records back with the plan. Span ids are deterministic, so a
    retried batch re-emits the *same* span and the stitched tree is
    identical to a single-process run's.
    """
    (batch, threshold, seed, cost_model, kernels,
     iteration, batch_index, attempt, trace_ctx) = task
    faults: Optional[FaultInjector] = _SHARED.get("faults")
    if faults is not None:
        faults.on_worker_batch(iteration, batch_index, attempt)
    if trace_ctx is None:
        log, scored = _plan_batch(
            _SHARED["graph"], _SHARED["node2super"], _SHARED["sizes"],
            batch, threshold, seed, cost_model, kernels,
        )
        return log, scored, []
    tracer = Tracer.from_context(trace_ctx)
    with tracer.span(
        "group_batch", key=batch_index, groups=len(batch)
    ) as batch_span:
        log, scored = _plan_batch(
            _SHARED["graph"], _SHARED["node2super"], _SHARED["sizes"],
            batch, threshold, seed, cost_model, kernels,
        )
        batch_span.set_attribute("merges", len(log))
        batch_span.set_attribute("candidates_scored", scored)
    return log, scored, tracer.records()


def _shm_plan_range(
    graph: Graph,
    merge_arena: SharedGraphArena,
    group_lo: int,
    group_hi: int,
    pair_offset: int,
    threshold: float,
    seed: int,
    cost_model: str,
    kernels: str,
) -> Tuple[int, int]:
    """Plan a contiguous batch of groups straight out of a merge arena.

    Rebuilds each group's ``{sid: members}`` dict from the flattened
    membership arrays — sids in group order, members in the parent
    partition's order — so the plan is bit-identical to the pickle path's,
    then writes the ordered merge pairs into the shared ``pairs`` slab at
    ``pair_offset``. Returns ``(num_merges, candidates_scored)``; the
    parent reads the pairs back from the slab.
    """
    node2super = merge_arena.array("node2super")
    sizes = merge_arena.array("sizes")
    sid_list = merge_arena.array("sid_list")
    sid_indptr = merge_arena.array("sid_indptr")
    members_flat = merge_arena.array("members")
    group_indptr = merge_arena.array("group_indptr")
    pairs = merge_arena.array("pairs")
    log: List[Tuple[int, int]] = []
    scored = 0
    for offset, g in enumerate(range(group_lo, group_hi)):
        group_members: Dict[int, List[int]] = {}
        for j in range(int(group_indptr[g]), int(group_indptr[g + 1])):
            sid = int(sid_list[j])
            group_members[sid] = members_flat[
                int(sid_indptr[j]):int(sid_indptr[j + 1])
            ].tolist()
        merges, count = plan_group_merges(
            graph, node2super, sizes, group_members,
            threshold, seed + offset, cost_model, kernels,
        )
        log.extend(merges)
        scored += count
    if log:
        pairs[pair_offset:pair_offset + len(log)] = log
    return len(log), scored


def _shm_worker(task) -> Tuple[int, int, int, List[dict]]:
    """Pool worker for the zero-copy transport.

    The task carries only descriptors and scalars; the graph, the
    partition snapshot, the group membership and the output slab are all
    mapped from shared memory. Returns ``(num_merges, candidates_scored,
    attaches, span_records)`` — the merge pairs themselves never travel
    through the result pickle, the parent reads them from the slab.
    """
    (graph_desc, merge_desc, batch_index, group_lo, group_hi, pair_offset,
     threshold, seed, cost_model, kernels, iteration, attempt,
     trace_ctx) = task
    faults: Optional[FaultInjector] = _SHARED.get("faults")
    if faults is not None:
        faults.on_worker_batch(iteration, batch_index, attempt)
    graph, attaches = _attached_graph(graph_desc)
    merge_arena, merge_attaches = _attach_cached(merge_desc)
    attaches += merge_attaches
    if trace_ctx is None:
        num_merges, scored = _shm_plan_range(
            graph, merge_arena, group_lo, group_hi, pair_offset,
            threshold, seed, cost_model, kernels,
        )
        return num_merges, scored, attaches, []
    tracer = Tracer.from_context(trace_ctx)
    with tracer.span(
        "group_batch", key=batch_index, groups=group_hi - group_lo
    ) as batch_span:
        num_merges, scored = _shm_plan_range(
            graph, merge_arena, group_lo, group_hi, pair_offset,
            threshold, seed, cost_model, kernels,
        )
        batch_span.set_attribute("merges", num_merges)
        batch_span.set_attribute("candidates_scored", scored)
    return num_merges, scored, attaches, tracer.records()


def _scatter_worker(task) -> int:
    """Pool worker for the parallel DOPH scatter.

    Computes the bin-minimum partial over one contiguous entry range into
    its private slab slot. Any slot partitioning reduces (``np.minimum``)
    to the exact single-pass scatter. Returns the number of fresh arena
    attaches performed.
    """
    (graph_desc, sig_desc, slot, entry_lo, entry_hi, num_rows, k,
     chunk_rows) = task
    graph_arena, attaches = _attach_cached(graph_desc)
    sig_arena, sig_attaches = _attach_cached(sig_desc)
    attaches += sig_attaches
    rows = sig_arena.array("rows")
    perm = sig_arena.array("perm")
    items = graph_arena.array("indices")
    slab = sig_arena.array("slab")
    slot_view = slab[slot]
    slot_view.fill(SCATTER_EMPTY)
    doph_scatter_min(
        rows[entry_lo:entry_hi], items[entry_lo:entry_hi], num_rows,
        perm, k, chunk_rows=chunk_rows, out=slot_view,
    )
    return attaches


class MultiprocessLDME(LDME):
    """LDME with a supervised process-parallel merge phase.

    Parameters are those of :class:`~repro.core.ldme.LDME` plus:

    num_workers:
        Pool size (defaults to the CPU count, capped at 8). ``1`` runs
        the serial merge loop in-process.
    batch_timeout:
        Per-batch result deadline in seconds (also the crash-detection
        latency); ``None`` disables supervision timeouts.
    max_batch_retries:
        Fresh-pool retry rounds for failed batches before the parent
        plans them serially.
    fault_injector:
        Optional :class:`~repro.resilience.FaultInjector` consulted by
        workers — test/chaos hook, never needed in production.

    The inherited ``shared_memory`` knob selects the worker transport
    (``"auto"``/``"on"``/``"off"``; see :class:`~repro.core.config.
    LDMEConfig`). :attr:`signature_fanout_min_nnz` holds the CSR entry
    count below which the divide's signature scatter stays in-process
    (set it to 0 to force the worker fan-out, as the tests do).
    """

    #: Minimum CSR entries before the DOPH scatter fans out to workers.
    signature_fanout_min_nnz: int = 2_000_000

    def __init__(
        self,
        num_workers: Optional[int] = None,
        batch_timeout: Optional[float] = 300.0,
        max_batch_retries: int = 2,
        fault_injector: Optional[FaultInjector] = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if num_workers is not None and num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers or min(8, multiprocessing.cpu_count())
        self.batch_timeout = batch_timeout
        self.max_batch_retries = max_batch_retries
        self.fault_injector = fault_injector
        self.name = f"{self.name}-mp{self.num_workers}"
        self._graph_arena: Optional[SharedGraphArena] = None
        self._graph_arena_key = None
        self._shm_probe: Optional[bool] = None   # lazy availability check
        self._shm_broken = False                 # latched on ArenaError

    # ------------------------------------------------------------------
    # shared-memory arena lifecycle
    # ------------------------------------------------------------------
    def _shm_active(self) -> bool:
        """Whether this run should use the zero-copy transport."""
        if self.shared_memory == "off" or self._shm_broken:
            return False
        if self.shared_memory == "on":
            return True
        if self._shm_probe is None:
            self._shm_probe = shared_memory_available()
        return self._shm_probe

    def _ensure_graph_arena(self, graph: Graph) -> SharedGraphArena:
        """The run-scoped CSR arena, created on first use.

        Cached per input graph; replaced (old one unlinked) if a
        different graph arrives. Raises :class:`ArenaError` when shared
        memory cannot be provided — callers degrade to the pickle path.
        """
        key = (id(graph), graph.num_nodes, graph.num_edges)
        if self._graph_arena is not None and self._graph_arena_key == key:
            return self._graph_arena
        self.close_arenas()
        arena = SharedGraphArena.create(
            {"indptr": graph.indptr, "indices": graph.indices},
            label="graph",
        )
        self._graph_arena = arena
        self._graph_arena_key = key
        return arena

    def close_arenas(self) -> None:
        """Unlink the run-scoped graph arena (idempotent).

        ``summarize`` calls this on every exit path; it is public for
        callers (benchmarks) that drive ``_merge_phase`` directly.
        """
        if self._graph_arena is not None:
            try:
                self._graph_arena.unlink()
            except ArenaError:  # pragma: no cover - inherited/foreign arena
                pass
            self._graph_arena = None
            self._graph_arena_key = None

    def _shm_degrade(self, run_stats: RunStats, exc: Exception) -> None:
        """Record an arena failure and latch the pickle path for the run."""
        run_stats.shm_fallbacks += 1
        obs_metrics.inc("shm_fallback_total")
        logger.warning("shared-memory transport degraded to pickle: %s", exc)
        self._shm_broken = True
        self.close_arenas()

    def summarize(self, graph, *args, **kwargs):
        """Run the inherited driver with guaranteed arena cleanup.

        Wraps :meth:`BaseSummarizer.summarize` so the run-scoped graph
        arena is unlinked on every exit path — normal completion, an
        early-stop, a raised ``KeyboardInterrupt`` — with the module
        ``atexit`` hook and the resource tracker as the last-resort nets
        for hard kills.
        """
        self._shm_broken = False
        try:
            return super().summarize(graph, *args, **kwargs)
        finally:
            self.close_arenas()

    # ------------------------------------------------------------------
    # parallel DOPH scatter (divide phase)
    # ------------------------------------------------------------------
    def divide(self, graph, partition, rng):
        """LSH divide, optionally fanning the signature scatter to workers.

        The fan-out engages only on the binary-weights path with shared
        memory active and at least :attr:`signature_fanout_min_nnz` CSR
        entries; the result is bit-identical either way (partial bin
        minima reduce exactly), so the golden suites pin both modes.
        """
        signature_fn = None
        if (
            self.divide_weights == "binary"
            and self.num_workers > 1
            and _fork_available()
            and self._shm_active()
            and graph.indices.size >= self.signature_fanout_min_nnz
        ):
            def signature_fn(rows, items, num_rows, perm, k, directions):
                return self._parallel_signatures(
                    graph, rows, num_rows, perm, k, directions
                )
        return lsh_divide(
            graph, partition, self.k, rng, weights=self.divide_weights,
            kernels=self.kernels, chunk_rows=self.doph_chunk_rows,
            signature_fn=signature_fn,
        )

    def _inline_signatures(self, rows, items, num_rows, perm, k, directions):
        """The in-process bulk kernel (fallback for the fan-out path)."""
        from ..lsh.doph import doph_signatures_bulk

        return doph_signatures_bulk(
            rows, items, num_rows, perm, k, directions,
            backend=self.kernels, chunk_rows=self.doph_chunk_rows,
        )

    def _parallel_signatures(
        self, graph, rows, num_rows, perm, k, directions
    ):
        """Worker fan-out of the DOPH bin-minimum scatter.

        The item ids are the CSR ``indices`` already living in the graph
        arena; a per-divide arena adds the row ids, the permutation and a
        per-worker partial-minimum slab. Workers scatter contiguous entry
        ranges; the parent min-reduces the slots and densifies. Every
        failure mode degrades to the in-process bulk kernel with the
        result unchanged.
        """
        nnz = int(rows.size)
        num_parts = min(self.num_workers, max(1, nnz))
        try:
            graph_arena = self._ensure_graph_arena(graph)
            with obs_trace.span(
                "scatter", key="fanout", parts=num_parts, nnz=nnz
            ) as scatter_span:
                sig_arena = SharedGraphArena.create(
                    {
                        "rows": np.ascontiguousarray(rows, dtype=np.int64),
                        "perm": perm,
                    },
                    outputs={
                        "slab": ((num_parts, num_rows * k), np.int64),
                    },
                    label="signatures",
                )
                try:
                    bounds = np.linspace(
                        0, nnz, num_parts + 1, dtype=np.int64
                    )
                    tasks = [
                        (
                            graph_arena.descriptor, sig_arena.descriptor,
                            slot, int(bounds[slot]), int(bounds[slot + 1]),
                            num_rows, k, self.doph_chunk_rows,
                        )
                        for slot in range(num_parts)
                    ]
                    ctx = multiprocessing.get_context("fork")
                    pool = ctx.Pool(processes=num_parts)
                    try:
                        handles = [
                            pool.apply_async(_scatter_worker, (task,))
                            for task in tasks
                        ]
                        attaches = sum(
                            handle.get(self.batch_timeout)
                            for handle in handles
                        )
                    finally:
                        pool.terminate()
                        pool.join()
                    obs_metrics.inc("shm_arena_attach_total", attaches)
                    scatter_span.set_attribute("attaches", attaches)
                    flat = np.minimum.reduce(
                        sig_arena.array("slab"), axis=0
                    )
                finally:
                    sig_arena.unlink()
            return doph_densify(flat, num_rows, k, directions)
        except ArenaError as exc:
            obs_metrics.inc("shm_fallback_total")
            logger.warning("signature fan-out degraded to in-process: %s", exc)
            return self._inline_signatures(
                rows, graph.indices, num_rows, perm, k, directions
            )
        except Exception as exc:  # noqa: BLE001 - timeout/pool death
            logger.warning("signature fan-out failed (%r); running inline", exc)
            return self._inline_signatures(
                rows, graph.indices, num_rows, perm, k, directions
            )

    # ------------------------------------------------------------------
    def _merge_phase(
        self,
        graph: Graph,
        partition: SupernodePartition,
        groups: List[List[int]],
        threshold: float,
        rng: np.random.Generator,
        iteration: int,
        run_stats: RunStats,
    ) -> MergeStats:
        """Fan groups out over a supervised fork pool and apply the plans.

        Seeds are derived from (self.seed, iteration, batch index), never
        drawn from ``rng``, so the parallel run is deterministic and a
        retried batch replays identically. The parent ``rng`` is consumed
        only by the divide phase, exactly as in the serial driver.

        Transport: zero-copy shared-memory arenas when ``shared_memory``
        allows (an :class:`ArenaError` during setup degrades the rest of
        the run to pickle and bumps ``RunStats.shm_fallbacks``), pickled
        batches otherwise. The applied plans are bit-identical.
        """
        if self.num_workers == 1 or not _fork_available():
            return super()._merge_phase(
                graph, partition, groups, threshold, rng, iteration, run_stats
            )
        if not groups:
            return MergeStats()
        if self._shm_active():
            try:
                return self._merge_phase_shm(
                    graph, partition, groups, threshold, iteration, run_stats
                )
            except ArenaError as exc:
                self._shm_degrade(run_stats, exc)
        return self._merge_phase_pickle(
            graph, partition, groups, threshold, iteration, run_stats
        )

    def _merge_phase_pickle(
        self,
        graph: Graph,
        partition: SupernodePartition,
        groups: List[List[int]],
        threshold: float,
        iteration: int,
        run_stats: RunStats,
    ) -> MergeStats:
        """The legacy transport: per-task pickled member-list batches."""
        merge_stats = MergeStats()
        node2super = partition.node2super.copy()
        sizes = np.bincount(node2super, minlength=graph.num_nodes).astype(
            np.int64
        )
        batches: List[List[Dict[int, List[int]]]] = [
            [] for _ in range(self.num_workers)
        ]
        for i, group in enumerate(groups):
            batches[i % self.num_workers].append(
                {sid: list(partition.members(sid)) for sid in group}
            )
        base_seed = self.seed * 100_003 + iteration
        # (batch index, batch, derived seed) descriptors; round-robin
        # filling means the non-empty batches form a prefix, so the index
        # equals the original worker slot (stable fault coordinates and
        # seeds across retries).
        descriptors = [
            (w, batch, base_seed + 10_000 * w)
            for w, batch in enumerate(batches)
            if batch
        ]

        trace_ctx = obs_trace.context()   # None when tracing is off

        def build_task(descriptor, attempt):
            batch_index, batch, seed = descriptor
            return (
                batch, threshold, seed, self.cost_model, self.kernels,
                iteration, batch_index, attempt, trace_ctx,
            )

        def plan_serially(descriptor):
            # In-process fallback: bypasses _SHARED and the fault
            # injector entirely — degraded mode must be fault-free. It
            # runs under the parent's live merge span, so its
            # group_batch span (same deterministic id the worker would
            # have produced) lands directly on the active tracer.
            batch_index, batch, seed = descriptor
            with obs_trace.span(
                "group_batch", key=batch_index, groups=len(batch)
            ) as batch_span:
                log, scored = _plan_batch(
                    graph, node2super, sizes, batch,
                    threshold, seed, self.cost_model, self.kernels,
                )
                batch_span.set_attribute("merges", len(log))
                batch_span.set_attribute("candidates_scored", scored)
            return log, scored, []

        def make_pool(num_tasks):
            ctx = multiprocessing.get_context("fork")
            return ctx.Pool(processes=min(self.num_workers, num_tasks))

        supervisor = BatchSupervisor(
            worker_fn=_worker,
            task_builder=build_task,
            serial_fn=plan_serially,
            pool_factory=make_pool,
            policy=SupervisionPolicy(
                batch_timeout=self.batch_timeout,
                max_retries=self.max_batch_retries,
            ),
        )
        _SHARED["graph"] = graph
        _SHARED["node2super"] = node2super
        _SHARED["sizes"] = sizes
        if self.fault_injector is not None:
            _SHARED["faults"] = self.fault_injector
        try:
            plans, report = supervisor.run(descriptors)
        finally:
            _SHARED.clear()
        report.merge_into(run_stats)
        tracer = obs_trace.active()
        for log, scored, span_records in plans:
            if tracer is not None and span_records:
                tracer.ingest(span_records)
            merge_stats.candidates_scored += scored
            for a, b in log:
                partition.merge(a, b)
                merge_stats.merges += 1
        return merge_stats

    def _merge_phase_shm(
        self,
        graph: Graph,
        partition: SupernodePartition,
        groups: List[List[int]],
        threshold: float,
        iteration: int,
        run_stats: RunStats,
    ) -> MergeStats:
        """The zero-copy transport: arenas in, pairs slab out.

        The parent flattens the iteration's group structure into arrays —
        sids batch-major in group order, member lists concatenated in the
        partition's own order (order is load-bearing: the group-W cost
        accumulates floats in member insertion order, so any reordering
        would silently change tie-breaking) — and places them, with the
        partition snapshot, in a per-iteration arena. Workers attach,
        plan, and write merge pairs into the preallocated slab; the
        parent applies the pairs in batch order, exactly like the pickle
        path.

        Raises :class:`ArenaError` only before any work is dispatched
        (arena creation / integrity self-check); from then on worker
        failures are the supervisor's business (retry → serial fallback),
        so a thrown error never leaves a partially merged partition.
        """
        merge_stats = MergeStats()
        node2super = partition.node2super.copy()
        sizes = np.bincount(node2super, minlength=graph.num_nodes).astype(
            np.int64
        )
        batches: List[List[List[int]]] = [[] for _ in range(self.num_workers)]
        for i, group in enumerate(groups):
            batches[i % self.num_workers].append(group)
        base_seed = self.seed * 100_003 + iteration

        # Flatten batch-major: groups -> sid runs -> member runs. The
        # batch index keeps the original worker slot (stable fault
        # coordinates, seeds and span keys across transports).
        flat_groups: List[List[int]] = []
        spans: List[Tuple[int, int, int]] = []   # (batch index, lo, hi)
        for w, batch in enumerate(batches):
            if batch:
                spans.append((w, len(flat_groups), len(flat_groups) + len(batch)))
                flat_groups.extend(batch)
        member_runs = [
            partition.members(sid) for group in flat_groups for sid in group
        ]
        sid_list = np.fromiter(
            chain.from_iterable(flat_groups), dtype=np.int64,
            count=sum(len(g) for g in flat_groups),
        )
        sid_counts = np.fromiter(
            (len(m) for m in member_runs), dtype=np.int64,
            count=len(member_runs),
        )
        sid_indptr = np.concatenate(
            [[0], np.cumsum(sid_counts, dtype=np.int64)]
        )
        members_flat = np.fromiter(
            chain.from_iterable(member_runs), dtype=np.int64,
            count=int(sid_indptr[-1]),
        )
        group_sizes = np.fromiter(
            (len(g) for g in flat_groups), dtype=np.int64,
            count=len(flat_groups),
        )
        group_indptr = np.concatenate(
            [[0], np.cumsum(group_sizes, dtype=np.int64)]
        )
        # Pair-slab capacity: a group of s supernodes plans at most s - 1
        # merges. Per-batch regions are contiguous in batch order.
        group_capacity = group_sizes - 1
        pair_offsets = np.concatenate(
            [[0], np.cumsum(group_capacity, dtype=np.int64)]
        )
        capacity = int(pair_offsets[-1])

        # Capture the merge-span context BEFORE the arena span opens so
        # worker group_batch spans stay parented under merge.
        trace_ctx = obs_trace.context()
        with obs_trace.span(
            "arena", key=iteration, groups=len(flat_groups)
        ) as arena_span:
            graph_arena = self._ensure_graph_arena(graph)
            merge_arena = SharedGraphArena.create(
                {
                    "node2super": node2super,
                    "sizes": sizes,
                    "sid_list": sid_list,
                    "sid_indptr": sid_indptr,
                    "members": members_flat,
                    "group_indptr": group_indptr,
                },
                outputs={"pairs": ((capacity, 2), np.int64)},
                label="merge",
            )
            try:
                # Cheap pre-dispatch integrity gate: a corrupted arena or
                # tampered descriptor raises the typed error here, in the
                # parent, where degradation to pickle is still clean.
                graph_arena.self_check()
                merge_arena.self_check()
            except ArenaError:
                merge_arena.unlink()
                raise
            arena_span.set_attribute("graph_bytes", graph_arena.nbytes)
            arena_span.set_attribute("merge_bytes", merge_arena.nbytes)

        try:
            descriptors = [
                (w, lo, hi, int(pair_offsets[lo]), base_seed + 10_000 * w)
                for w, lo, hi in spans
            ]
            graph_desc = graph_arena.descriptor
            merge_desc = merge_arena.descriptor

            def build_task(descriptor, attempt):
                w, lo, hi, pair_offset, seed = descriptor
                return (
                    graph_desc, merge_desc, w, lo, hi, pair_offset,
                    threshold, seed, self.cost_model, self.kernels,
                    iteration, attempt, trace_ctx,
                )

            def plan_serially(descriptor):
                # In-process fallback: plans from the parent's own arena
                # views (bit-identical inputs) and writes the slab region
                # the worker would have, under the live merge span.
                w, lo, hi, pair_offset, seed = descriptor
                with obs_trace.span(
                    "group_batch", key=w, groups=hi - lo
                ) as batch_span:
                    num_merges, scored = _shm_plan_range(
                        graph, merge_arena, lo, hi, pair_offset,
                        threshold, seed, self.cost_model, self.kernels,
                    )
                    batch_span.set_attribute("merges", num_merges)
                    batch_span.set_attribute("candidates_scored", scored)
                return num_merges, scored, 0, []

            def make_pool(num_tasks):
                ctx = multiprocessing.get_context("fork")
                return ctx.Pool(processes=min(self.num_workers, num_tasks))

            supervisor = BatchSupervisor(
                worker_fn=_shm_worker,
                task_builder=build_task,
                serial_fn=plan_serially,
                pool_factory=make_pool,
                policy=SupervisionPolicy(
                    batch_timeout=self.batch_timeout,
                    max_retries=self.max_batch_retries,
                ),
            )
            if self.fault_injector is not None:
                _SHARED["faults"] = self.fault_injector
            try:
                plans, report = supervisor.run(descriptors)
            finally:
                _SHARED.clear()
            report.merge_into(run_stats)
            tracer = obs_trace.active()
            pairs = merge_arena.array("pairs")
            attaches_total = 0
            for descriptor, result in zip(descriptors, plans):
                _, _, _, pair_offset, _ = descriptor
                num_merges, scored, attaches, span_records = result
                if tracer is not None and span_records:
                    tracer.ingest(span_records)
                merge_stats.candidates_scored += scored
                attaches_total += attaches
                for a, b in pairs[
                    pair_offset:pair_offset + num_merges
                ].tolist():
                    partition.merge(a, b)
                    merge_stats.merges += 1
            obs_metrics.inc("shm_arena_attach_total", attaches_total)
        finally:
            merge_arena.unlink()
        return merge_stats


def _fork_available() -> bool:
    """True when the 'fork' start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()
