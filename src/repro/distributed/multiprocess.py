"""Real shared-memory parallel LDME (the paper's parallel implementation).

The paper notes every phase of LDME parallelizes: signatures per supernode,
merge per group, encode per supernode. :class:`MultiprocessLDME` runs the
merge phase on a process pool for real: each worker receives a batch of
groups plus a frozen snapshot of the iteration-start partition, *plans* the
merges for its groups (groups are disjoint, so plans never conflict), and
the parent applies all plans. Out-of-group supernode sizes are read from
the snapshot — the same staleness semantics as the paper's Spark version,
where each executor works against the broadcast partition state.

Uses the ``fork`` start method so the graph's CSR arrays are inherited
copy-on-write instead of pickled per task; on platforms without ``fork``
(or with ``num_workers=1``) it degrades to the serial loop.

The pool runs under a :class:`~repro.resilience.supervisor.BatchSupervisor`:
a crashed or hung worker batch is detected via a per-batch deadline,
retried on a fresh pool with the *same* derived seed (planning is a pure
function, so the retry's plan is identical), and after ``max_batch_retries``
rounds the remaining batches are planned serially in the parent. A dying
pool therefore costs throughput, never correctness. Supervision counters
land on :class:`~repro.core.summary.RunStats`.

Only :meth:`~repro.core.base.BaseSummarizer._merge_phase` is overridden, so
the class inherits the shared driver — including checkpoint/resume via
:func:`repro.resilience.run_resumable`, early stopping, compression
tracking, and lossy dropping.

On the scaled surrogate graphs in this repo the process-pool overhead often
exceeds the merge work — this class exists for API completeness and for
larger inputs, and its tests assert *correctness* (lossless output,
valid partitions), not speedups.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ldme import LDME
from ..core.merge import MergeStats, merge_group_exact
from ..core.partition import SupernodePartition
from ..core.summary import RunStats
from ..graph.graph import Graph
from ..obs import trace as obs_trace
from ..obs.trace import Tracer
from ..resilience.faults import FaultInjector
from ..resilience.supervisor import BatchSupervisor, SupervisionPolicy

__all__ = ["MultiprocessLDME", "plan_group_merges"]

# Shared state inherited by forked workers (set immediately before the pool
# is created; read-only in children).
_SHARED: dict = {}


class _SnapshotPartition:
    """Partition view a worker plans merges against.

    Group members are local and mutable (in-group merges update them);
    everything else reads the frozen iteration-start snapshot. The merge
    log records (a, b) pairs in order so the parent can replay them on the
    real partition with identical survivor decisions.
    """

    def __init__(
        self,
        node2super: np.ndarray,
        sizes: np.ndarray,
        group_members: Dict[int, List[int]],
    ) -> None:
        self._node2super = node2super
        self._sizes = sizes
        self._members = {sid: list(mem) for sid, mem in group_members.items()}
        self.merge_log: List[Tuple[int, int]] = []

    @property
    def node2super(self) -> np.ndarray:
        return self._node2super

    def members(self, sid: int) -> List[int]:
        return self._members[sid]

    def size(self, sid: int) -> int:
        local = self._members.get(sid)
        if local is not None:
            return len(local)
        return int(self._sizes[sid])

    def merge(self, a: int, b: int) -> Tuple[int, int]:
        if a == b:
            raise ValueError("cannot merge a supernode with itself")
        self.merge_log.append((a, b))
        mem_a, mem_b = self._members[a], self._members[b]
        if len(mem_b) > len(mem_a):
            survivor, absorbed = b, a
            mem_s, mem_x = mem_b, mem_a
        else:
            survivor, absorbed = a, b
            mem_s, mem_x = mem_a, mem_b
        mem_s.extend(mem_x)
        del self._members[absorbed]
        return survivor, absorbed


def plan_group_merges(
    graph: Graph,
    node2super: np.ndarray,
    sizes: np.ndarray,
    group_members: Dict[int, List[int]],
    threshold: float,
    seed: int,
    cost_model: str = "exact",
    kernels: str = "python",
) -> Tuple[List[Tuple[int, int]], int]:
    """Plan the merges for one group against a partition snapshot.

    Returns the ordered (a, b) merge pairs plus the candidate-scoring count.
    Pure function of its inputs — usable directly (tests), from workers,
    and as the serial fallback when the pool dies (a retried or
    fallen-back batch reproduces the exact plan a healthy worker would
    have returned).
    """
    snapshot = _SnapshotPartition(node2super, sizes, group_members)
    stats = merge_group_exact(
        graph,
        snapshot,
        list(group_members),
        threshold,
        seed=np.random.default_rng(seed),
        cost_model=cost_model,
        kernels=kernels,
    )
    return snapshot.merge_log, stats.candidates_scored


def _plan_batch(
    graph: Graph,
    node2super: np.ndarray,
    sizes: np.ndarray,
    batch: Sequence[Dict[int, List[int]]],
    threshold: float,
    seed: int,
    cost_model: str,
    kernels: str = "python",
) -> Tuple[List[Tuple[int, int]], int]:
    """Plan one batch of groups (seeded ``seed + offset`` per group)."""
    log: List[Tuple[int, int]] = []
    scored = 0
    for offset, group_members in enumerate(batch):
        merges, count = plan_group_merges(
            graph, node2super, sizes, group_members,
            threshold, seed + offset, cost_model, kernels,
        )
        log.extend(merges)
        scored += count
    return log, scored


def _worker(task) -> Tuple[List[Tuple[int, int]], int, List[dict]]:
    """Pool worker: plan merges for one batch of groups.

    The fault hook fires before any planning so an injected crash models
    a worker dying mid-iteration with no partial results delivered.

    When the parent propagates a trace context, the worker rebuilds a
    child tracer from it, wraps its planning in a ``group_batch`` span
    parented at the parent's ``merge`` span, and ships the serialized
    span records back with the plan. Span ids are deterministic, so a
    retried batch re-emits the *same* span and the stitched tree is
    identical to a single-process run's.
    """
    (batch, threshold, seed, cost_model, kernels,
     iteration, batch_index, attempt, trace_ctx) = task
    faults: Optional[FaultInjector] = _SHARED.get("faults")
    if faults is not None:
        faults.on_worker_batch(iteration, batch_index, attempt)
    if trace_ctx is None:
        log, scored = _plan_batch(
            _SHARED["graph"], _SHARED["node2super"], _SHARED["sizes"],
            batch, threshold, seed, cost_model, kernels,
        )
        return log, scored, []
    tracer = Tracer.from_context(trace_ctx)
    with tracer.span(
        "group_batch", key=batch_index, groups=len(batch)
    ) as batch_span:
        log, scored = _plan_batch(
            _SHARED["graph"], _SHARED["node2super"], _SHARED["sizes"],
            batch, threshold, seed, cost_model, kernels,
        )
        batch_span.set_attribute("merges", len(log))
        batch_span.set_attribute("candidates_scored", scored)
    return log, scored, tracer.records()


class MultiprocessLDME(LDME):
    """LDME with a supervised process-parallel merge phase.

    Parameters are those of :class:`~repro.core.ldme.LDME` plus:

    num_workers:
        Pool size (defaults to the CPU count, capped at 8). ``1`` runs
        the serial merge loop in-process.
    batch_timeout:
        Per-batch result deadline in seconds (also the crash-detection
        latency); ``None`` disables supervision timeouts.
    max_batch_retries:
        Fresh-pool retry rounds for failed batches before the parent
        plans them serially.
    fault_injector:
        Optional :class:`~repro.resilience.FaultInjector` consulted by
        workers — test/chaos hook, never needed in production.
    """

    def __init__(
        self,
        num_workers: Optional[int] = None,
        batch_timeout: Optional[float] = 300.0,
        max_batch_retries: int = 2,
        fault_injector: Optional[FaultInjector] = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if num_workers is not None and num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers or min(8, multiprocessing.cpu_count())
        self.batch_timeout = batch_timeout
        self.max_batch_retries = max_batch_retries
        self.fault_injector = fault_injector
        self.name = f"{self.name}-mp{self.num_workers}"

    # ------------------------------------------------------------------
    def _merge_phase(
        self,
        graph: Graph,
        partition: SupernodePartition,
        groups: List[List[int]],
        threshold: float,
        rng: np.random.Generator,
        iteration: int,
        run_stats: RunStats,
    ) -> MergeStats:
        """Fan groups out over a supervised fork pool and apply the plans.

        Seeds are derived from (self.seed, iteration, batch index), never
        drawn from ``rng``, so the parallel run is deterministic and a
        retried batch replays identically. The parent ``rng`` is consumed
        only by the divide phase, exactly as in the serial driver.
        """
        if self.num_workers == 1 or not _fork_available():
            return super()._merge_phase(
                graph, partition, groups, threshold, rng, iteration, run_stats
            )
        merge_stats = MergeStats()
        if not groups:
            return merge_stats
        node2super = partition.node2super.copy()
        sizes = np.bincount(node2super, minlength=graph.num_nodes).astype(
            np.int64
        )
        batches: List[List[Dict[int, List[int]]]] = [
            [] for _ in range(self.num_workers)
        ]
        for i, group in enumerate(groups):
            batches[i % self.num_workers].append(
                {sid: list(partition.members(sid)) for sid in group}
            )
        base_seed = self.seed * 100_003 + iteration
        # (batch index, batch, derived seed) descriptors; round-robin
        # filling means the non-empty batches form a prefix, so the index
        # equals the original worker slot (stable fault coordinates and
        # seeds across retries).
        descriptors = [
            (w, batch, base_seed + 10_000 * w)
            for w, batch in enumerate(batches)
            if batch
        ]

        trace_ctx = obs_trace.context()   # None when tracing is off

        def build_task(descriptor, attempt):
            batch_index, batch, seed = descriptor
            return (
                batch, threshold, seed, self.cost_model, self.kernels,
                iteration, batch_index, attempt, trace_ctx,
            )

        def plan_serially(descriptor):
            # In-process fallback: bypasses _SHARED and the fault
            # injector entirely — degraded mode must be fault-free. It
            # runs under the parent's live merge span, so its
            # group_batch span (same deterministic id the worker would
            # have produced) lands directly on the active tracer.
            batch_index, batch, seed = descriptor
            with obs_trace.span(
                "group_batch", key=batch_index, groups=len(batch)
            ) as batch_span:
                log, scored = _plan_batch(
                    graph, node2super, sizes, batch,
                    threshold, seed, self.cost_model, self.kernels,
                )
                batch_span.set_attribute("merges", len(log))
                batch_span.set_attribute("candidates_scored", scored)
            return log, scored, []

        def make_pool(num_tasks):
            ctx = multiprocessing.get_context("fork")
            return ctx.Pool(processes=min(self.num_workers, num_tasks))

        supervisor = BatchSupervisor(
            worker_fn=_worker,
            task_builder=build_task,
            serial_fn=plan_serially,
            pool_factory=make_pool,
            policy=SupervisionPolicy(
                batch_timeout=self.batch_timeout,
                max_retries=self.max_batch_retries,
            ),
        )
        _SHARED["graph"] = graph
        _SHARED["node2super"] = node2super
        _SHARED["sizes"] = sizes
        if self.fault_injector is not None:
            _SHARED["faults"] = self.fault_injector
        try:
            plans, report = supervisor.run(descriptors)
        finally:
            _SHARED.clear()
        report.merge_into(run_stats)
        tracer = obs_trace.active()
        for log, scored, span_records in plans:
            if tracer is not None and span_records:
                tracer.ingest(span_records)
            merge_stats.candidates_scored += scored
            for a, b in log:
                partition.merge(a, b)
                merge_stats.merges += 1
        return merge_stats


def _fork_available() -> bool:
    """True when the 'fork' start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()
