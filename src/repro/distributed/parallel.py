"""Distributed execution of divide/merge/encode summarizers.

:func:`run_distributed` replays any :class:`~repro.core.base.BaseSummarizer`
under the simulated cluster of :mod:`repro.distributed.runtime`: divide and
encode are data-parallel phases, and each merge group is an independent
task (line 5 of Algorithm 1 — "each group is processed in parallel"). The
computation is executed for real, group by group, so the output
summarization is identical to the serial algorithm's; only wall-clock
attribution is simulated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.base import BaseSummarizer
from ..core.encode import encode_per_supernode, encode_sorted
from ..core.merge import MergeStats, merge_threshold
from ..core.partition import SupernodePartition
from ..core.summary import IterationStats, RunStats, Summarization
from ..graph.graph import Graph
from .runtime import ClusterSpec, SimulatedCluster

__all__ = ["DistributedResult", "run_distributed"]


@dataclass
class DistributedResult:
    """Summarization plus the simulated cluster's accounting."""

    summarization: Summarization
    simulated_seconds: float
    serial_seconds: float
    num_workers: int

    @property
    def speedup(self) -> float:
        """Serial / simulated wall-clock ratio."""
        if self.simulated_seconds == 0:
            return 1.0
        return self.serial_seconds / self.simulated_seconds


def run_distributed(
    summarizer: BaseSummarizer,
    graph: Graph,
    cluster: ClusterSpec = ClusterSpec(),
) -> DistributedResult:
    """Execute ``summarizer`` on ``graph`` under a simulated cluster.

    Mirrors :meth:`BaseSummarizer.summarize` exactly (same RNG stream, same
    group processing order) so results match the serial run of the same
    seed, while per-group costs feed the cluster model.
    """
    sim = SimulatedCluster(cluster)
    rng = np.random.default_rng(summarizer.seed)
    partition = SupernodePartition(graph.num_nodes)
    stats = RunStats()
    for t in range(1, summarizer.iterations + 1):
        tic = time.perf_counter()
        groups, divide_stats = summarizer.divide(graph, partition, rng)
        divide_serial = time.perf_counter() - tic
        divide_sim = sim.run_data_parallel(divide_serial)

        threshold = merge_threshold(t)
        merge_stats = MergeStats()
        group_costs = []
        for group in groups:
            tic = time.perf_counter()
            merge_stats += summarizer.merge_one_group(
                graph, partition, group, threshold, rng
            )
            group_costs.append(time.perf_counter() - tic)
        merge_sim = sim.run_round(group_costs)

        stats.divide_seconds += divide_sim
        stats.merge_seconds += merge_sim
        stats.iterations.append(
            IterationStats(
                iteration=t,
                divide_seconds=divide_sim,
                merge_seconds=merge_sim,
                num_groups=divide_stats.num_groups,
                max_group_size=divide_stats.max_group_size,
                num_supernodes=partition.num_supernodes,
                merges=merge_stats.merges,
            )
        )
    tic = time.perf_counter()
    if summarizer.encoder == "sorted":
        encoded = encode_sorted(graph, partition)
    else:
        encoded = encode_per_supernode(graph, partition)
    encode_serial = time.perf_counter() - tic
    stats.encode_seconds = sim.run_data_parallel(encode_serial)

    summarization = Summarization(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        partition=partition,
        superedges=encoded.superedges,
        corrections=encoded.corrections,
        stats=stats,
        algorithm=f"{summarizer.name}-distributed",
    )
    return DistributedResult(
        summarization=summarization,
        simulated_seconds=sim.simulated_seconds,
        serial_seconds=sim.serial_seconds,
        num_workers=cluster.num_workers,
    )
