"""Simulated distributed runtime.

The paper's Figure 5(b) runs parallel LDME/SWeG on Apache Spark over 8-node
Amazon EMR clusters. Offline and in pure Python we substitute a
*deterministic cluster simulator*: the real computation still executes
(results are bit-identical to the serial run), but each parallelizable work
unit is wall-clock timed and assigned to one of ``num_workers`` simulated
workers; the reported "distributed time" is the makespan plus scheduling
overheads. The paper's distributed claim — LDME's smaller merge groups keep
winning when groups are processed in parallel — is a statement about the
per-group cost distribution, which this harness measures for real.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["ClusterSpec", "SimulatedCluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of the simulated cluster.

    Attributes
    ----------
    num_workers:
        Parallel executor count (the paper uses 8 instances).
    round_overhead:
        Fixed seconds charged per synchronized round (job scheduling,
        broadcast of the current partition — Spark's per-stage latency).
        The default is scaled down from real Spark stage latency in the
        same proportion as the surrogate workloads are scaled down from
        the paper's datasets, so overhead:work ratios stay comparable.
    task_overhead:
        Fixed seconds charged per scheduled task (serialization etc.).
    """

    num_workers: int = 8
    round_overhead: float = 0.005
    task_overhead: float = 0.00005

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.round_overhead < 0 or self.task_overhead < 0:
            raise ValueError("overheads must be non-negative")


class SimulatedCluster:
    """Longest-processing-time scheduler over ``num_workers`` workers."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.rounds = 0
        self.simulated_seconds = 0.0
        self.serial_seconds = 0.0

    # ------------------------------------------------------------------
    def makespan(self, task_costs: Sequence[float]) -> float:
        """LPT makespan of ``task_costs`` over the cluster's workers."""
        if not task_costs:
            return 0.0
        loads: List[float] = [0.0] * self.spec.num_workers
        heapq.heapify(loads)
        for cost in sorted(task_costs, reverse=True):
            lightest = heapq.heappop(loads)
            heapq.heappush(loads, lightest + cost + self.spec.task_overhead)
        return max(loads)

    def run_round(self, task_costs: Sequence[float]) -> float:
        """Account one synchronized round of tasks; returns simulated time."""
        span = self.makespan(task_costs) + self.spec.round_overhead
        self.rounds += 1
        self.simulated_seconds += span
        self.serial_seconds += float(sum(task_costs))
        return span

    def run_data_parallel(self, serial_seconds: float) -> float:
        """Account an embarrassingly data-parallel phase (divide, encode).

        Perfectly divisible work: simulated time is the serial time divided
        across workers plus one round overhead.
        """
        if serial_seconds < 0:
            raise ValueError("serial_seconds must be non-negative")
        span = serial_seconds / self.spec.num_workers + self.spec.round_overhead
        self.rounds += 1
        self.simulated_seconds += span
        self.serial_seconds += serial_seconds
        return span

    @property
    def speedup(self) -> float:
        """Serial-time / simulated-time achieved so far."""
        if self.simulated_seconds == 0:
            return 1.0
        return self.serial_seconds / self.simulated_seconds
