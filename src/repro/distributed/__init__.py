"""Simulated distributed runtime (substitute for the paper's Spark/EMR)."""

from .multiprocess import MultiprocessLDME, plan_group_merges
from .parallel import DistributedResult, run_distributed
from .runtime import ClusterSpec, SimulatedCluster

__all__ = [
    "ClusterSpec",
    "SimulatedCluster",
    "DistributedResult",
    "run_distributed",
    "MultiprocessLDME",
    "plan_group_merges",
]
