"""Typed exception hierarchy for corruption-safe I/O and checkpointing.

These live in a leaf module (no intra-package imports) so every layer —
``binaryio``, ``graph.io``, ``streaming``, ``resilience``, ``serve`` — can
raise and catch them without import cycles. All of them subclass
:class:`ValueError`, so code written against the old untyped errors (the
CLI's top-level handler, the serve layer's reload path) keeps working
while new code can catch the precise failure.
"""

from __future__ import annotations

__all__ = [
    "CorruptSummaryError",
    "CheckpointError",
    "CorruptCheckpointError",
    "CorruptWALError",
    "IngestOverloadError",
]


class CorruptSummaryError(ValueError):
    """A summary artifact failed validation while being read.

    Raised for bad magic bytes, unsupported versions, truncated payloads,
    checksum mismatches and structurally impossible contents — anything
    where continuing to parse would hand the caller garbage.

    Attributes
    ----------
    path:
        Where the artifact came from (a filesystem path, or a placeholder
        like ``"<stream>"`` for file objects).
    """

    def __init__(self, path: str, message: str) -> None:
        super().__init__(f"{path}: {message}")
        self.path = str(path)


class CheckpointError(ValueError):
    """A checkpoint could not be saved, located, or safely resumed from.

    Also raised when a checkpoint exists but was produced by a different
    algorithm configuration or a different graph (fingerprint mismatch) —
    resuming from it would silently produce a wrong summary.
    """


class CorruptCheckpointError(CheckpointError):
    """One specific checkpoint file failed its integrity check.

    :meth:`repro.resilience.CheckpointManager.load_latest` catches this
    internally and falls back to the next older checkpoint; it only
    escapes when a caller loads one checkpoint explicitly.
    """

    def __init__(self, path: str, message: str) -> None:
        super().__init__(f"{path}: {message}")
        self.path = str(path)


class CorruptWALError(ValueError):
    """A write-ahead-log segment failed an integrity check.

    Raised when *acknowledged* data is damaged — a sealed segment with a
    checksum mismatch, a sequence gap in records needed for replay.
    Recovery never silently drops acknowledged events; the torn tail of
    the active segment (bytes whose fsync never completed, i.e. never
    acknowledged) is the only thing it truncates on its own.
    """

    def __init__(self, path: str, message: str) -> None:
        super().__init__(f"{path}: {message}")
        self.path = str(path)


class IngestOverloadError(RuntimeError):
    """The ingest queue is full and the submit chose not to wait.

    The backpressure signal of :class:`repro.ingest.IngestService`:
    producers that cannot block must shed or retry later. Events
    rejected this way were never written to the WAL and are *not*
    acknowledged.
    """
