"""Sharded-summarization scaling smoke (see docs/sharding.md).

Times :func:`repro.shard.summarize_sharded` across a shard-count ladder
on one fixed web-host graph and compares against the serial LDME run on
the same graph. Results land in ``BENCH_shard.json`` at the repo root —
the machine-readable record future sharding PRs regress against.

Two things are worth recording besides wall time:

* ``num_cut_edges`` / ``cross_superedges`` per shard count — the price of
  partitioning. More shards cut more edges, and every cut edge must be
  re-encoded by the stitcher; the JSON shows how fast that grows.
* Losslessness at every shard count — the stitched summary must
  reconstruct the input exactly, or the timing is meaningless.

The in-test gate is deliberately loose (each sharded run must stay
within ``SLOWDOWN_BUDGET`` of serial on this small graph — stitching
overhead dominates at this size, so sharding cannot be expected to win)
so CI stays robust on noisy shared runners.

Run with ``-s`` to see the per-shard-count table::

    PYTHONPATH=src python -m pytest benchmarks/test_shard_scaling.py -s
"""

import platform
import time
from pathlib import Path

import numpy as np

from repro.core.ldme import LDME
from repro.core.reconstruct import reconstruct
from repro.graph.generators import web_host_graph
from repro.metrics import PhaseTimer, write_bench
from repro.shard import summarize_sharded

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_shard.json"
SHARD_COUNTS = (1, 2, 4, 8)
REPEATS = 2
K = 5
ITERATIONS = 10
SEED = 7
#: Per-run ceiling vs serial. Stitching re-prices every cut edge, so on a
#: graph this small the sharded path is pure overhead; the gate only has
#: to catch pathological regressions (e.g. quadratic stitch loops).
SLOWDOWN_BUDGET = 12.0


def _make_graph():
    return web_host_graph(num_hosts=24, host_size=24, seed=SEED)


def test_shard_scaling_smoke():
    graph = _make_graph()
    timer = PhaseTimer()

    for _ in range(REPEATS):
        with timer.phase("serial", shards=0):
            LDME(k=K, iterations=ITERATIONS, seed=SEED).summarize(graph)

    cut_stats = {}
    for shards in SHARD_COUNTS:
        for _ in range(REPEATS):
            tic = time.perf_counter()
            result = summarize_sharded(
                graph, shards=shards, k=K, iterations=ITERATIONS,
                seed=SEED, validate=False,
            )
            timer.add("sharded", time.perf_counter() - tic, shards=shards)
        report = result.report
        assert report.ok, report.problems
        # Losslessness at every shard count, checked once per count.
        assert reconstruct(report.summary) == graph
        cut_stats[str(shards)] = {
            "num_cut_edges": report.num_cut_edges,
            "cross_superedges": report.cross_superedges,
            "supernodes": report.summary.num_supernodes,
        }

    serial = timer.best_seconds("serial", shards=0)
    write_bench(
        str(BENCH_PATH),
        timer,
        meta={
            "benchmark": "shard",
            "repeats": REPEATS,
            "k": K,
            "iterations": ITERATIONS,
            "seed": SEED,
            "graph": {
                "num_nodes": graph.num_nodes,
                "num_edges": graph.num_edges,
            },
            "serial_best_seconds": serial,
            "cut_stats": cut_stats,
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    )

    print(f"\nsharded summarize vs serial ({graph.num_nodes} nodes, "
          f"{graph.num_edges} edges, T={ITERATIONS}):")
    print(f"{'shards':>6} {'best_s':>8} {'vs_serial':>9} {'cut_edges':>9} "
          f"{'cross_se':>8}")
    print(f"{'serial':>6} {serial:>8.4f} {'1.00x':>9}")
    for shards in SHARD_COUNTS:
        best = timer.best_seconds("sharded", shards=shards)
        stats = cut_stats[str(shards)]
        print(f"{shards:>6} {best:>8.4f} {best / serial:>8.2f}x "
              f"{stats['num_cut_edges']:>9} "
              f"{stats['cross_superedges']:>8}")

    assert BENCH_PATH.exists()
    for shards in SHARD_COUNTS:
        best = timer.best_seconds("sharded", shards=shards)
        assert best is not None
        assert best <= serial * SLOWDOWN_BUDGET, (
            f"{shards}-shard run pathologically slow: {best:.4f}s vs "
            f"serial {serial:.4f}s (budget {SLOWDOWN_BUDGET}x)"
        )
