"""Observability overhead gate (see docs/observability.md).

The tracer/metrics/profiler hooks are compiled into the pipeline
unconditionally and turned on by installing an active instance; the
promise is that the *disabled* path is free. This harness measures
``LDME.summarize`` three ways:

* ``baseline`` — the obs seam functions monkeypatched to bare
  passthroughs, i.e. the cheapest conceivable instrumentation. The
  call sites (argument packing included) cannot be removed without
  shipping a second copy of the pipeline, so this is the honest floor.
* ``disabled`` — the shipped default: no tracer/registry/profiler
  installed, every hook short-circuits on an ``is None`` test.
* ``enabled`` — tracer + metrics registry + kernel profiler all live
  (informational; not gated).

Rounds are interleaved (baseline, disabled, enabled, repeat) so clock
drift hits all variants equally, and the minimum over ``REPEATS`` rounds
is compared: *disabled must be within 5% of baseline*. A per-call
microbenchmark of the disabled span hook is recorded alongside. Results
land in ``BENCH_obs.json`` at the repo root.

Run with ``-s`` to see the table::

    PYTHONPATH=src python -m pytest benchmarks/test_obs_overhead.py -s
"""

import platform
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest

from repro.core.ldme import LDME
from repro.graph.generators import web_host_graph
from repro.metrics import PhaseTimer, write_bench
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import KernelProfiler
from repro.obs.trace import Tracer

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
REPEATS = 5
SEED = 11
ITERATIONS = 5
#: Disabled-mode wall time must stay within 5% of the passthrough floor.
OVERHEAD_BUDGET = 1.05


def _graph():
    return web_host_graph(num_hosts=40, host_size=32, seed=1)


def _summarize(graph):
    return LDME(k=4, iterations=ITERATIONS, seed=SEED).summarize(graph)


@contextmanager
def passthrough_seams():
    """Monkeypatch the obs seams to the cheapest possible stubs."""
    noop_span = obs_trace._NOOP_SPAN

    def stub_span(*args, **kwargs):
        return noop_span

    def stub_none(*args, **kwargs):
        return None

    saved = (
        obs_trace.span, obs_metrics.inc, obs_metrics.observe,
        obs_metrics.set_gauge,
    )
    obs_trace.span = stub_span
    obs_metrics.inc = stub_none
    obs_metrics.observe = stub_none
    obs_metrics.set_gauge = stub_none
    try:
        yield
    finally:
        (obs_trace.span, obs_metrics.inc, obs_metrics.observe,
         obs_metrics.set_gauge) = saved


def _time_once(graph):
    tic = time.perf_counter()
    _summarize(graph)
    return time.perf_counter() - tic


def _span_hook_nanos(calls: int = 100_000) -> float:
    """Per-call cost of a disabled ``obs_trace.span`` invocation."""
    assert obs_trace.active() is None
    tic = time.perf_counter()
    for _ in range(calls):
        with obs_trace.span("bench", key=0, n=1):
            pass
    return (time.perf_counter() - tic) / calls * 1e9


@pytest.mark.slow
def test_disabled_tracing_overhead(capsys):
    graph = _graph()
    timer = PhaseTimer()
    _summarize(graph)        # warm caches/JIT-ish paths before timing

    span_count = 0
    for _ in range(REPEATS):
        with passthrough_seams():
            with timer.phase("summarize", mode="baseline"):
                _summarize(graph)
        with timer.phase("summarize", mode="disabled"):
            _summarize(graph)
        tracer = Tracer(seed=SEED)
        with obs_trace.use(tracer), \
                obs_metrics.use(MetricsRegistry()), \
                obs_profile.use(KernelProfiler()):
            with timer.phase("summarize", mode="enabled"):
                _summarize(graph)
        span_count = len(tracer.spans)

    baseline = timer.best_seconds("summarize", mode="baseline")
    disabled = timer.best_seconds("summarize", mode="disabled")
    enabled = timer.best_seconds("summarize", mode="enabled")
    ratio = disabled / baseline
    hook_ns = _span_hook_nanos()

    meta = {
        "benchmark": "obs_overhead",
        "graph": {
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
        },
        "iterations": ITERATIONS,
        "repeats": REPEATS,
        "seed": SEED,
        "overhead_budget": OVERHEAD_BUDGET,
        "disabled_over_baseline": round(ratio, 4),
        "enabled_over_baseline": round(enabled / baseline, 4),
        "spans_per_traced_run": span_count,
        "disabled_span_hook_ns": round(hook_ns, 1),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    write_bench(str(BENCH_PATH), timer, meta=meta)

    with capsys.disabled():
        print()
        print(f"{'mode':<10}  {'best_s':>10}  {'vs baseline':>11}")
        for mode, best in (("baseline", baseline),
                           ("disabled", disabled),
                           ("enabled", enabled)):
            print(f"{mode:<10}  {best:>10.4f}  {best / baseline:>10.3f}x")
        print(f"disabled span hook: {hook_ns:.0f} ns/call, "
              f"{span_count} spans per traced run")

    assert ratio <= OVERHEAD_BUDGET, (
        f"disabled-mode summarize is {ratio:.3f}x the passthrough "
        f"baseline (budget {OVERHEAD_BUDGET}x); the 'free when off' "
        "contract is broken"
    )
