"""Incremental re-summarization (extension): warm start vs. cold start.

After a small batch of graph updates, resuming from the previous partition
(with update-touched nodes re-seeded) should reach better compression than
a cold run with the same iteration budget — the dynamic-graph scenario the
paper's MoSSo comparison motivates.
"""

import time

from conftest import once

from repro.core.ldme import LDME
from repro.core.resummarize import resummarize
from repro.graph.transform import add_edges, remove_edges


def test_incremental_beats_cold_at_equal_budget(benchmark, dataset_cache):
    graph = dataset_cache("CN")
    base = LDME(k=5, iterations=10, seed=0).summarize(graph)
    updates_del = list(graph.edges())[:20]
    updates_add = [(i, graph.num_nodes - 1 - i) for i in range(10)]
    new_graph = add_edges(remove_edges(graph, updates_del), updates_add)

    def both():
        tic = time.perf_counter()
        warm = resummarize(
            new_graph, base.partition, updates_del + updates_add,
            k=5, iterations=2, seed=1,
        )
        warm_s = time.perf_counter() - tic
        tic = time.perf_counter()
        cold = LDME(k=5, iterations=2, seed=1).summarize(new_graph)
        cold_s = time.perf_counter() - tic
        return warm, warm_s, cold, cold_s

    warm, warm_s, cold, cold_s = once(benchmark, both)
    print(f"\nafter 30 updates: warm comp {warm.compression:.4f} "
          f"({warm_s:.3f}s) vs cold comp {cold.compression:.4f} "
          f"({cold_s:.3f}s) at T=2")
    assert warm.objective <= cold.objective
