"""Table 1 — dataset summary.

Regenerates the dataset inventory (paper sizes next to the surrogates this
reproduction actually runs) and benchmarks surrogate construction.
"""

from conftest import once

from repro.experiments.reporting import format_result
from repro.experiments.table1 import run_table1
from repro.graph import datasets


def test_table1_report(benchmark):
    """Build all eight surrogates and print the Table 1 analogue."""
    result = once(benchmark, run_table1)
    assert len(result.rows) == 8
    # Size ordering matches the paper: CN smallest ... AR largest.
    edges = [row["Surrogate edges"] for row in result.rows]
    assert edges == sorted(edges)
    print()
    print(format_result(result))


def test_largest_surrogate_generation(benchmark):
    """Generation cost of the billion-edge stand-in (AR surrogate)."""
    graph = once(benchmark, datasets.load, "AR")
    assert graph.num_edges > 100_000
