"""Kernel benchmark-regression harness (see docs/performance.md).

Times the three vectorized hot-path kernels against their pure-Python
references on G(n, p) graphs of ~10^4, 10^5 and 10^6 edges:

* ``w_build`` — group-local ``W`` construction (Algorithm 4's hashtable):
  :class:`~repro.core.saving.GroupAdjacency` over fixed-size chunks of
  supernodes. Chunks rather than a real LSH divide: G(n, p) graphs have no
  cluster structure, so a divide yields almost no collision groups and the
  phase would time an empty loop. Chunking touches every edge exactly once
  per backend — the same total work a merge iteration's W builds do.
* ``doph_bulk`` — bulk DOPH signatures for all supernodes (Algorithm 2),
  the divide step's dominant cost.
* ``encode`` — sort-based output encoding (Algorithm 5).

Each phase runs ``REPEATS`` times per backend and the minimum wall time is
kept (:meth:`PhaseTimer.best_seconds`). Results land in
``BENCH_kernels.json`` at the repo root — the machine-readable perf
trajectory future PRs regress against. The in-test gate is deliberately
loose (numpy must simply not lose to python on the 10^5-edge graph) so CI
stays robust to noisy shared runners; the committed JSON records the real
speedups from a quiet machine.

Run with ``-s`` to see the per-phase table::

    PYTHONPATH=src python -m pytest benchmarks/test_kernels_regression.py -s
"""

import platform
from pathlib import Path

import numpy as np
import pytest

from repro.core.encode import encode_sorted
from repro.core.partition import SupernodePartition
from repro.core.saving import GroupAdjacency
from repro.graph.generators import erdos_renyi
from repro.lsh.doph import doph_signatures_bulk
from repro.lsh.permutation import random_permutation
from repro.metrics import PhaseTimer, write_bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
BACKENDS = ("python", "numpy")
PHASES = ("w_build", "doph_bulk", "encode")
REPEATS = 3
K = 8
SEED = 7
GROUP_SIZE = 64
SUPER_SIZE = 32

#: The 10^4–10^6 edge ladder: label -> (num_nodes, target_edges).
GRAPH_SIZES = {
    "1e4": (2_000, 10_000),
    "1e5": (6_000, 100_000),
    "1e6": (20_000, 1_000_000),
}


def _make_graph(num_nodes: int, target_edges: int):
    p = target_edges / (num_nodes * (num_nodes - 1) / 2)
    return erdos_renyi(num_nodes, p, seed=SEED)


def _coarse_partition(num_nodes: int) -> SupernodePartition:
    """A merged partition (``SUPER_SIZE`` nodes per supernode), no LDME run.

    Models the late-merge regime the W kernel is built for: supernodes with
    many members whose neighbour lists collapse onto few neighbouring
    supernodes, so ``W`` aggregation does real duplicate-counting work.
    Deterministic and cheap to set up at the 10^6-edge scale.
    """
    partition = SupernodePartition(num_nodes)
    for start in range(0, num_nodes, SUPER_SIZE):
        sid = start
        for v in range(start + 1, min(start + SUPER_SIZE, num_nodes)):
            sid, _ = partition.merge(sid, v)
    return partition


def _paired_partition(num_nodes: int) -> SupernodePartition:
    """Pair-sized supernodes — a typical *final* partition granularity."""
    partition = SupernodePartition(num_nodes)
    for base in range(0, num_nodes - 1, 2):
        partition.merge(base, base + 1)
    return partition


def _time_phases(timer: PhaseTimer, label: str, graph) -> None:
    """Record all phase x backend timings for one benchmark graph.

    Each kernel is timed in the partition regime where it dominates a real
    run: DOPH at the singleton partition (the first divide hashes one row
    per node — the iteration's biggest signature job), ``W`` construction
    at the coarse partition (the late-merge regime, where duplicate
    aggregation is the work), and encode at a pair-granularity partition
    (the typical final-summary shape on the bundled datasets).
    """
    n = graph.num_nodes
    rng = np.random.default_rng(SEED)
    perm = random_permutation(n, rng)
    directions = rng.integers(0, 2, size=K).astype(np.int64)

    # Singleton-partition supervector layout: row i = node i's neighbours.
    heads = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    sids, rows = np.unique(heads, return_inverse=True)

    coarse = _coarse_partition(n)
    ids = np.fromiter(coarse.supernode_ids(), dtype=np.int64)
    ids.sort()
    groups = [
        ids[i:i + GROUP_SIZE].tolist()
        for i in range(0, ids.size, GROUP_SIZE)
    ]
    paired = _paired_partition(n)

    for _ in range(REPEATS):
        for backend in BACKENDS:
            with timer.phase("doph_bulk", graph=label, backend=backend):
                doph_signatures_bulk(
                    rows, graph.indices, int(sids.size), perm, K,
                    directions, backend=backend,
                )
            with timer.phase("w_build", graph=label, backend=backend):
                for group in groups:
                    GroupAdjacency(graph, coarse, group, kernels=backend)
            with timer.phase("encode", graph=label, backend=backend):
                encode_sorted(graph, paired, backend=backend)


def _speedups(timer: PhaseTimer):
    """python_best / numpy_best per (graph, phase)."""
    table = {}
    for label in GRAPH_SIZES:
        for name in PHASES:
            py = timer.best_seconds(name, graph=label, backend="python")
            np_ = timer.best_seconds(name, graph=label, backend="numpy")
            if py is not None and np_ is not None and np_ > 0:
                table[f"{label}/{name}"] = round(py / np_, 2)
    return table


def test_kernels_regression():
    timer = PhaseTimer()
    graph_meta = {}
    for label, (num_nodes, target_edges) in GRAPH_SIZES.items():
        graph = _make_graph(num_nodes, target_edges)
        graph_meta[label] = {
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "target_edges": target_edges,
        }
        _time_phases(timer, label, graph)

    speedups = _speedups(timer)
    write_bench(
        str(BENCH_PATH),
        timer,
        meta={
            "benchmark": "kernels",
            "repeats": REPEATS,
            "k": K,
            "seed": SEED,
            "graphs": graph_meta,
            "speedups_python_over_numpy": speedups,
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    )

    print(f"\nkernel speedups (python_best / numpy_best), k={K}:")
    print(f"{'graph':>6} {'phase':>10} {'python':>10} {'numpy':>10} "
          f"{'speedup':>8}")
    for label in GRAPH_SIZES:
        for name in PHASES:
            py = timer.best_seconds(name, graph=label, backend="python")
            nx = timer.best_seconds(name, graph=label, backend="numpy")
            print(f"{label:>6} {name:>10} {py:>10.4f} {nx:>10.4f} "
                  f"{py / nx:>7.1f}x")

    assert BENCH_PATH.exists()
    # CI smoke gate: the vectorized backend must not lose to the reference
    # on the 10^5-edge graph (the acceptance graph; see ISSUE/ROADMAP).
    for name in ("w_build", "doph_bulk"):
        py = timer.best_seconds(name, graph="1e5", backend="python")
        nx = timer.best_seconds(name, graph="1e5", backend="numpy")
        assert py is not None and nx is not None
        assert nx <= py, (
            f"numpy {name} slower than python on 1e5 graph: {nx:.4f}s "
            f"vs {py:.4f}s"
        )
