"""Kernel benchmark-regression harness (see docs/performance.md).

Times the three vectorized hot-path kernels against their pure-Python
references on G(n, p) graphs of ~10^4, 10^5 and 10^6 edges (plus a 10^7
rung behind the ``slow`` marker):

* ``w_build`` — group-local ``W`` construction (Algorithm 4's hashtable):
  :class:`~repro.core.saving.GroupAdjacency` over fixed-size chunks of
  supernodes. Chunks rather than a real LSH divide: G(n, p) graphs have no
  cluster structure, so a divide yields almost no collision groups and the
  phase would time an empty loop. Chunking touches every edge exactly once
  per backend — the same total work a merge iteration's W builds do.
* ``doph_bulk`` — bulk DOPH signatures for all supernodes (Algorithm 2),
  the divide step's dominant cost. Since the chunked cache-blocked scatter
  landed this is gated at >= 15x over the python reference on the
  10^6-edge graph.
* ``encode`` — sort-based output encoding (Algorithm 5).

It also times ``mp_merge`` — one full :class:`MultiprocessLDME` merge
phase over a pair-granularity partition — under both worker transports
(``transport=pickle`` vs ``transport=shm``). The shared-memory arena must
not lose to the pickle transport on the 10^6-edge merge graph; that gate
is what keeps the zero-copy path honest as the arena code evolves.

Each phase runs ``REPEATS`` times per backend and the minimum wall time is
kept (:meth:`PhaseTimer.best_seconds`); the transport comparison
alternates pickle/shm ordering across repeats so clock drift cancels.
Results land in ``BENCH_kernels.json`` at the repo root — the
machine-readable perf trajectory future PRs regress against. Writers
merge by graph label instead of clobbering the file, so the slow 10^7
rows survive a fast re-run and vice versa. The backend gate is
deliberately loose (numpy must simply not lose to python on the
10^5-edge graph) so CI stays robust to noisy shared runners; the
committed JSON records the real speedups from a quiet machine.

Run with ``-s`` to see the per-phase table::

    PYTHONPATH=src python -m pytest benchmarks/test_kernels_regression.py -s
"""

import json
import multiprocessing
import platform
from pathlib import Path

import numpy as np
import pytest

from repro.core.encode import encode_sorted
from repro.core.partition import SupernodePartition
from repro.core.saving import GroupAdjacency
from repro.core.summary import RunStats
from repro.distributed.multiprocess import MultiprocessLDME
from repro.graph.generators import erdos_renyi
from repro.lsh.doph import doph_signatures_bulk
from repro.lsh.permutation import random_permutation
from repro.metrics import PhaseTimer, write_bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
BACKENDS = ("python", "numpy")
PHASES = ("w_build", "doph_bulk", "encode")
TRANSPORTS = ("pickle", "shm")
REPEATS = 3
K = 8
SEED = 7
GROUP_SIZE = 64
SUPER_SIZE = 32
MP_WORKERS = 4
MP_THRESHOLD = 0.5

#: The 10^4–10^6 edge ladder: label -> (num_nodes, target_edges).
GRAPH_SIZES = {
    "1e4": (2_000, 10_000),
    "1e5": (6_000, 100_000),
    "1e6": (20_000, 1_000_000),
}

#: The slow rung (``-m slow``): label -> (num_nodes, target_edges).
GRAPH_SIZES_SLOW = {
    "1e7": (60_000, 10_000_000),
}

#: Transport-benchmark graphs: membership-heavy (many nodes, sparse), so
#: the merge phase ships a large worker payload — the regime the arena is
#: for. label -> (num_nodes, target_edges, transport_repeats).
MERGE_GRAPHS = {
    "1e6": (400_000, 1_000_000, 3),
}
MERGE_GRAPHS_SLOW = {
    "1e7": (1_200_000, 10_000_000, 2),
}

fork_available = "fork" in multiprocessing.get_all_start_methods()


def _make_graph(num_nodes: int, target_edges: int):
    p = target_edges / (num_nodes * (num_nodes - 1) / 2)
    return erdos_renyi(num_nodes, p, seed=SEED)


def _coarse_partition(num_nodes: int) -> SupernodePartition:
    """A merged partition (``SUPER_SIZE`` nodes per supernode), no LDME run.

    Models the late-merge regime the W kernel is built for: supernodes with
    many members whose neighbour lists collapse onto few neighbouring
    supernodes, so ``W`` aggregation does real duplicate-counting work.
    Deterministic and cheap to set up at the 10^6-edge scale.
    """
    partition = SupernodePartition(num_nodes)
    for start in range(0, num_nodes, SUPER_SIZE):
        sid = start
        for v in range(start + 1, min(start + SUPER_SIZE, num_nodes)):
            sid, _ = partition.merge(sid, v)
    return partition


def _paired_partition(num_nodes: int) -> SupernodePartition:
    """Pair-sized supernodes — a typical *final* partition granularity."""
    partition = SupernodePartition(num_nodes)
    for base in range(0, num_nodes - 1, 2):
        partition.merge(base, base + 1)
    return partition


def _time_phases(timer: PhaseTimer, label: str, graph) -> None:
    """Record all phase x backend timings for one benchmark graph.

    Each kernel is timed in the partition regime where it dominates a real
    run: DOPH at the singleton partition (the first divide hashes one row
    per node — the iteration's biggest signature job), ``W`` construction
    at the coarse partition (the late-merge regime, where duplicate
    aggregation is the work), and encode at a pair-granularity partition
    (the typical final-summary shape on the bundled datasets).
    """
    n = graph.num_nodes
    rng = np.random.default_rng(SEED)
    perm = random_permutation(n, rng)
    directions = rng.integers(0, 2, size=K).astype(np.int64)

    # Singleton-partition supervector layout: row i = node i's neighbours.
    heads = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    sids, rows = np.unique(heads, return_inverse=True)

    coarse = _coarse_partition(n)
    ids = np.fromiter(coarse.supernode_ids(), dtype=np.int64)
    ids.sort()
    groups = [
        ids[i:i + GROUP_SIZE].tolist()
        for i in range(0, ids.size, GROUP_SIZE)
    ]
    paired = _paired_partition(n)

    for _ in range(REPEATS):
        for backend in BACKENDS:
            with timer.phase("doph_bulk", graph=label, backend=backend):
                doph_signatures_bulk(
                    rows, graph.indices, int(sids.size), perm, K,
                    directions, backend=backend,
                )
            with timer.phase("w_build", graph=label, backend=backend):
                for group in groups:
                    GroupAdjacency(graph, coarse, group, kernels=backend)
            with timer.phase("encode", graph=label, backend=backend):
                encode_sorted(graph, paired, backend=backend)


def _time_mp_merge(timer: PhaseTimer, label: str, num_nodes: int,
                   target_edges: int, repeats: int) -> int:
    """Time one multiprocess merge phase under each worker transport.

    Pair supernodes grouped two at a time maximise the membership payload
    per unit of planning work — the shape where the transport, not the
    Saving arithmetic, is what's being measured. Transport order
    alternates across repeats so slow-clock drift on shared runners
    cancels instead of biasing one side. Returns the group count.
    """
    graph = _make_graph(num_nodes, target_edges)
    base = _paired_partition(num_nodes)
    ids = np.fromiter(base.supernode_ids(), dtype=np.int64)
    ids.sort()
    groups = [ids[i:i + 2].tolist() for i in range(0, ids.size, 2)]

    for rep in range(repeats):
        order = TRANSPORTS if rep % 2 else tuple(reversed(TRANSPORTS))
        for transport in order:
            algo = MultiprocessLDME(
                num_workers=MP_WORKERS, k=K, seed=SEED,
                shared_memory="on" if transport == "shm" else "off",
                batch_timeout=600.0,
            )
            partition = base.copy()
            with timer.phase("mp_merge", graph=label, transport=transport):
                algo._merge_phase(
                    graph, partition, groups, MP_THRESHOLD,
                    np.random.default_rng(0), 1, RunStats(),
                )
            algo.close_arenas()
    return len(groups)


def _speedups(timer: PhaseTimer, labels) -> dict:
    """python_best / numpy_best per (graph, phase), plus pickle/shm."""
    table = {}
    for label in labels:
        for name in PHASES:
            py = timer.best_seconds(name, graph=label, backend="python")
            np_ = timer.best_seconds(name, graph=label, backend="numpy")
            if py is not None and np_ is not None and np_ > 0:
                table[f"{label}/{name}"] = round(py / np_, 2)
        pk = timer.best_seconds("mp_merge", graph=label, transport="pickle")
        sh = timer.best_seconds("mp_merge", graph=label, transport="shm")
        if pk is not None and sh is not None and sh > 0:
            table[f"{label}/mp_merge"] = round(pk / sh, 2)
    return table


def _merge_into_bench(timer: PhaseTimer, meta: dict, labels) -> None:
    """Merge this run's records into ``BENCH_kernels.json`` by graph label.

    ``write_bench`` replaces the whole file; here the fast and slow rungs
    are separate tests, so each writer keeps the other's rows: records for
    the graphs it re-measured are replaced, everything else is preserved,
    and the ``graphs``/``speedups`` meta maps are merged key-wise.
    """
    replaced = set(labels)
    existing = {"meta": {}, "records": []}
    if BENCH_PATH.exists():
        existing = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    kept = [
        record for record in existing.get("records", [])
        if record.get("graph") not in replaced
    ]
    merged_meta = dict(existing.get("meta", {}))
    for key in ("graphs", "speedups_python_over_numpy"):
        branch = dict(merged_meta.get(key, {}))
        branch.update(meta.pop(key, {}))
        meta[key] = branch
    merged_meta.update(meta)
    carrier = PhaseTimer()
    carrier.records.extend(kept)
    carrier.records.extend(timer.records)
    write_bench(str(BENCH_PATH), carrier, meta=merged_meta)


def _run_ladder(timer: PhaseTimer, sizes: dict, merge_sizes: dict) -> dict:
    graph_meta = {}
    for label, (num_nodes, target_edges) in sizes.items():
        graph = _make_graph(num_nodes, target_edges)
        graph_meta[label] = {
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "target_edges": target_edges,
        }
        _time_phases(timer, label, graph)
    if fork_available:
        for label, (num_nodes, target_edges, repeats) in merge_sizes.items():
            num_groups = _time_mp_merge(
                timer, label, num_nodes, target_edges, repeats
            )
            graph_meta[label].setdefault("mp_merge", {}).update({
                "num_nodes": num_nodes,
                "num_groups": num_groups,
                "num_workers": MP_WORKERS,
                "threshold": MP_THRESHOLD,
            })
    return graph_meta


def _report(timer: PhaseTimer, labels) -> None:
    print(f"\nkernel speedups (python_best / numpy_best), k={K}:")
    print(f"{'graph':>6} {'phase':>10} {'python':>10} {'numpy':>10} "
          f"{'speedup':>8}")
    for label in labels:
        for name in PHASES:
            py = timer.best_seconds(name, graph=label, backend="python")
            nx = timer.best_seconds(name, graph=label, backend="numpy")
            if py is None or nx is None:
                continue
            print(f"{label:>6} {name:>10} {py:>10.4f} {nx:>10.4f} "
                  f"{py / nx:>7.1f}x")
    for label in labels:
        pk = timer.best_seconds("mp_merge", graph=label, transport="pickle")
        sh = timer.best_seconds("mp_merge", graph=label, transport="shm")
        if pk is None or sh is None:
            continue
        print(f"{label:>6} {'mp_merge':>10} {pk:>10.4f} {sh:>10.4f} "
              f"{pk / sh:>7.2f}x  (pickle vs shm)")


def _base_meta(graph_meta: dict, speedups: dict) -> dict:
    return {
        "benchmark": "kernels",
        "repeats": REPEATS,
        "k": K,
        "seed": SEED,
        "graphs": graph_meta,
        "speedups_python_over_numpy": speedups,
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def test_kernels_regression():
    timer = PhaseTimer()
    graph_meta = _run_ladder(timer, GRAPH_SIZES, MERGE_GRAPHS)
    labels = sorted(graph_meta)
    speedups = _speedups(timer, labels)
    _merge_into_bench(timer, _base_meta(graph_meta, speedups), labels)
    _report(timer, labels)

    assert BENCH_PATH.exists()
    # CI smoke gate: the vectorized backend must not lose to the reference
    # on the 10^5-edge graph (the acceptance graph; see ISSUE/ROADMAP).
    for name in ("w_build", "doph_bulk"):
        py = timer.best_seconds(name, graph="1e5", backend="python")
        nx = timer.best_seconds(name, graph="1e5", backend="numpy")
        assert py is not None and nx is not None
        assert nx <= py, (
            f"numpy {name} slower than python on 1e5 graph: {nx:.4f}s "
            f"vs {py:.4f}s"
        )
    # The chunked cache-blocked scatter must hold its 10^6-edge win: the
    # pre-chunking kernel recorded 6.98x here, the blocked one ~20x.
    assert speedups["1e6/doph_bulk"] >= 15, (
        f"chunked DOPH scatter regressed: {speedups['1e6/doph_bulk']}x "
        "< 15x over python on the 1e6 graph"
    )
    if fork_available:
        # The arena's reason to exist: zero-copy dispatch must beat
        # pickling the membership payload at the 10^6-edge merge.
        pk = timer.best_seconds("mp_merge", graph="1e6", transport="pickle")
        sh = timer.best_seconds("mp_merge", graph="1e6", transport="shm")
        assert pk is not None and sh is not None
        assert sh <= pk, (
            f"shm transport lost to pickle on the 1e6 merge: {sh:.3f}s "
            f"vs {pk:.3f}s"
        )


@pytest.mark.slow
def test_kernels_regression_1e7():
    """The 10^7-edge rung: same phases, behind ``-m slow``.

    Merges its rows into ``BENCH_kernels.json`` next to the fast ladder's
    rather than clobbering them. No backend gate here — the committed
    JSON is the record; the fast test carries the CI gates.
    """
    timer = PhaseTimer()
    graph_meta = _run_ladder(timer, GRAPH_SIZES_SLOW, MERGE_GRAPHS_SLOW)
    labels = sorted(graph_meta)
    speedups = _speedups(timer, labels)
    _merge_into_bench(timer, _base_meta(graph_meta, speedups), labels)
    _report(timer, labels)
    for name in PHASES:
        assert timer.best_seconds(name, graph="1e7",
                                  backend="numpy") is not None
