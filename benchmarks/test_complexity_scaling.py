"""Complexity claims (Section 3, "Time Complexity").

* The merge phase is ``O(n · |S*|)`` where ``S*`` is the largest group —
  so merge cost grows with group size, which LDME's divide keeps small.
* The sort-based encoder's cost is governed by ``|E|``, not ``|S|``:
  encode time grows roughly linearly when we scale the edge count, while
  the naive all-pairs encoder grows quadratically in the supernode count.
"""

import time

import numpy as np
from conftest import once

from repro.core.encode import encode_all_pairs, encode_sorted
from repro.core.merge import merge_group_exact
from repro.core.partition import SupernodePartition
from repro.graph.generators import web_host_graph


def _fresh_partition(n, merges, seed=0):
    rng = np.random.default_rng(seed)
    part = SupernodePartition(n)
    for _ in range(merges):
        ids = list(part.supernode_ids())
        if len(ids) < 2:
            break
        a, b = rng.choice(len(ids), size=2, replace=False)
        part.merge(ids[int(a)], ids[int(b)])
    return part


def test_encode_scales_with_edges_not_supernodes(benchmark):
    """Algorithm 5: doubling |E| roughly doubles encode time; the naive
    all-pairs encoder's time explodes with |S| instead."""

    def measure():
        rows = []
        for hosts in (20, 40, 80):
            graph = web_host_graph(num_hosts=hosts, host_size=30, seed=1)
            part = _fresh_partition(graph.num_nodes, graph.num_nodes // 4)
            tic = time.perf_counter()
            encode_sorted(graph, part)
            sorted_s = time.perf_counter() - tic
            tic = time.perf_counter()
            encode_all_pairs(graph, part)
            quad_s = time.perf_counter() - tic
            rows.append((graph.num_edges, part.num_supernodes,
                         sorted_s, quad_s))
        return rows

    rows = once(benchmark, measure)
    print()
    for edges, supers, sorted_s, quad_s in rows:
        print(f"|E|={edges:>7,} |S|={supers:>6,}: sorted {sorted_s:.4f}s "
              f"all-pairs {quad_s:.4f}s")
    # Sorted encoder: time ratio tracks the edge ratio (sub-quadratic).
    edge_ratio = rows[-1][0] / rows[0][0]
    sorted_ratio = rows[-1][2] / max(rows[0][2], 1e-6)
    assert sorted_ratio < edge_ratio * 3
    # All-pairs: grows much faster than the sorted encoder.
    quad_ratio = rows[-1][3] / max(rows[0][3], 1e-6)
    assert quad_ratio > sorted_ratio


def test_merge_cost_grows_with_group_size(benchmark):
    """Merge-phase work is quadratic in group size — the reason the divide
    step's group-size control is the paper's headline lever."""
    graph = web_host_graph(num_hosts=40, host_size=30, seed=2)

    def measure():
        timings = []
        for size in (50, 100, 200):
            part = SupernodePartition(graph.num_nodes)
            group = list(range(size))
            tic = time.perf_counter()
            merge_group_exact(graph, part, group, threshold=2.0, seed=0)
            timings.append(time.perf_counter() - tic)
        return timings

    t50, t100, t200 = once(benchmark, measure)
    print(f"\nmerge scan: 50→{t50:.4f}s 100→{t100:.4f}s 200→{t200:.4f}s")
    # Threshold 2.0 blocks merges, isolating the candidate-scan cost;
    # quadrupling the group should far more than double the scan.
    assert t200 > 2 * t50
