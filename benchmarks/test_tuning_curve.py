"""Tuning claim (Section 3): k trades compression for running time.

Traces the full curve the paper's LDME5/LDME20 endpoints sit on.
"""

from conftest import once

from repro.experiments.reporting import format_result
from repro.experiments.tuning import run_tuning_curve


def test_tuning_curve_shape(benchmark, dataset_cache):
    graphs = {"H1": dataset_cache("H1")}
    result = once(
        benchmark, run_tuning_curve, graphs=graphs,
        k_values=(2, 5, 10, 20), iterations=8, seed=0,
    )
    print()
    print(format_result(result))
    compression = [v for _, v in result.series("k", "compression")]
    merge_time = [v for _, v in result.series("k", "divide_merge_s")]
    max_group = [v for _, v in result.series("k", "max_group_size")]
    # Compression falls monotonically with k.
    assert all(a >= b for a, b in zip(compression, compression[1:]))
    # Groups shrink with k; so does merge-phase time end to end.
    assert max_group[-1] <= max_group[0]
    assert merge_time[-1] <= merge_time[0]
