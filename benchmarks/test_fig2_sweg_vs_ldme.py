"""Figure 2 — SWeG vs. LDME5 vs. LDME20 over iterations.

Regenerates all four series (compression, total time, divide+merge time,
encode time) on the CN and EU surrogates with a scaled iteration sweep,
then checks the paper's shapes:

* LDME (both settings) runs substantially faster than SWeG;
* LDME5's compression lands near SWeG's, LDME20's below LDME5's;
* LDME's encode time stays flat across T while SWeG's encode time falls
  as the supernode count shrinks.
"""

import pytest
from conftest import once

from repro.baselines.sweg import SWeG
from repro.core.ldme import LDME
from repro.experiments.fig2 import run_fig2
from repro.experiments.reporting import format_result

ITERATIONS = (2, 4, 8)


def test_fig2_report_and_shapes(benchmark, dataset_cache):
    graphs = {"CN": dataset_cache("CN"), "IN": dataset_cache("IN")}
    result = once(
        benchmark, run_fig2, graphs=graphs, iterations_list=ITERATIONS, seed=0
    )
    print()
    print(format_result(result))
    final_t = max(ITERATIONS)
    by_algo = {
        row["algorithm"]: row
        for row in result.rows
        if row["T"] == final_t and row["graph"] == "CN"
    }
    # Speed shape: both LDME settings beat SWeG on total time.
    assert by_algo["LDME5"]["total_s"] < by_algo["SWeG"]["total_s"]
    assert by_algo["LDME20"]["total_s"] < by_algo["SWeG"]["total_s"]
    # Compression shape: LDME5 near SWeG; LDME20 at or below LDME5.
    assert by_algo["LDME5"]["compression"] > by_algo["SWeG"]["compression"] - 0.15
    assert by_algo["LDME20"]["compression"] <= by_algo["LDME5"]["compression"] + 0.02


def test_fig2_encode_time_shape(dataset_cache, benchmark):
    """LDME's encode cost is ~flat in T; SWeG's falls as |S| shrinks."""
    graph = dataset_cache("CN")

    def encode_times():
        ldme = [
            LDME(k=5, iterations=t, seed=0).summarize(graph).stats.encode_seconds
            for t in ITERATIONS
        ]
        sweg = [
            SWeG(iterations=t, seed=0).summarize(graph).stats.encode_seconds
            for t in ITERATIONS
        ]
        return ldme, sweg

    ldme_times, sweg_times = once(benchmark, encode_times)
    print(f"\nLDME encode seconds over T={ITERATIONS}: "
          f"{[round(t, 4) for t in ldme_times]}")
    print(f"SWeG encode seconds over T={ITERATIONS}: "
          f"{[round(t, 4) for t in sweg_times]}")
    # LDME flat: max/min within a generous factor.
    assert max(ldme_times) <= 5 * max(min(ldme_times), 1e-4)
    # SWeG decreasing tendency: last <= first (more merging → fewer |S|).
    assert sweg_times[-1] <= sweg_times[0] * 1.5


@pytest.mark.parametrize("algo_name,factory", [
    ("LDME5", lambda: LDME(k=5, iterations=8, seed=0)),
    ("LDME20", lambda: LDME(k=20, iterations=8, seed=0)),
    ("SWeG", lambda: SWeG(iterations=8, seed=0)),
])
def test_fig2_total_time(benchmark, dataset_cache, algo_name, factory):
    """Headline per-algorithm wall clock on the CN surrogate (T = 8)."""
    graph = dataset_cache("CN")
    result = once(benchmark, factory().summarize, graph)
    assert result.compression >= 0
