"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Encoder scaling — Algorithm 5 (sort-based) vs. the per-supernode
   encoder vs. the naive all-pairs encoder the paper blames for SWeG's
   failures on large summary graphs.
2. Exact Saving vs. SuperJaccard candidate scoring inside the same merge
   loop (the paper's contribution #2).
3. Cost model — exact objective deltas vs. the paper-literal Algorithm 4
   formula.
4. Divide strategy — weighted LSH vs. single shingle at equal iterations.
"""

import time

import numpy as np
import pytest
from conftest import once

from repro.baselines.sweg import SWeG
from repro.core.encode import (
    encode_all_pairs,
    encode_per_supernode,
    encode_sorted,
)
from repro.core.ldme import LDME
from repro.core.partition import SupernodePartition


def _merged_partition(graph, merges, seed=0):
    rng = np.random.default_rng(seed)
    part = SupernodePartition(graph.num_nodes)
    for _ in range(merges):
        ids = list(part.supernode_ids())
        if len(ids) < 2:
            break
        a, b = rng.choice(len(ids), size=2, replace=False)
        part.merge(ids[int(a)], ids[int(b)])
    return part


class TestEncoderScaling:
    def test_sorted_vs_all_pairs(self, benchmark, dataset_cache):
        """The quadratic all-pairs encoder loses badly once |S| is large."""
        graph = dataset_cache("CN")
        part = _merged_partition(graph, merges=graph.num_nodes // 4)

        def both():
            tic = time.perf_counter()
            encode_sorted(graph, part)
            sorted_s = time.perf_counter() - tic
            tic = time.perf_counter()
            encode_all_pairs(graph, part)
            quadratic_s = time.perf_counter() - tic
            return sorted_s, quadratic_s

        sorted_s, quadratic_s = once(benchmark, both)
        print(f"\nencode: sorted {sorted_s:.3f}s vs all-pairs "
              f"{quadratic_s:.3f}s ({quadratic_s / max(sorted_s, 1e-9):.0f}x)")
        assert quadratic_s > sorted_s

    def test_per_supernode_encoder(self, benchmark, dataset_cache):
        """SWeG's 'careful' encoder: correct, with per-|S| overhead."""
        graph = dataset_cache("CN")
        part = _merged_partition(graph, merges=graph.num_nodes // 4)
        result = once(benchmark, encode_per_supernode, graph, part)
        baseline = encode_sorted(graph, part)
        assert sorted(result.superedges) == sorted(baseline.superedges)


class TestSavingVsSuperJaccard:
    def test_exact_saving_policy_ablation(self, benchmark, dataset_cache):
        """Contribution #2: computing Saving directly (over W, with cost
        caching) is at least as fast as SWeG's SuperJaccard scoring and
        yields equal or better compression — measured as full LDME runs
        differing only in the merge policy."""
        graph = dataset_cache("H1")

        def both():
            exact = LDME(k=5, iterations=8, seed=0,
                         merge_policy="exact").summarize(graph)
            approx = LDME(k=5, iterations=8, seed=0,
                          merge_policy="superjaccard").summarize(graph)
            return exact, approx

        exact, approx = once(benchmark, both)
        print(f"\nexact: comp {exact.compression:.4f} "
              f"merge {exact.stats.merge_seconds:.3f}s | "
              f"superjaccard: comp {approx.compression:.4f} "
              f"merge {approx.stats.merge_seconds:.3f}s")
        assert exact.compression >= approx.compression - 0.02
        assert exact.stats.merge_seconds <= approx.stats.merge_seconds * 1.5


class TestCostModel:
    @pytest.mark.parametrize("cost_model", ["exact", "paper"])
    def test_cost_models_run(self, benchmark, dataset_cache, cost_model):
        graph = dataset_cache("CN")
        result = once(
            benchmark,
            LDME(k=5, iterations=8, seed=0, cost_model=cost_model).summarize,
            graph,
        )
        print(f"\ncost_model={cost_model}: "
              f"compression {result.compression:.4f}")
        assert result.compression >= 0


class TestDivideStrategy:
    def test_lsh_divide_shrinks_merge_work(self, benchmark, dataset_cache):
        """The headline mechanism: weighted LSH makes groups small, so the
        quadratic merge phase gets cheap. Compare total candidate scoring
        between LDME and SWeG at equal iterations."""
        graph = dataset_cache("CN")

        def both():
            ldme = LDME(k=5, iterations=6, seed=0).summarize(graph)
            sweg = SWeG(iterations=6, seed=0).summarize(graph)
            return ldme, sweg

        ldme, sweg = once(benchmark, both)
        ldme_max = max(it.max_group_size for it in ldme.stats.iterations)
        sweg_max = max(it.max_group_size for it in sweg.stats.iterations)
        print(f"\nmax group size: LDME5 {ldme_max} vs SWeG {sweg_max}")
        assert ldme_max <= sweg_max
        assert ldme.stats.divide_merge_seconds < sweg.stats.divide_merge_seconds


class TestDivideWeights:
    def test_binary_vs_expanded_supervectors(self, benchmark, dataset_cache):
        """Extension ablation: hashing the true weighted supervectors
        (Shrivastava 2016 expansion) vs. the paper's binarized form."""
        graph = dataset_cache("CN")

        def both():
            binary = LDME(k=5, iterations=8, seed=0,
                          divide_weights="binary").summarize(graph)
            expanded = LDME(k=5, iterations=8, seed=0,
                            divide_weights="expanded").summarize(graph)
            return binary, expanded

        binary, expanded = once(benchmark, both)
        print(f"\nbinary: comp {binary.compression:.4f} "
              f"{binary.stats.total_seconds:.3f}s | expanded: comp "
              f"{expanded.compression:.4f} {expanded.stats.total_seconds:.3f}s")
        # Both must work; the expanded variant pays a hashing cost factor.
        assert binary.compression > 0
        assert expanded.compression > 0
