"""Load-generator benchmark for the query-serving layer.

Stands up a real :class:`repro.serve.SummaryServer` in-process (its own
event-loop thread) and drives a mixed neighbors/degree/has_edge/bfs
workload through blocking clients on worker threads — the full wire
path: framing, batching, cache, admission control, metrics.
"""

from conftest import once

from repro.core.ldme import LDME
from repro.serve import ServerConfig, ServerThread, run_load


def test_serve_load_report(benchmark, dataset_cache):
    graph = dataset_cache("CN")
    summary = LDME(k=5, iterations=10, seed=0).summarize(graph)
    config = ServerConfig(batch_window=0.002, max_batch=256,
                          cache_entries=8192, log_interval=0)

    def measure():
        with ServerThread(summary, config) as handle:
            report = run_load(
                "127.0.0.1", handle.port,
                num_queries=2000, concurrency=8, seed=0,
            )
            from repro.serve import SummaryClient

            client = SummaryClient("127.0.0.1", handle.port)
            stats = client.stats()
            client.close()
        return report, stats

    report, stats = once(benchmark, measure)
    print()
    print(report.format())
    cache = stats["cache"]
    batch = stats["metrics"]["histograms"].get("batch_size", {})
    print(f"server: cache_hit_rate={cache['hit_rate']:.2f} "
          f"batches={stats['metrics']['counters'].get('batches_total', 0)} "
          f"batch_mean={batch.get('mean', 0):.1f} "
          f"batch_max={batch.get('max', 0)}")
    assert report.errors == 0
    assert report.num_queries == 2000
    assert cache["hit_rate"] > 0        # skewed traffic must hit the cache
