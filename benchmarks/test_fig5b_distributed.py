"""Figure 5(b) — distributed LDME vs. SWeG (simulated 8-worker cluster).

Paper shape: LDME5 3.0-23.8x and LDME20 3.1-36.0x faster than distributed
SWeG; the advantage survives parallel group processing because it comes
from the per-group cost distribution, not from serial execution order.
"""

from conftest import once

from repro.experiments.fig5b import run_fig5b
from repro.experiments.reporting import format_result


def test_fig5b_report_and_shapes(benchmark, dataset_cache):
    graphs = {"CN": dataset_cache("CN")}
    result = once(
        benchmark, run_fig5b, graphs=graphs, iterations=10, seed=0,
        num_workers=8,
    )
    print()
    print(format_result(result))
    simulated = {row["algorithm"]: row["simulated_s"] for row in result.rows}
    assert simulated["LDME5"] < simulated["SWeG"]
    assert simulated["LDME20"] < simulated["SWeG"]


def test_fig5b_parallelism_helps_sweg_less_at_scale(benchmark, dataset_cache):
    """SWeG's big groups cap its parallel speedup versus LDME's many small
    groups (the distributed claim's mechanism)."""
    graphs = {"H1": dataset_cache("H1")}
    result = once(
        benchmark, run_fig5b, graphs=graphs, iterations=4, seed=0,
        num_workers=8,
    )
    rows = {row["algorithm"]: row for row in result.rows}
    print(f"\nparallel speedups: "
          f"LDME5 {rows['LDME5']['parallel_speedup']:.2f}x, "
          f"SWeG {rows['SWeG']['parallel_speedup']:.2f}x")
    assert rows["LDME5"]["simulated_s"] < rows["SWeG"]["simulated_s"]
