"""Figure 4 — number of groups and max group size vs. signature length k.

The paper's tuning claim: as k grows the weighted-LSH divide produces more
groups of smaller maximum size (the signature space is (n/k + 1)^k).
"""

from conftest import once

from repro.core.divide import lsh_divide
from repro.core.partition import SupernodePartition
from repro.experiments.fig4 import run_fig4
from repro.experiments.reporting import format_result

K_VALUES = (5, 10, 15, 20)


def test_fig4_report_and_shapes(benchmark, dataset_cache):
    graphs = {name: dataset_cache(name) for name in ("CN", "H1", "H2")}
    result = once(benchmark, run_fig4, graphs=graphs, k_values=K_VALUES, seed=0)
    print()
    print(format_result(result))
    for name in graphs:
        groups = [v for _, v in result.series("k", "num_groups",
                                              where={"graph": name})]
        max_sizes = [v for _, v in result.series("k", "max_group_size",
                                                 where={"graph": name})]
        # Paper shape: groups increase, largest group shrinks with k.
        assert groups[-1] > groups[0], name
        assert max_sizes[-1] <= max_sizes[0], name


def test_fig4_divide_cost_per_k(benchmark, dataset_cache):
    """Cost of a single weighted-LSH divide at the largest k."""
    graph = dataset_cache("H2")
    partition = SupernodePartition(graph.num_nodes)
    groups, stats = once(benchmark, lsh_divide, graph, partition, 20, 0)
    assert stats.num_groups > 0
