"""Space-complexity checks (Section 3, "Space Complexity").

The paper argues LDME's working set is ``O(|E|)``: the graph, the output
and the per-group ``W`` tables (small groups keep ``W`` far below its
worst case). We measure Python-heap peaks with ``tracemalloc`` and check
the growth *rate*: peak memory should scale roughly linearly with ``|E|``.
"""

import tracemalloc

from conftest import once

from repro.core.ldme import LDME
from repro.graph.generators import web_host_graph


def _peak_bytes(fn) -> int:
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
        return peak
    finally:
        tracemalloc.stop()


def test_ldme_memory_scales_linearly(benchmark):
    """Doubling |E| should roughly double the heap peak, not square it."""

    def measure():
        rows = []
        for hosts in (20, 40, 80):
            graph = web_host_graph(num_hosts=hosts, host_size=30, seed=3)
            peak = _peak_bytes(
                lambda g=graph: LDME(k=5, iterations=4, seed=0).summarize(g)
            )
            rows.append((graph.num_edges, peak))
        return rows

    rows = once(benchmark, measure)
    print()
    for edges, peak in rows:
        print(f"|E|={edges:>7,}: peak {peak / 1e6:.1f} MB "
              f"({peak / max(1, edges):.0f} B/edge)")
    edge_growth = rows[-1][0] / rows[0][0]
    peak_growth = rows[-1][1] / max(1, rows[0][1])
    # Linear-ish: memory growth within ~2x of the edge growth.
    assert peak_growth < edge_growth * 2


def test_both_k_settings_bounded(benchmark):
    """Peak memory stays O(|E|)-bounded at both ends of the k dial.

    The dominant terms differ — big groups (small k) grow the per-group
    ``W`` tables, small groups (large k) grow the |S| × k signature matrix
    (fewer merges keep |S| high) — but neither blows past a small factor
    of the other.
    """
    graph = web_host_graph(num_hosts=60, host_size=30, seed=4)

    def measure():
        big_groups = _peak_bytes(
            lambda: LDME(k=2, iterations=3, seed=0).summarize(graph)
        )
        small_groups = _peak_bytes(
            lambda: LDME(k=20, iterations=3, seed=0).summarize(graph)
        )
        return big_groups, small_groups

    big_groups, small_groups = once(benchmark, measure)
    print(f"\npeak: k=2 {big_groups / 1e6:.1f} MB, "
          f"k=20 {small_groups / 1e6:.1f} MB")
    ratio = max(big_groups, small_groups) / max(1, min(big_groups,
                                                       small_groups))
    assert ratio < 4.0
