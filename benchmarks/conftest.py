"""Shared benchmark fixtures.

Benchmarks run the paper's experiments at scaled size (see DESIGN.md §4).
Dataset surrogates are cached per session so repeated benches don't pay
generation cost, and every suite prints the paper-style table it
regenerates (use ``-s`` to see them).
"""

import pytest

from repro.graph import datasets


@pytest.fixture(scope="session")
def dataset_cache():
    """Lazily-built cache of Table 1 surrogates."""
    cache = {}

    def load(name: str):
        if name not in cache:
            cache[name] = datasets.load(name)
        return cache[name]

    return load


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer.

    The experiment harnesses are long-running relative to microbenchmarks;
    one round keeps suite time sane while still recording wall-clock.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
