"""Figure 5(a) — LDME vs. MoSSo running time on a single machine.

Paper shape: LDME5 is 1.5-5.7x and LDME20 2.6-10.2x faster than MoSSo
(e = 0.3, c = 120); VoG is over 40x slower than LDME everywhere.
"""

from conftest import once

from repro.experiments.fig5a import run_fig5a
from repro.experiments.reporting import format_result


def test_fig5a_report_and_shapes(benchmark, dataset_cache):
    graphs = {"CN": dataset_cache("CN")}
    result = once(
        benchmark, run_fig5a, graphs=graphs, iterations=10, seed=0,
        escape_prob=0.3, sample_size=120,
    )
    print()
    print(format_result(result))
    seconds = {row["algorithm"]: row["seconds"] for row in result.rows}
    assert seconds["LDME5"] < seconds["MoSSo"]
    assert seconds["LDME20"] < seconds["MoSSo"]


def test_fig5a_vog_off_the_chart(benchmark, dataset_cache):
    """VoG is dramatically slower than LDME (left off the paper's plot)."""
    graphs = {"CN": dataset_cache("CN")}
    result = once(
        benchmark, run_fig5a, graphs=graphs, iterations=10, seed=0,
        sample_size=30, include_vog=True,
    )
    seconds = {row["algorithm"]: row["seconds"] for row in result.rows}
    print(f"\nVoG {seconds['VoG']:.2f}s vs LDME20 {seconds['LDME20']:.2f}s")
    assert seconds["VoG"] > seconds["LDME20"]
