"""Query-serving benchmarks (the intro's motivating application).

Measures the mixed query workload on the raw CSR graph vs. the two summary
indexes, and verifies total agreement on a lossless summary.
"""

from conftest import once

from repro.core.ldme import LDME
from repro.experiments.queries_exp import run_query_latency
from repro.experiments.reporting import format_result
from repro.queries import CompiledSummaryIndex, SummaryIndex


def test_query_latency_report(benchmark, dataset_cache):
    graphs = {"CN": dataset_cache("CN")}
    result = once(
        benchmark, run_query_latency, graphs=graphs, num_queries=500,
        iterations=10, seed=0,
    )
    print()
    print(format_result(result))
    row = result.rows[0]
    assert row["agreement"] == 1.0


def test_index_variants_agree_and_serve(benchmark, dataset_cache):
    """Set-based vs. array-backed index: identical answers, measured cost."""
    import time

    graph = dataset_cache("CN")
    summary = LDME(k=5, iterations=10, seed=0).summarize(graph)

    def measure():
        plain = SummaryIndex(summary)
        compiled = CompiledSummaryIndex(summary)
        tic = time.perf_counter()
        for v in range(graph.num_nodes):
            plain.neighbors(v)
        plain_s = time.perf_counter() - tic
        tic = time.perf_counter()
        for v in range(graph.num_nodes):
            compiled.neighbors(v)
        compiled_s = time.perf_counter() - tic
        mismatches = sum(
            1 for v in range(0, graph.num_nodes, 17)
            if plain.neighbors(v) != compiled.neighbors(v)
        )
        return plain_s, compiled_s, mismatches

    plain_s, compiled_s, mismatches = once(benchmark, measure)
    print(f"\nfull neighbourhood sweep: set-based {plain_s:.3f}s, "
          f"array-backed {compiled_s:.3f}s")
    assert mismatches == 0


def test_neighbors_batch_vs_per_call(benchmark, dataset_cache):
    """Vectorized batch path vs. the per-call loop it replaces."""
    import time

    import numpy as np

    graph = dataset_cache("CN")
    summary = LDME(k=5, iterations=10, seed=0).summarize(graph)
    compiled = CompiledSummaryIndex(summary)
    # Skewed workload with repeats: the regime batching is built for.
    rng = np.random.default_rng(0)
    nodes = np.minimum(
        graph.num_nodes - 1,
        (graph.num_nodes * rng.random(5000) ** 2).astype(np.int64),
    )

    def measure():
        tic = time.perf_counter()
        loop_answers = [compiled.neighbors(int(v)) for v in nodes]
        loop_s = time.perf_counter() - tic
        tic = time.perf_counter()
        batch_answers = compiled.neighbors_batch(nodes)
        batch_s = time.perf_counter() - tic
        return loop_s, batch_s, loop_answers == batch_answers

    loop_s, batch_s, agree = once(benchmark, measure)
    print(f"\n5000 skewed neighborhood queries: per-call {loop_s:.3f}s, "
          f"batched {batch_s:.3f}s ({loop_s / max(batch_s, 1e-9):.1f}x)")
    assert agree
