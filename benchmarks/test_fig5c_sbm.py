"""Figure 5(c) — SBM density sweep.

Paper shape: as block density rises, MoSSo's runtime climbs sharply and
VoG goes off the chart, while LDME and SWeG stay resilient (LDME up to 8x
faster than SWeG).
"""

from conftest import once

from repro.experiments.fig5c import run_fig5c
from repro.experiments.reporting import format_result

LEVELS = (0.0, 0.5, 1.0)


def test_fig5c_report_and_shapes(benchmark):
    result = once(
        benchmark, run_fig5c, levels=LEVELS, community_size=100,
        iterations=5, seed=0, include_vog=False, mosso_sample_size=60,
    )
    print()
    print(format_result(result))

    def series(algo):
        return [v for _, v in result.series("density_level", "seconds",
                                            where={"algorithm": algo})]

    mosso = series("MoSSo")
    ldme5 = series("LDME5")
    # MoSSo's cost climbs with density far faster than LDME's.
    mosso_growth = mosso[-1] / max(mosso[0], 1e-9)
    ldme_growth = ldme5[-1] / max(ldme5[0], 1e-9)
    print(f"growth (dense/sparse): MoSSo {mosso_growth:.1f}x, "
          f"LDME5 {ldme_growth:.1f}x")
    assert mosso[-1] > ldme5[-1]
    # LDME is resilient at the densest level.
    assert ldme5[-1] < mosso[-1]


def test_fig5c_vog_included(benchmark):
    """VoG at one density level — confirming it is the slowest curve."""
    result = once(
        benchmark, run_fig5c, levels=(0.5,), community_size=100,
        iterations=3, seed=0, include_vog=True, mosso_sample_size=30,
    )
    seconds = {row["algorithm"]: row["seconds"] for row in result.rows}
    print(f"\nseconds: { {k: round(v, 3) for k, v in seconds.items()} }")
    assert seconds["VoG"] >= seconds["LDME20"]
