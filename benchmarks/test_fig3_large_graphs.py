"""Figure 3 — LDME5/20 on the large graphs (SWeG over budget).

The paper's H2/IC/UK/AR runs are the scalability statement: only LDME
finishes. At reproduction scale the analogue is a per-run budget: LDME
must complete comfortably inside it while SWeG overruns on the same
graph (checked on H2, the smallest of the "large" set, so the suite
stays quick).
"""

import time

from conftest import once

from repro.baselines.sweg import SWeG
from repro.core.ldme import LDME
from repro.experiments.fig3 import run_fig3
from repro.experiments.reporting import format_result

ITERATIONS = 5


def test_fig3_report(benchmark, dataset_cache):
    graphs = {name: dataset_cache(name) for name in ("H2", "IC")}
    result = once(
        benchmark, run_fig3, graphs=graphs, iterations=ITERATIONS, seed=0
    )
    print()
    print(format_result(result))
    assert all(row["feasible"] for row in result.rows)
    # LDME20 is the high-speed setting: never slower than 2x LDME5.
    for name in ("H2", "IC"):
        t5 = next(r["total_s"] for r in result.rows
                  if r["graph"] == name and r["algorithm"] == "LDME5")
        t20 = next(r["total_s"] for r in result.rows
                   if r["graph"] == name and r["algorithm"] == "LDME20")
        assert t20 <= 2 * t5


def test_fig3_ldme_vs_sweg_budget(benchmark, dataset_cache):
    """LDME finishes well inside the time SWeG needs on the same graph."""
    graph = dataset_cache("H2")

    def both():
        tic = time.perf_counter()
        LDME(k=20, iterations=ITERATIONS, seed=0).summarize(graph)
        ldme_seconds = time.perf_counter() - tic
        tic = time.perf_counter()
        SWeG(iterations=ITERATIONS, seed=0).summarize(graph)
        sweg_seconds = time.perf_counter() - tic
        return ldme_seconds, sweg_seconds

    ldme_seconds, sweg_seconds = once(benchmark, both)
    print(f"\nH2: LDME20 {ldme_seconds:.2f}s vs SWeG {sweg_seconds:.2f}s "
          f"({sweg_seconds / max(ldme_seconds, 1e-9):.1f}x)")
    assert ldme_seconds < sweg_seconds


def test_fig3_billion_edge_standin(benchmark, dataset_cache):
    """The AR surrogate (the paper's billion-edge graph) completes."""
    graph = dataset_cache("AR")
    result = once(
        benchmark, LDME(k=20, iterations=3, seed=0).summarize, graph
    )
    assert result.compression >= 0
    print(f"\nAR surrogate: compression {result.compression:.3f} "
          f"in {result.stats.total_seconds:.2f}s")
